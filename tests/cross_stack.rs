//! Cross-stack integration tests: every layer of the tool chain agrees
//! with every other.
//!
//! * BMC counterexamples replay on the cycle-accurate simulator.
//! * The symbolic pipeline (expr → blast → SAT) agrees with concrete
//!   simulation on whole transition systems.
//! * A-QED and the conventional flow agree on detectable bugs.

use aqed::bmc::{Bmc, BmcOptions, BmcResult};
use aqed::core::{AqedHarness, CheckOutcome};
use aqed::designs::{hls_cases, memctrl_cases, motivating_case, BugCase};
use aqed::expr::ExprPool;
use aqed::sim::Testbench;
use aqed::tsys::{Simulator, TransitionSystem};
use aqed_bitvec::Bv;

fn run_case_and_replay(case: &BugCase) {
    let mut pool = ExprPool::new();
    let lca = (case.build_buggy)(&mut pool);
    let mut harness = AqedHarness::new(&lca);
    if let Some(fc) = &case.fc {
        harness = harness.with_fc(fc.clone());
    }
    if let Some(rb) = &case.rb {
        harness = harness.with_rb(*rb);
    }
    // Replay happens inside verify() as a debug assertion; here we do it
    // explicitly against the composed system.
    let (composed, _) = harness.build(&mut pool);
    let mut bmc = Bmc::new(
        &composed,
        BmcOptions::default().with_max_bound(case.bmc_bound),
    );
    match bmc.check(&composed, &mut pool) {
        BmcResult::Counterexample(cex) => {
            assert!(
                cex.replay(&composed, &pool),
                "{}: counterexample must replay on the simulator",
                case.id
            );
            assert!(
                cex.cycles() <= case.bmc_bound + 1,
                "{}: witness within bound",
                case.id
            );
        }
        other => panic!("{}: expected counterexample, got {other:?}", case.id),
    }
}

#[test]
fn motivating_cex_replays() {
    run_case_and_replay(&motivating_case());
}

#[test]
fn representative_memctrl_cexs_replay() {
    // One per configuration keeps the suite affordable; the full sweep
    // runs in the designs crate's own tests and the bench harness.
    let cases = memctrl_cases();
    for id in [
        "fifo_full_check_missing",
        "db_drain_ptr_not_reset",
        "lb_tap_off_by_one",
    ] {
        let case = cases.iter().find(|c| c.id == id).expect("known case");
        run_case_and_replay(case);
    }
}

#[test]
fn representative_hls_cexs_replay() {
    let cases = hls_cases();
    for id in ["aes_v1", "dataflow_fifo_sizing", "gsm_acc_race"] {
        let case = cases.iter().find(|c| c.id == id).expect("known case");
        run_case_and_replay(case);
    }
}

#[test]
fn symbolic_and_concrete_semantics_agree() {
    // Drive a synthesized design concretely for N cycles, then assert
    // via BMC that a state mismatch at depth N is UNSAT when the inputs
    // are constrained to the very same trace. Equivalent formulation:
    // evaluate each frame's outputs with the simulator and with the
    // expression evaluator over the unrolled system — here we use the
    // simulator against golden outputs produced by the pure function.
    use aqed::designs::gsm;
    let mut pool = ExprPool::new();
    let lca = gsm::build(&mut pool, None);
    let mut sim = Simulator::new(&lca.ts, &pool);
    for frame in [0x01_02_03_04u64, 0xAA_BB_CC_DD, 0x00_00_00_01] {
        let mut got = None;
        let mut submitted = false;
        for _ in 0..20 {
            let action = u64::from(!submitted);
            let inputs = [
                (lca.action, Bv::new(2, action)),
                (lca.data, Bv::new(32, frame)),
                (lca.rdh, Bv::from_bool(true)),
            ];
            let cap = sim.peek(&pool, lca.captured, &inputs).is_true();
            let del = sim.peek(&pool, lca.delivered, &inputs).is_true();
            let out = sim.peek(&pool, lca.out, &inputs).to_u64();
            sim.step_with(&lca.ts, &pool, &inputs);
            if cap {
                submitted = true;
            }
            if del {
                got = Some(out);
                break;
            }
        }
        assert_eq!(got, Some(gsm::golden(1, frame)), "frame {frame:#x}");
    }
}

#[test]
fn flows_agree_on_detectable_bugs() {
    // For a conventional-detectable bug, both flows find it; for the
    // corner-case bugs, only A-QED does.
    let cases = memctrl_cases();
    for id in ["fifo_ptr_wrap_off_by_one", "fifo_redundant_write_glitch"] {
        let case = cases.iter().find(|c| c.id == id).expect("known case");
        let mut pool = ExprPool::new();
        let lca = (case.build_buggy)(&mut pool);
        let mut harness = AqedHarness::new(&lca);
        if let Some(fc) = &case.fc {
            harness = harness.with_fc(fc.clone());
        }
        if let Some(rb) = &case.rb {
            harness = harness.with_rb(*rb);
        }
        let aqed_found = harness.verify(&mut pool, case.bmc_bound).found_bug();
        assert!(aqed_found, "{}: A-QED finds every bug", case.id);
        let conv = Testbench::default().run(&lca, &pool, case.golden.expect("has golden"));
        assert_eq!(
            conv.detected(),
            case.conventional_detectable,
            "{}: conventional flow behaviour must match the catalogue",
            case.id
        );
    }
}

#[test]
fn healthy_composed_systems_validate() {
    let mut cases = memctrl_cases();
    cases.extend(hls_cases());
    cases.push(motivating_case());
    for case in &cases {
        let mut pool = ExprPool::new();
        let lca = (case.build_healthy)(&mut pool);
        let mut harness = AqedHarness::new(&lca);
        if let Some(fc) = &case.fc {
            harness = harness.with_fc(fc.clone());
        }
        if let Some(rb) = &case.rb {
            harness = harness.with_rb(*rb);
        }
        let (composed, handles): (TransitionSystem, _) = harness.build(&mut pool);
        composed
            .validate(&pool)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        assert!(!handles.bad_names.is_empty(), "{}", case.id);
    }
}

#[test]
fn clean_verdicts_are_stable_across_bmc_modes() {
    // Incremental and monolithic BMC agree on a healthy design.
    use aqed::designs::dataflow;
    for incremental in [true, false] {
        let mut pool = ExprPool::new();
        let lca = dataflow::build(&mut pool, None);
        let report = AqedHarness::new(&lca)
            .with_rb(dataflow::recommended_rb())
            .with_bmc_options(BmcOptions::default().with_incremental(incremental))
            .verify(&mut pool, 8);
        assert!(
            matches!(report.outcome, CheckOutcome::Clean { .. }),
            "incremental={incremental}: {report}"
        );
    }
}
