//! Structural fidelity tests: the evaluation artifacts this repository
//! generates have the same shape as the paper's tables and figures.

use aqed::designs::{all_cases, hls_cases, memctrl_cases, DesignId, ExpectedProperty};

#[test]
fn table1_suite_shape() {
    // Table 1 aggregates over the memory-controller bug suite.
    let cases = memctrl_cases();
    assert_eq!(cases.len(), 15);
    // Three configurations, five bugs each.
    for config in ["fifo", "double_buffer", "line_buffer"] {
        assert_eq!(
            cases.iter().filter(|c| c.config == config).count(),
            5,
            "{config}"
        );
    }
    // Exactly one bug is caught via RB (the paper: "A-QED detected one
    // bug using RB and the remaining using FC").
    assert_eq!(
        cases
            .iter()
            .filter(|c| c.expected == ExpectedProperty::Rb)
            .count(),
        1
    );
}

#[test]
fn fig5_split_shape() {
    // Fig. 5: a 13% A-QED-only slice — 2 of 15.
    let cases = memctrl_cases();
    let aqed_only = cases.iter().filter(|c| !c.conventional_detectable).count();
    assert_eq!(aqed_only, 2);
    let pct = 100.0 * aqed_only as f64 / cases.len() as f64;
    assert!((pct - 13.3).abs() < 1.0, "{pct}% ≈ 13%");
}

#[test]
fn table2_rows_shape() {
    // Table 2: AES v1–v4 (FC), dataflow (RB), optical flow (RB), GSM (FC).
    let cases = hls_cases();
    assert_eq!(cases.len(), 7);
    let aes: Vec<_> = cases.iter().filter(|c| c.design == DesignId::Aes).collect();
    assert_eq!(aes.len(), 4);
    assert!(aes.iter().all(|c| c.expected == ExpectedProperty::Fc));
    let rb: Vec<_> = cases
        .iter()
        .filter(|c| c.expected == ExpectedProperty::Rb)
        .map(|c| c.design)
        .collect();
    assert_eq!(rb, vec![DesignId::Dataflow, DesignId::Optflow]);
    let gsm = cases
        .iter()
        .find(|c| c.design == DesignId::Gsm)
        .expect("gsm");
    assert_eq!(gsm.expected, ExpectedProperty::Fc);
    // Optical flow's per-pixel operation is interfering: FC must be off.
    let of = cases
        .iter()
        .find(|c| c.design == DesignId::Optflow)
        .expect("of");
    assert!(of.fc.is_none());
    assert!(of.golden.is_none());
}

#[test]
fn full_catalogue_consistency() {
    let cases = all_cases();
    assert_eq!(cases.len(), 23);
    for case in &cases {
        assert!(
            case.fc.is_some() || case.rb.is_some(),
            "{}: at least one check",
            case.id
        );
        assert!(case.bmc_bound >= 8, "{}: sensible bound", case.id);
        // The conventional flow needs a golden model whenever we claim
        // it can detect the bug by value comparison (RB-only designs can
        // be detected by the watchdog instead).
        if case.conventional_detectable && case.expected == ExpectedProperty::Fc {
            assert!(case.golden.is_some(), "{}", case.id);
        }
    }
}
