//! Integration test of the paper's Proposition 1: for a strongly
//! connected accelerator, Functional Consistency + Response Bound +
//! Single-Action Correctness imply total correctness.
//!
//! We exercise all three checks on one healthy design, verify strong
//! connectedness concretely (the design drains back to its initial
//! state), and show the converse: a design that is FC- and RB-clean but
//! functionally wrong is caught only once SAC is added.

use aqed::core::{AqedHarness, CheckOutcome, FcConfig, PropertyKind, RbConfig, SacConfig, SpecFn};
use aqed::expr::ExprPool;
use aqed::hls::{synthesize, AccelSpec, SynthOptions};
use aqed::tsys::Simulator;
use aqed_bitvec::Bv;

fn spec_neg_plus_three(
    pool: &mut ExprPool,
    _a: aqed_expr::ExprRef,
    d: aqed_expr::ExprRef,
) -> aqed_expr::ExprRef {
    let neg = pool.neg(d);
    let three = pool.lit(6, 3);
    pool.add(neg, three)
}

#[test]
fn healthy_design_satisfies_fc_rb_and_sac() {
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("negp3", 2, 6, 6).with_latency(2);
    let lca = synthesize(&spec, &mut pool, SynthOptions::default(), |p, _a, d| {
        let neg = p.neg(d);
        let three = p.lit(6, 3);
        p.add(neg, three)
    });
    let spec_fn: SpecFn = &spec_neg_plus_three;
    let report = AqedHarness::new(&lca)
        .with_fc(FcConfig::default())
        .with_rb(RbConfig {
            tau: 8,
            in_min: 1,
            rdin_bound: 8,
            counter_width: 8,
        })
        .with_sac(SacConfig { spec: spec_fn })
        .verify(&mut pool, 8);
    assert!(
        matches!(report.outcome, CheckOutcome::Clean { .. }),
        "all three universal checks must pass: {report}"
    );
}

#[test]
fn strong_connectedness_holds_concretely() {
    // Def. 8: from any reachable state there is a path back to s_init.
    // Concretely: submit operations, then drain with the host ready and
    // no new inputs — the synthesized micro-architecture must return to
    // its all-idle initial state.
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("sc", 2, 6, 6)
        .with_latency(3)
        .with_fifo_depth(2);
    let lca = synthesize(&spec, &mut pool, SynthOptions::default(), |p, _a, d| {
        p.not(d)
    });
    let mut sim = Simulator::new(&lca.ts, &pool);
    let initial: Vec<(aqed_expr::VarId, Bv)> = lca
        .ts
        .states()
        .iter()
        .map(|s| (s.var, sim.state(s.var)))
        .collect();
    // Drive a few operations.
    for d in [1u64, 2, 3] {
        let inputs = [
            (lca.action, Bv::new(2, 1)),
            (lca.data, Bv::new(6, d)),
            (lca.rdh, Bv::from_bool(false)),
        ];
        sim.step_with(&lca.ts, &pool, &inputs);
    }
    // Drain: no new inputs, host ready.
    for _ in 0..20 {
        let inputs = [
            (lca.action, Bv::new(2, 0)),
            (lca.data, Bv::new(6, 0)),
            (lca.rdh, Bv::from_bool(true)),
        ];
        sim.step_with(&lca.ts, &pool, &inputs);
    }
    for (var, init_val) in initial {
        // Data registers may retain stale payloads; the *control* state
        // (valids, counters, pointers) defines the abstract state and
        // must be back to reset.
        let name = pool.var_name(var).to_string();
        if name.contains("_v") || name.contains("cnt") || name.contains("ctr") {
            assert_eq!(
                sim.state(var),
                init_val,
                "control register '{name}' must return to its initial value"
            );
        }
    }
}

#[test]
fn sac_closes_the_gap_fc_leaves_open() {
    // A design computing neg(d) + 4 instead of neg(d) + 3: perfectly
    // consistent (FC clean), responsive (RB clean), but functionally
    // wrong — exactly the gap of Def. 5 that SAC (Def. 7) closes.
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("wrong", 2, 6, 6);
    let lca = synthesize(&spec, &mut pool, SynthOptions::default(), |p, _a, d| {
        let neg = p.neg(d);
        let four = p.lit(6, 4);
        p.add(neg, four)
    });
    let fc_rb = AqedHarness::new(&lca)
        .with_fc(FcConfig::default())
        .with_rb(RbConfig {
            tau: 8,
            in_min: 1,
            rdin_bound: 8,
            counter_width: 8,
        })
        .verify(&mut pool, 8);
    assert!(
        !fc_rb.found_bug(),
        "FC + RB alone cannot see a consistently wrong function"
    );

    let spec_fn: SpecFn = &spec_neg_plus_three;
    let with_sac = AqedHarness::new(&lca)
        .with_sac(SacConfig { spec: spec_fn })
        .verify(&mut pool, 8);
    match with_sac.outcome {
        CheckOutcome::Bug { property, .. } => assert_eq!(property, PropertyKind::Sac),
        other => panic!("SAC must catch the wrong function, got {other:?}"),
    }
}
