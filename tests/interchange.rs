//! Integration of the interchange formats with the verification flow:
//! export a composed design+monitor system to BTOR2, and dump a real BMC
//! counterexample to VCD.

use aqed::bmc::{Bmc, BmcOptions, BmcResult};
use aqed::core::{AqedHarness, FcConfig};
use aqed::designs::motivating::{build, MotivatingBug};
use aqed::expr::ExprPool;
use aqed::hls::{synthesize, AccelSpec, SynthOptions};
use aqed::tsys::{btor2_check, btor2_stats, to_btor2, to_vcd};

#[test]
fn composed_system_exports_to_btor2() {
    let mut pool = ExprPool::new();
    let lca = build(&mut pool, Some(MotivatingBug::ClockEnableDisconnected));
    let harness = AqedHarness::new(&lca).with_fc(FcConfig::default());
    let (composed, handles) = harness.build(&mut pool);
    let text = to_btor2(&composed, &pool);
    let stats = btor2_stats(&text);
    // Design inputs + the two monitor labels.
    assert_eq!(stats.inputs, lca.ts.inputs().len() + 2);
    assert!(
        stats.states > lca.ts.states().len(),
        "monitor registers present"
    );
    assert_eq!(stats.bads, handles.bad_names.len());
    assert!(stats.ops > 50, "nontrivial logic exported");
    let lines = btor2_check(&text).expect("referential integrity");
    assert!(lines > 100);
}

#[test]
fn counterexample_exports_to_vcd() {
    // A small clock-gated design with a forwarding bug: fast to check,
    // and its VCD exercises inputs, monitor labels and clock_enable.
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("vcd_case", 2, 6, 6).with_clock_enable();
    let opts = SynthOptions {
        forwarding_bug: true,
        ..SynthOptions::default()
    };
    let lca = synthesize(&spec, &mut pool, opts, |_p, _a, d| d);
    let harness = AqedHarness::new(&lca).with_fc(FcConfig::default());
    // Build once: the counterexample's variables must be the same ones the
    // VCD writer replays.
    let (composed, _) = harness.build(&mut pool);
    let mut bmc = Bmc::new(&composed, BmcOptions::default().with_max_bound(10));
    let cex = match bmc.check(&composed, &mut pool) {
        BmcResult::Counterexample(c) => c,
        other => panic!("expected bug, got {other:?}"),
    };
    let vcd = to_vcd(&composed, &pool, &cex.trace, &cex.initial_state);
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(vcd.contains("clock_enable"));
    assert!(vcd.contains("aqed_is_orig") || vcd.contains("aqed_is_dup"));
    // One timestep marker per cycle plus the closing marker.
    let steps = vcd.lines().filter(|l| l.starts_with('#')).count();
    assert_eq!(steps, cex.cycles() + 1);
}
