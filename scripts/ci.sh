#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   scripts/ci.sh            # run everything
#
# Mirrors what reviewers run before merging; keep it green.
#
# Test phases run under a hard wall-clock timeout (CI_TEST_TIMEOUT
# seconds, default 1800): a verification hang is a bug in the resource
# governor, and the gate must fail loudly instead of wedging the queue.
set -euo pipefail
cd "$(dirname "$0")/.."

CI_TEST_TIMEOUT="${CI_TEST_TIMEOUT:-1800}"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (workspace, no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test (workspace, ${CI_TEST_TIMEOUT}s hard timeout)"
timeout --kill-after=30 "$CI_TEST_TIMEOUT" cargo test -q --workspace

echo "== jobs-identity sweep under fail-fast cancellation"
timeout --kill-after=30 "$CI_TEST_TIMEOUT" \
    env AQED_FAIL_FAST=1 cargo test -q -p aqed-cli --test jobs_identity

echo "== simplification-pipeline identity (CLI, defaults vs --no-preprocess --no-coi)"
# The in-process sweep (pipeline_identity test) already covers the whole
# catalog; this phase additionally pins the *user-visible* contract: the
# aqed binary must report the same exit code and verdict line with the
# pipeline on (default) and fully off.
cargo build --release -q -p aqed-cli
# Extract the verdict line and strip the timing/clause parenthetical,
# which legitimately differs between runs.
verdict() {
    grep -m1 -E '^(bug:|clean|inconclusive|error)' | sed 's/ (.*//'
}
for case in motivating_clock_enable dataflow_fifo_sizing aes_v1; do
    for variant in "" "--healthy"; do
        on_rc=0
        on_out=$(./target/release/aqed verify "$case" $variant --bound 8 | verdict) || on_rc=$?
        off_rc=0
        off_out=$(./target/release/aqed verify "$case" $variant --bound 8 \
            --no-preprocess --no-coi | verdict) || off_rc=$?
        if [ "$on_rc" != "$off_rc" ] || [ "$on_out" != "$off_out" ]; then
            echo "pipeline identity violated on '$case $variant':" >&2
            echo "  default:        rc=$on_rc  $on_out" >&2
            echo "  pipeline off:   rc=$off_rc  $off_out" >&2
            exit 1
        fi
        echo "  $case $variant: rc=$on_rc verdict '$on_out' identical"
    done
done

echo "== observability: traced catalog verify, trace validation, zero-cost-off"
# Every catalog design runs once with tracing + report JSON on; the
# resulting JSONL must pass trace_report's structural validation
# (parseable lines, balanced per-thread spans) and the report JSON must
# be non-empty. The obs_identity test already pins that tracing never
# changes verdicts; this phase pins the shipped binaries end to end.
cargo build --release -q -p aqed-bench --bin trace_report
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
for case in motivating_clock_enable dataflow_fifo_sizing aes_v1; do
    rc=0
    ./target/release/aqed verify "$case" --bound 8 --jobs 4 \
        --trace-out "$obs_tmp/$case.jsonl" \
        --report-json "$obs_tmp/$case.json" >/dev/null || rc=$?
    if [ "$rc" -gt 1 ]; then
        echo "traced verify of '$case' failed with rc=$rc" >&2
        exit 1
    fi
    ./target/release/trace_report "$obs_tmp/$case.jsonl" --check
    if ! [ -s "$obs_tmp/$case.json" ]; then
        echo "empty report JSON for '$case'" >&2
        exit 1
    fi
done
# Tracing off must cost nothing: with no --trace-out/--report-json the
# obs layer is disarmed and must never touch the clock or buffer an
# event. That invariant is asserted structurally (not by flaky timing)
# in the obs crate's disabled_records_nothing_and_reads_no_clock test.
cargo test -q -p aqed-obs disabled_records_nothing_and_reads_no_clock

echo "CI OK"
