#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   scripts/ci.sh            # run everything
#
# Mirrors what reviewers run before merging; keep it green.
#
# Test phases run under a hard wall-clock timeout (CI_TEST_TIMEOUT
# seconds, default 1800): a verification hang is a bug in the resource
# governor, and the gate must fail loudly instead of wedging the queue.
set -euo pipefail
cd "$(dirname "$0")/.."

CI_TEST_TIMEOUT="${CI_TEST_TIMEOUT:-1800}"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (workspace, no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test (workspace, ${CI_TEST_TIMEOUT}s hard timeout)"
timeout --kill-after=30 "$CI_TEST_TIMEOUT" cargo test -q --workspace

echo "== jobs-identity sweep under fail-fast cancellation"
timeout --kill-after=30 "$CI_TEST_TIMEOUT" \
    env AQED_FAIL_FAST=1 cargo test -q -p aqed-cli --test jobs_identity

echo "== simplification-pipeline identity (CLI, defaults vs --no-preprocess --no-coi)"
# The in-process sweep (pipeline_identity test) already covers the whole
# catalog; this phase additionally pins the *user-visible* contract: the
# aqed binary must report the same exit code and verdict line with the
# pipeline on (default) and fully off.
cargo build --release -q -p aqed-cli
# Extract the verdict line and strip the timing/clause parenthetical,
# which legitimately differs between runs. Must consume ALL of stdin:
# an early-exiting extractor (grep -m1) closes the pipe while aqed is
# still printing ("wrote report JSON to ..."), turning the run into an
# EPIPE io-error exit and racing the phase's rc checks.
verdict() {
    awk '!found && /^(bug:|clean|inconclusive|error)/ { found = 1; line = $0 }
         END { sub(/ \(.*/, "", line); print line }'
}
for case in motivating_clock_enable dataflow_fifo_sizing aes_v1; do
    for variant in "" "--healthy"; do
        on_rc=0
        on_out=$(./target/release/aqed verify "$case" $variant --bound 8 | verdict) || on_rc=$?
        off_rc=0
        off_out=$(./target/release/aqed verify "$case" $variant --bound 8 \
            --no-preprocess --no-coi | verdict) || off_rc=$?
        if [ "$on_rc" != "$off_rc" ] || [ "$on_out" != "$off_out" ]; then
            echo "pipeline identity violated on '$case $variant':" >&2
            echo "  default:        rc=$on_rc  $on_out" >&2
            echo "  pipeline off:   rc=$off_rc  $off_out" >&2
            exit 1
        fi
        echo "  $case $variant: rc=$on_rc verdict '$on_out' identical"
    done
done

echo "== portfolio identity (CLI, --backend portfolio vs cdcl, whole catalog)"
# The portfolio backend races diversified solvers and shares learned
# clauses, but it is still a decision procedure: on every catalog design
# it must report the same exit code and verdict line as the single
# cdcl backend, with sharing on and off.
for case in motivating_clock_enable dataflow_fifo_sizing aes_v1; do
    for variant in "" "--healthy"; do
        cdcl_rc=0
        cdcl_out=$(./target/release/aqed verify "$case" $variant --bound 8 \
            --backend cdcl | verdict) || cdcl_rc=$?
        for extra in "" "--no-clause-sharing"; do
            port_rc=0
            port_out=$(./target/release/aqed verify "$case" $variant --bound 8 \
                --backend portfolio --portfolio-workers 2 $extra | verdict) || port_rc=$?
            if [ "$cdcl_rc" != "$port_rc" ] || [ "$cdcl_out" != "$port_out" ]; then
                echo "portfolio identity violated on '$case $variant $extra':" >&2
                echo "  cdcl:      rc=$cdcl_rc  $cdcl_out" >&2
                echo "  portfolio: rc=$port_rc  $port_out" >&2
                exit 1
            fi
        done
        echo "  $case $variant: rc=$cdcl_rc verdict '$cdcl_out' identical"
    done
done

echo "== observability: traced catalog verify, trace validation, zero-cost-off"
# Every catalog design runs once with tracing + report JSON on; the
# resulting JSONL must pass trace_report's structural validation
# (parseable lines, balanced per-thread spans) and the report JSON must
# be non-empty. The obs_identity test already pins that tracing never
# changes verdicts; this phase pins the shipped binaries end to end.
cargo build --release -q -p aqed-bench --bin trace_report
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
for case in motivating_clock_enable dataflow_fifo_sizing aes_v1; do
    rc=0
    ./target/release/aqed verify "$case" --bound 8 --jobs 4 \
        --trace-out "$obs_tmp/$case.jsonl" \
        --report-json "$obs_tmp/$case.json" >/dev/null || rc=$?
    if [ "$rc" -gt 1 ]; then
        echo "traced verify of '$case' failed with rc=$rc" >&2
        exit 1
    fi
    ./target/release/trace_report "$obs_tmp/$case.jsonl" --check
    if ! [ -s "$obs_tmp/$case.json" ]; then
        echo "empty report JSON for '$case'" >&2
        exit 1
    fi
done
# The portfolio path emits async (b/e) obligation and worker spans that
# cross threads; a traced portfolio run must still pass structural
# validation (balanced spans, paired async begin/end), and an untraced
# portfolio run keeps the obs layer fully disarmed.
rc=0
./target/release/aqed verify dataflow_fifo_sizing --bound 8 \
    --backend portfolio --portfolio-workers 2 \
    --trace-out "$obs_tmp/portfolio.jsonl" >/dev/null || rc=$?
if [ "$rc" -gt 1 ]; then
    echo "traced portfolio verify failed with rc=$rc" >&2
    exit 1
fi
./target/release/trace_report "$obs_tmp/portfolio.jsonl" --check
if ! grep -q '"ph":"b"' "$obs_tmp/portfolio.jsonl"; then
    echo "portfolio trace contains no async spans" >&2
    exit 1
fi
# Tracing off must cost nothing: with no --trace-out/--report-json the
# obs layer is disarmed and must never touch the clock or buffer an
# event. That invariant is asserted structurally (not by flaky timing)
# in the obs crate's disabled_records_nothing_and_reads_no_clock test.
cargo test -q -p aqed-obs disabled_records_nothing_and_reads_no_clock

echo "== aqed-serve: daemon verdict/exit identity with one-shot CLI"
# The service must be a transparent transport: for every probed case the
# daemon-routed run must report the same exit code and verdict line as
# the one-shot CLI, a warm repeat must be served from the artifact
# cache, and a cancelled-mid-flight job must drain through the same
# exit-2 taxonomy as Ctrl-C.
cargo build --release -q -p aqed-serve
serve_pid=""
trap 'rm -rf "$obs_tmp"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
./target/release/aqed-serve serve --workers 2 --port-file "$obs_tmp/port" \
    >"$obs_tmp/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$obs_tmp/port" ] && break
    sleep 0.1
done
addr=$(cat "$obs_tmp/port")
for case in motivating_clock_enable dataflow_fifo_sizing aes_v1; do
    cli_rc=0
    cli_out=$(./target/release/aqed verify "$case" --bound 8 | verdict) || cli_rc=$?
    srv_rc=0
    srv_out=$(./target/release/aqed-serve submit --addr "$addr" "$case" --bound 8 \
        | verdict) || srv_rc=$?
    if [ "$cli_rc" != "$srv_rc" ] || [ "$cli_out" != "$srv_out" ]; then
        echo "serve identity violated on '$case':" >&2
        echo "  one-shot: rc=$cli_rc  $cli_out" >&2
        echo "  served:   rc=$srv_rc  $srv_out" >&2
        exit 1
    fi
    echo "  $case: rc=$cli_rc verdict '$cli_out' identical"
done
# Warm repeat: the second daemon run of a case must be answered from the
# cross-request artifact cache (cache_hits > 0 in the job.done event).
warm_hits=$(./target/release/aqed-serve submit --addr "$addr" \
    dataflow_fifo_sizing --bound 8 --events \
    | grep -m1 '"name":"job.done"' \
    | grep -o '"cache_hits":[0-9]*' | head -1 | cut -d: -f2)
if [ -z "$warm_hits" ] || [ "$warm_hits" -eq 0 ]; then
    echo "warm repeat was not served from the artifact cache" >&2
    exit 1
fi
echo "  warm repeat served from cache ($warm_hits obligation hits)"
# Cancellation: a slow healthy run cancelled mid-flight must exit 2
# with a cancelled-inconclusive verdict, like Ctrl-C on the CLI.
cancel_rc=0
cancel_out=$(./target/release/aqed-serve submit --addr "$addr" aes_v1 \
    --healthy --bound 8 --timeout-secs 120 --cancel-after-ms 500) || cancel_rc=$?
if [ "$cancel_rc" != 2 ] || ! echo "$cancel_out" | grep -q 'cancelled'; then
    echo "cancelled job did not drain through exit 2 (rc=$cancel_rc): $cancel_out" >&2
    exit 1
fi
echo "  cancelled-mid-flight job drained with rc=2"
./target/release/aqed-serve shutdown --addr "$addr" >/dev/null
wait "$serve_pid"
serve_pid=""

echo "== durability: kill -9, restart, warm identity from the recovered store"
# The daemon must survive the harshest crash (SIGKILL — no drain, no
# flush handler) without losing completed verdicts: a restart on the
# same --store-dir must recover the journal, report it via `health`,
# and answer re-submitted cases from the store with verdicts identical
# to the pre-kill runs.
store_dir="$obs_tmp/store"
json_field() { # json_field NAME < json-on-stdin -> bare integer
    grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}
start_daemon() { # start_daemon [extra aqed-serve flags...]
    rm -f "$obs_tmp/port"
    ./target/release/aqed-serve serve --workers 2 --store-dir "$store_dir" \
        --flush-ms 50 --port-file "$obs_tmp/port" "$@" \
        >>"$obs_tmp/serve.log" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$obs_tmp/port" ] && break
        sleep 0.1
    done
    addr=$(cat "$obs_tmp/port")
}
start_daemon
cold_rcs=""
cold_outs=""
for case in motivating_clock_enable dataflow_fifo_sizing; do
    rc=0
    out=$(./target/release/aqed-serve submit --addr "$addr" "$case" --bound 8 \
        | verdict) || rc=$?
    cold_rcs="$cold_rcs $rc"
    cold_outs="$cold_outs|$out"
done
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
start_daemon
health=$(./target/release/aqed-serve health --addr "$addr")
recovered=$(echo "$health" | json_field recovered)
truncated=$(echo "$health" | json_field truncated)
if [ -z "$recovered" ] || [ "$recovered" -eq 0 ]; then
    echo "restart after kill -9 recovered no records: $health" >&2
    exit 1
fi
if [ "$truncated" != "0" ]; then
    echo "flushed journal must recover without damage: $health" >&2
    exit 1
fi
echo "  restart recovered $recovered records, 0 truncated"
warm_rcs=""
warm_outs=""
for case in motivating_clock_enable dataflow_fifo_sizing; do
    rc=0
    out=$(./target/release/aqed-serve submit --addr "$addr" "$case" --bound 8 \
        --retries 5 | verdict) || rc=$?
    warm_rcs="$warm_rcs $rc"
    warm_outs="$warm_outs|$out"
done
if [ "$cold_rcs" != "$warm_rcs" ] || [ "$cold_outs" != "$warm_outs" ]; then
    echo "warm-after-kill verdicts diverged from pre-kill runs:" >&2
    echo "  pre-kill:  rcs=$cold_rcs  $cold_outs" >&2
    echo "  post-kill: rcs=$warm_rcs  $warm_outs" >&2
    exit 1
fi
health=$(./target/release/aqed-serve health --addr "$addr")
hits=$(echo "$health" | json_field outcome_hits)
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "post-kill re-submits were not served from the store: $health" >&2
    exit 1
fi
echo "  post-kill verdicts identical, $hits obligation hits from the store"
./target/release/aqed-serve shutdown --addr "$addr" >/dev/null
wait "$serve_pid"
serve_pid=""

echo "== durability: corrupted-store (bit-flip) recovery"
# Flip one bit mid-journal: the next open must truncate the damaged
# tail (reported as truncated > 0 in health), keep serving, and still
# agree with the pre-corruption verdicts — missing facts are re-solved,
# never guessed.
journal="$store_dir/journal.aqed"
if ! [ -s "$journal" ]; then
    echo "expected a journal at $journal after the kill-restart phase" >&2
    exit 1
fi
python3 - "$journal" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0x40
open(path, "wb").write(bytes(data))
EOF
start_daemon
health=$(./target/release/aqed-serve health --addr "$addr")
truncated=$(echo "$health" | json_field truncated)
if [ -z "$truncated" ] || [ "$truncated" -eq 0 ]; then
    echo "bit-flipped journal must report truncated records: $health" >&2
    exit 1
fi
echo "  corrupted open truncated $truncated damaged records and kept serving"
post_rcs=""
post_outs=""
for case in motivating_clock_enable dataflow_fifo_sizing; do
    rc=0
    out=$(./target/release/aqed-serve submit --addr "$addr" "$case" --bound 8 \
        --retries 5 | verdict) || rc=$?
    post_rcs="$post_rcs $rc"
    post_outs="$post_outs|$out"
done
if [ "$cold_rcs" != "$post_rcs" ] || [ "$cold_outs" != "$post_outs" ]; then
    echo "post-corruption verdicts diverged:" >&2
    echo "  pre-corruption:  rcs=$cold_rcs  $cold_outs" >&2
    echo "  post-corruption: rcs=$post_rcs  $post_outs" >&2
    exit 1
fi
echo "  post-corruption verdicts identical to the pre-kill runs"
./target/release/aqed-serve shutdown --addr "$addr" >/dev/null
wait "$serve_pid"
serve_pid=""

echo "== warm-start: re-verify after a one-constant edit (CI mode)"
# The incremental loop end-to-end: verify a suite cold into a store,
# apply a one-constant edit to one design, re-verify warm. The bench
# binary asserts verdict identity between every warm phase and the
# cold run internally; the gate additionally pins that obligations
# whose cones the edit missed were actually reused, not re-solved.
cargo build --release -q -p aqed-bench --bin bench_reverify
ws_out=$(AQED_SUITE="dataflow_fifo_sizing,optflow_pushpop" \
    ./target/release/bench_reverify dataflow_fifo_sizing 6 1)
echo "$ws_out" | grep -q "verdict identity: OK" || {
    echo "bench_reverify did not confirm verdict identity:" >&2
    echo "$ws_out" >&2
    exit 1
}
echo "$ws_out" | grep -qE "reused [1-9][0-9]* verdict" || {
    echo "edited design reused no cone-keyed verdicts:" >&2
    echo "$ws_out" >&2
    exit 1
}
echo "  warm-after-edit verdicts identical; untouched cones reused"
# CLI deepening reuse: clean@8 in the store lets the bound-12 re-run
# skip the proven prefix (verdicts_reused > 0 in the report JSON)
# while agreeing with a cold bound-12 run.
ws_store="$obs_tmp/ws-store"
deep_cold_rc=0
deep_cold=$(./target/release/aqed verify dataflow_fifo_sizing --healthy \
    --bound 12 | verdict) || deep_cold_rc=$?
./target/release/aqed verify dataflow_fifo_sizing --healthy --bound 8 \
    --store-dir "$ws_store" >/dev/null
deep_warm_rc=0
deep_warm=$(./target/release/aqed verify dataflow_fifo_sizing --healthy \
    --bound 12 --store-dir "$ws_store" \
    --report-json "$obs_tmp/ws-report.json" | verdict) || deep_warm_rc=$?
if [ "$deep_cold_rc" != "$deep_warm_rc" ] || [ "$deep_cold" != "$deep_warm" ]; then
    echo "deepening re-verify diverged from cold:" >&2
    echo "  cold: rc=$deep_cold_rc  $deep_cold" >&2
    echo "  warm: rc=$deep_warm_rc  $deep_warm" >&2
    exit 1
fi
grep -qE '"verdicts_reused":[1-9]' "$obs_tmp/ws-report.json" || {
    echo "bound-12 re-run did not reuse the bound-8 proven prefix:" >&2
    cat "$obs_tmp/ws-report.json" >&2
    exit 1
}
echo "  deepening 8 -> 12: verdict '$deep_warm' identical, proven prefix reused"

echo "== warm-start: corrupted learnt-clause artifact falls back to cold"
# Damage the learnt-pack record specifically: the checksummed journal
# truncates at the corruption, the learnt hints are lost, and the
# re-verify must quietly re-solve — identical verdict, never a crash
# or a stale answer.
lc_store="$obs_tmp/lc-store"
lc_cold_rc=0
lc_cold=$(./target/release/aqed verify dataflow_fifo_sizing --bound 16 \
    --store-dir "$lc_store" | verdict) || lc_cold_rc=$?
grep -q '"k":"learnts"' "$lc_store/journal.aqed" || {
    echo "cold run journaled no learnt pack at $lc_store/journal.aqed" >&2
    exit 1
}
python3 - "$lc_store/journal.aqed" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
pos = data.find(b'"k":"learnts"')
assert pos >= 0, "no learnts record to corrupt"
data[pos + 6] = ord("X")
open(path, "wb").write(bytes(data))
EOF
lc_warm_rc=0
lc_warm=$(./target/release/aqed verify dataflow_fifo_sizing --bound 16 \
    --store-dir "$lc_store" | verdict) || lc_warm_rc=$?
if [ "$lc_cold_rc" != "$lc_warm_rc" ] || [ "$lc_cold" != "$lc_warm" ]; then
    echo "corrupted learnt artifact changed the verdict:" >&2
    echo "  cold:           rc=$lc_cold_rc  $lc_cold" >&2
    echo "  post-corruption: rc=$lc_warm_rc  $lc_warm" >&2
    exit 1
fi
echo "  corrupted learnt pack discarded; verdict '$lc_warm' unchanged"

echo "== observability plane: stats scrape, monotone counters, postmortem bundle"
# A live daemon must serve a well-formed Prometheus exposition whose
# counters are monotone across scrapes, and a worker death must leave a
# postmortem bundle under --store-dir/postmortem/ that trace_report can
# open and validate.
store_dir="$obs_tmp/obs-store"
start_daemon --chaos-panic-case motivating_clock_enable
./target/release/aqed-serve submit --addr "$addr" dataflow_fifo_sizing \
    --bound 6 >/dev/null
scrape1=$(./target/release/aqed-serve stats --addr "$addr")
bad_lines=$(echo "$scrape1" | grep -v '^#' \
    | grep -cvE '^aqed_[a-zA-Z0-9_]+(\{[^{}]*\})? (-?[0-9][0-9.eE+-]*|\+Inf)$' \
    || true)
if [ "$bad_lines" != "0" ]; then
    echo "malformed Prometheus exposition ($bad_lines bad lines):" >&2
    echo "$scrape1" | grep -v '^#' \
        | grep -vE '^aqed_[a-zA-Z0-9_]+(\{[^{}]*\})? (-?[0-9][0-9.eE+-]*|\+Inf)$' >&2
    exit 1
fi
./target/release/aqed-serve submit --addr "$addr" dataflow_fifo_sizing \
    --healthy --bound 6 >/dev/null
scrape2=$(./target/release/aqed-serve stats --addr "$addr")
done1=$(echo "$scrape1" | grep '^aqed_serve_jobs_completed_total ' | awk '{print $2}')
done2=$(echo "$scrape2" | grep '^aqed_serve_jobs_completed_total ' | awk '{print $2}')
if [ -z "$done1" ] || [ -z "$done2" ] \
    || [ "${done1%%.*}" -lt 1 ] || [ "${done2%%.*}" -lt "${done1%%.*}" ]; then
    echo "jobs_completed_total not monotone across scrapes: '$done1' -> '$done2'" >&2
    exit 1
fi
echo "  exposition well-formed; jobs_completed_total $done1 -> $done2 monotone"
# Kill a worker mid-job via the chaos hook; the supervisor must write a
# worker-died postmortem bundle that trace_report validates.
chaos_rc=0
./target/release/aqed-serve submit --addr "$addr" motivating_clock_enable \
    >/dev/null 2>&1 || chaos_rc=$?
if [ "$chaos_rc" != 2 ]; then
    echo "chaos-panic job must fail with rc=2, got rc=$chaos_rc" >&2
    exit 1
fi
bundle=""
for _ in $(seq 1 50); do
    bundle=$(ls "$store_dir"/postmortem/*worker-died*.json 2>/dev/null | head -1)
    [ -n "$bundle" ] && break
    sleep 0.1
done
if [ -z "$bundle" ]; then
    echo "no worker-died postmortem bundle under $store_dir/postmortem" >&2
    ls -la "$store_dir/postmortem" 2>&1 >&2 || true
    exit 1
fi
./target/release/trace_report --postmortem "$bundle" --check
echo "  postmortem bundle $(basename "$bundle") validated by trace_report"
./target/release/aqed-serve shutdown --addr "$addr" >/dev/null
wait "$serve_pid"
serve_pid=""

echo "CI OK"
