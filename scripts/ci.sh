#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   scripts/ci.sh            # run everything
#
# Mirrors what reviewers run before merging; keep it green.
#
# Test phases run under a hard wall-clock timeout (CI_TEST_TIMEOUT
# seconds, default 1800): a verification hang is a bug in the resource
# governor, and the gate must fail loudly instead of wedging the queue.
set -euo pipefail
cd "$(dirname "$0")/.."

CI_TEST_TIMEOUT="${CI_TEST_TIMEOUT:-1800}"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (workspace, no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test (workspace, ${CI_TEST_TIMEOUT}s hard timeout)"
timeout --kill-after=30 "$CI_TEST_TIMEOUT" cargo test -q --workspace

echo "== jobs-identity sweep under fail-fast cancellation"
timeout --kill-after=30 "$CI_TEST_TIMEOUT" \
    env AQED_FAIL_FAST=1 cargo test -q -p aqed-cli --test jobs_identity

echo "CI OK"
