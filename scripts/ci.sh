#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
#   scripts/ci.sh            # run everything
#
# Mirrors what reviewers run before merging; keep it green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (workspace, no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test (workspace)"
cargo test -q --workspace

echo "CI OK"
