//! # A-QED — Accelerator Quick Error Detection
//!
//! Umbrella crate re-exporting the full A-QED verification stack, a Rust
//! reproduction of *"A-QED Verification of Hardware Accelerators"* (DAC
//! 2020). See [`core`] for the A-QED harness itself and `DESIGN.md` in the
//! repository for the system inventory.
//!
//! The stack, bottom-up:
//!
//! * [`bitvec`] — fixed-width bit-vector values,
//! * [`expr`] — hash-consed word-level expression IR,
//! * [`sat`] — CDCL SAT solver,
//! * [`bitblast`] — word-level → CNF encoding,
//! * [`tsys`] — transition systems (paper Def. 1) and a simulator,
//! * [`bmc`] — incremental bounded model checking,
//! * [`hls`] — HLS-lite accelerator synthesis,
//! * [`core`] — A-QED FC/RB/SAC monitors and the one-call verifier,
//! * [`designs`] — case-study accelerators with tracked bug variants,
//! * [`sim`] — the conventional-verification baseline flow.

pub use aqed_bitblast as bitblast;
pub use aqed_bitvec as bitvec;
pub use aqed_bmc as bmc;
pub use aqed_core as core;
pub use aqed_designs as designs;
pub use aqed_expr as expr;
pub use aqed_hls as hls;
pub use aqed_sat as sat;
pub use aqed_sim as sim;
pub use aqed_tsys as tsys;
