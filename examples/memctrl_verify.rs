//! The memory-controller case study end to end: A-QED vs the
//! conventional simulation flow on a realistic control-logic bug.
//!
//! ```text
//! cargo run --release --example memctrl_verify
//! ```
//!
//! The double-buffer configuration is built with the "swap without drain
//! check" defect — the bank swap fires as soon as the fill side is
//! complete, vanishing undelivered words. Both flows hunt it; compare the
//! trace lengths.

use aqed::core::{AqedHarness, CheckOutcome, FcConfig};
use aqed::designs::memctrl::{build, golden, recommended_rb, MemctrlBug, MemctrlConfig};
use aqed::expr::ExprPool;
use aqed::sim::Testbench;

fn main() {
    let config = MemctrlConfig::DoubleBuffer;
    let bug = MemctrlBug::DbSwapWithoutDrainCheck;

    // --- A-QED ---------------------------------------------------------
    let mut pool = ExprPool::new();
    let lca = build(&mut pool, config, Some(bug));
    let report = AqedHarness::new(&lca)
        .with_fc(FcConfig::default())
        .with_rb(recommended_rb(config))
        .verify(&mut pool, 16);
    println!("A-QED        : {report}");
    let aqed_cycles = match &report.outcome {
        CheckOutcome::Bug { counterexample, .. } => {
            println!("\nA-QED counterexample inputs:");
            println!("{}", counterexample.trace.to_table(&pool));
            counterexample.cycles()
        }
        other => panic!("expected a bug, got {other:?}"),
    };

    // --- Conventional flow ------------------------------------------------
    let outcome = Testbench::default().run(&lca, &pool, golden);
    println!("conventional : {outcome}");
    let conv_cycles = outcome
        .trace_cycles()
        .expect("this bug is conventionally detectable");

    println!(
        "\ntrace lengths: A-QED {aqed_cycles} cycles vs conventional {conv_cycles} cycles ({}x shorter)",
        conv_cycles as usize / aqed_cycles
    );

    // --- And the healthy design passes both flows -------------------------
    let mut pool = ExprPool::new();
    let healthy = build(&mut pool, config, None);
    let clean = AqedHarness::new(&healthy)
        .with_fc(FcConfig::default())
        .with_rb(recommended_rb(config))
        .verify(&mut pool, 10);
    println!("\nhealthy design under A-QED: {clean}");
    assert!(!clean.found_bug());
}
