//! Quickstart: describe an accelerator, inject a bug, let A-QED find it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The accelerator computes `f(x) = x² + 1` behind a standard ready-valid
//! handshake (synthesized by the HLS-lite layer). We build it twice: once
//! healthy and once with a forwarding bug that corrupts a result when a
//! delivery coincides with a new capture. A-QED needs *no specification*
//! to catch the bug — only the universal Functional Consistency property.

use aqed::core::{AqedHarness, CheckOutcome, FcConfig};
use aqed::expr::ExprPool;
use aqed::hls::{synthesize, AccelSpec, SynthOptions};

fn main() {
    // 1. Describe the accelerator: 2-bit action, 8-bit data in/out,
    //    2-cycle latency.
    let spec = AccelSpec::new("square_plus_one", 2, 8, 8).with_latency(2);

    // 2. The datapath: a word-level expression of the operation.
    let datapath = |pool: &mut ExprPool, _action, data| {
        let sq = pool.mul(data, data);
        let one = pool.lit(8, 1);
        pool.add(sq, one)
    };

    // 3. Verify the healthy design.
    let mut pool = ExprPool::new();
    let healthy = synthesize(&spec, &mut pool, SynthOptions::default(), datapath);
    let report = AqedHarness::new(&healthy)
        .with_fc(FcConfig::default())
        .verify(&mut pool, 10);
    println!("healthy design : {report}");

    // 4. Verify the buggy design (forwarding-path defect).
    let buggy_opts = SynthOptions {
        forwarding_bug: true,
        ..SynthOptions::default()
    };
    let mut pool = ExprPool::new();
    let buggy = synthesize(&spec, &mut pool, buggy_opts, datapath);
    let report = AqedHarness::new(&buggy)
        .with_fc(FcConfig::default())
        .verify(&mut pool, 10);
    println!("buggy design   : {report}");

    // 5. Inspect the counterexample: a concrete input trace that makes
    //    the same input produce two different outputs.
    match report.outcome {
        CheckOutcome::Bug { counterexample, .. } => {
            println!(
                "\ncounterexample trace ({} cycles, property '{}'):",
                counterexample.cycles(),
                counterexample.bad_name
            );
            println!("{}", counterexample.trace.to_table(&pool));
            assert!(
                counterexample.replay(&buggy.ts, &pool),
                "the trace replays on the cycle-accurate simulator"
            );
            println!("replayed on the simulator: the violation is real.");
        }
        other => panic!("expected a bug, got {other:?}"),
    }
}
