//! Response Bound in action: FIFO sizing overflow and a ready-signal
//! deadlock, both caught without any design-specific property.
//!
//! ```text
//! cargo run --release --example deadlock_rb
//! ```

use aqed::core::{AqedHarness, CheckOutcome, PropertyKind};
use aqed::designs::dataflow::{self, DataflowBug};
use aqed::designs::memctrl::{self, MemctrlBug, MemctrlConfig};
use aqed::expr::ExprPool;

fn main() {
    // 1. The dataflow design whose producer believes the intermediate
    //    FIFO is deeper than the hardware instantiates: an overflowed
    //    word is dropped and its output never arrives (RB part 2:
    //    cnt_rdh ≥ τ ∧ cnt_in ≥ in_min → rdy_out).
    let mut pool = ExprPool::new();
    let lca = dataflow::build(&mut pool, Some(DataflowBug::FifoSizing));
    let report = AqedHarness::new(&lca)
        .with_rb(dataflow::recommended_rb())
        .verify(&mut pool, 16);
    match &report.outcome {
        CheckOutcome::Bug {
            property,
            counterexample,
        } => {
            assert_eq!(*property, PropertyKind::Rb);
            println!(
                "dataflow FIFO sizing : RB violation '{}' in {} cycles ({:?})",
                counterexample.bad_name,
                counterexample.cycles(),
                report.runtime
            );
        }
        other => panic!("expected RB bug, got {other:?}"),
    }

    // 2. The memory controller whose sticky full flag never clears: rdin
    //    stays low forever — host starvation (RB part 1).
    let mut pool = ExprPool::new();
    let lca = memctrl::build(
        &mut pool,
        MemctrlConfig::Fifo,
        Some(MemctrlBug::FifoStuckFullDeadlock),
    );
    let report = AqedHarness::new(&lca)
        .with_rb(memctrl::recommended_rb(MemctrlConfig::Fifo))
        .verify(&mut pool, 16);
    match &report.outcome {
        CheckOutcome::Bug {
            property,
            counterexample,
        } => {
            assert_eq!(*property, PropertyKind::Rb);
            println!(
                "FIFO sticky deadlock : RB violation '{}' in {} cycles ({:?})",
                counterexample.bad_name,
                counterexample.cycles(),
                report.runtime
            );
            println!("\ndeadlock witness inputs:");
            println!("{}", counterexample.trace.to_table(&pool));
        }
        other => panic!("expected RB bug, got {other:?}"),
    }

    // 3. Healthy designs sail through the same checks.
    let mut pool = ExprPool::new();
    let lca = dataflow::build(&mut pool, None);
    let report = AqedHarness::new(&lca)
        .with_rb(dataflow::recommended_rb())
        .verify(&mut pool, 12);
    println!("healthy dataflow    : {report}");
    assert!(!report.found_bug());
}
