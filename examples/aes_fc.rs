//! The AES case study: Functional Consistency with the paper's
//! "common key across a batch" customization.
//!
//! ```text
//! cargo run --release --example aes_fc
//! ```
//!
//! The BMC target is the *abstracted* small-scale AES (16-bit block,
//! 4-bit S-box, 4 rounds — the paper likewise ran BMC on abstracted AES
//! for scalability). The full-scale AES-128 implementation serves as the
//! simulation golden model and is exercised here against FIPS-197.

use aqed::core::{AqedHarness, CheckOutcome, FcConfig, PropertyKind};
use aqed::designs::aes::{build, encrypt, AesBug};
use aqed::designs::aes128;
use aqed::expr::ExprPool;

fn main() {
    // Full-scale AES-128 sanity (the simulation-side golden model).
    let key = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    let pt = [
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07,
        0x34,
    ];
    let ct = aes128::encrypt_block(&key, &pt);
    println!(
        "AES-128 FIPS-197 vector: {:02x}{:02x}{:02x}{:02x}…  ✔",
        ct[0], ct[1], ct[2], ct[3]
    );

    // Small-scale AES golden model.
    println!(
        "small-scale AES: encrypt(0x1A2B, 0xC0DE) = {:#06x}",
        encrypt(0x1A2B, 0xC0DE)
    );

    // The paper's batch customization: every input in a batch shares the
    // key, expressed as an environment constraint over data[31:16].
    let fc = FcConfig {
        common_field: Some((31, 16)),
        ..FcConfig::default()
    };

    // Healthy core is clean.
    let mut pool = ExprPool::new();
    let healthy = build(&mut pool, None);
    let report = AqedHarness::new(&healthy)
        .with_fc(fc.clone())
        .verify(&mut pool, 12);
    println!("\nAES (healthy) : {report}");
    assert!(!report.found_bug());

    // Each buggy variant v1–v4 falls to the same universal FC property.
    for bug in AesBug::ALL {
        let bound = match bug {
            AesBug::V2RoundCounterResetRace => 10,
            AesBug::V3IdlePathCorruption => 14,
            _ => 12,
        };
        let mut pool = ExprPool::new();
        let lca = build(&mut pool, Some(bug));
        let report = AqedHarness::new(&lca)
            .with_fc(fc.clone())
            .verify(&mut pool, bound);
        match &report.outcome {
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                assert_eq!(*property, PropertyKind::Fc);
                println!(
                    "AES ({})    : FC violation, {}-cycle counterexample, {:?}",
                    bug.id(),
                    counterexample.cycles(),
                    report.runtime
                );
            }
            other => panic!("{}: expected FC bug, got {other:?}", bug.id()),
        }
    }
}
