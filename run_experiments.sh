#!/bin/bash
# Regenerates every table and figure of the paper into results/.
# Uses the dev profile: the workspace pins opt-level 3 for every aqed
# crate, so this is release-speed without a second full compile.
set -e
mkdir -p results
echo "== table1 =="; cargo run -p aqed-bench --bin table1 | tee results/table1.txt
echo "== fig5 ==";   cargo run -p aqed-bench --bin fig5   | tee results/fig5.txt
echo "== table2 =="; cargo run -p aqed-bench --bin table2 | tee results/table2.txt
