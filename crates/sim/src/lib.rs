//! The conventional verification flow — the paper's comparison baseline.
//!
//! The paper's memory-controller unit was verified by a conventional
//! simulation-based flow: a golden functional model, hand-crafted
//! testbenches with several stimulus profiles, and full-application runs.
//! This crate reproduces that flow: a [`Testbench`] drives a design
//! through its ready-valid handshake with a set of [`StimulusProfile`]s
//! (directed data patterns and constrained-random traffic), checks every
//! delivered output against the golden model through a scoreboard, and
//! watches for hangs with a watchdog.
//!
//! The flow reports *cycles-to-detect* (the paper's "trace length"
//! metric) and wall-clock runtime, and — crucially — it can *miss* bugs
//! whose trigger needs a data/timing coincidence its profiles never
//! produce within the cycle budget. That is exactly the 13% gap in the
//! paper's Fig. 5 that A-QED closes.
//!
//! # Examples
//!
//! ```
//! use aqed_sim::{Testbench, Verdict};
//! use aqed_designs::memctrl::{build, golden, MemctrlBug, MemctrlConfig};
//! use aqed_expr::ExprPool;
//!
//! let mut p = ExprPool::new();
//! let lca = build(&mut p, MemctrlConfig::Fifo, Some(MemctrlBug::FifoPtrWrapOffByOne));
//! let outcome = Testbench::default().run(&lca, &p, golden);
//! assert!(matches!(outcome.verdict, Verdict::Detected { .. }));
//! ```

use aqed_bitvec::Bv;
use aqed_expr::{ExprPool, VarId};
use aqed_hls::Lca;
use aqed_tsys::Simulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

/// A stimulus profile: what data the testbench drives and how bursty the
/// traffic is. The directed profiles model the "well-crafted test
/// patterns and full-fledged applications" of the paper's conventional
/// flow; [`StimulusProfile::ConstrainedRandom`] adds randomized data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StimulusProfile {
    /// Incrementing data words, steady traffic — an application-like
    /// streaming pattern.
    IncrementingStream,
    /// Walking-ones data with bursts and host stalls.
    WalkingOnesBursts,
    /// Uniformly random data, random traffic and host readiness.
    ConstrainedRandom,
    /// Heavy congestion: long host stalls to exercise backpressure.
    BackpressureStress,
    /// Clock-enable gating (only meaningful for designs that have one).
    ClockGating,
}

impl StimulusProfile {
    /// The default profile set of the conventional flow.
    pub const ALL: [StimulusProfile; 5] = [
        StimulusProfile::IncrementingStream,
        StimulusProfile::WalkingOnesBursts,
        StimulusProfile::ConstrainedRandom,
        StimulusProfile::BackpressureStress,
        StimulusProfile::ClockGating,
    ];
}

/// How a bug manifested to the testbench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionKind {
    /// A delivered output disagreed with the golden model.
    Mismatch,
    /// An output was delivered with no outstanding operation.
    SpuriousOutput,
    /// The watchdog expired: no progress while work was pending.
    Hang,
}

/// The testbench's verdict for one design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The bug was detected.
    Detected {
        /// How it manifested.
        kind: DetectionKind,
        /// Which profile caught it.
        profile: StimulusProfile,
        /// Seed of the failing run.
        seed: u64,
        /// Cycle index (within the failing run) of the detection — the
        /// paper's "trace length".
        trace_cycles: u64,
    },
    /// All profiles and seeds passed within the budget.
    Passed,
}

/// Full outcome of a conventional-flow run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Verdict.
    pub verdict: Verdict,
    /// Total simulated cycles across all runs.
    pub total_cycles: u64,
    /// Wall-clock time of the whole flow.
    pub runtime: Duration,
}

impl SimOutcome {
    /// The trace length if a bug was detected.
    #[must_use]
    pub fn trace_cycles(&self) -> Option<u64> {
        match &self.verdict {
            Verdict::Detected { trace_cycles, .. } => Some(*trace_cycles),
            Verdict::Passed => None,
        }
    }

    /// Whether the flow found the bug.
    #[must_use]
    pub fn detected(&self) -> bool {
        matches!(self.verdict, Verdict::Detected { .. })
    }
}

impl fmt::Display for SimOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.verdict {
            Verdict::Detected {
                kind,
                profile,
                seed,
                trace_cycles,
            } => write!(
                f,
                "detected ({kind:?}) by {profile:?} seed {seed} after {trace_cycles} cycles ({:?})",
                self.runtime
            ),
            Verdict::Passed => write!(
                f,
                "passed: {} cycles simulated ({:?})",
                self.total_cycles, self.runtime
            ),
        }
    }
}

/// The conventional-flow testbench.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Testbench {
    /// Cycle budget per (profile, seed) run.
    pub cycles_per_run: u64,
    /// Random seeds tried per profile.
    pub seeds: Vec<u64>,
    /// Profiles exercised.
    pub profiles: Vec<StimulusProfile>,
    /// Watchdog: cycles without progress (while work is pending and the
    /// host is ready) before declaring a hang.
    pub watchdog: u64,
}

impl Default for Testbench {
    fn default() -> Self {
        Testbench {
            cycles_per_run: 5_000,
            seeds: vec![1, 2, 3],
            profiles: StimulusProfile::ALL.to_vec(),
            watchdog: 128,
        }
    }
}

impl Testbench {
    /// A short-budget testbench for unit tests.
    #[must_use]
    pub fn quick() -> Self {
        Testbench {
            cycles_per_run: 1_000,
            seeds: vec![7],
            profiles: StimulusProfile::ALL.to_vec(),
            watchdog: 96,
        }
    }

    /// Runs the full flow: every profile × every seed, stopping at the
    /// first detection.
    ///
    /// `golden` is the design's functional model `(action, data) → out`.
    #[must_use]
    pub fn run(&self, lca: &Lca, pool: &ExprPool, golden: fn(u64, u64) -> u64) -> SimOutcome {
        let start = Instant::now();
        let mut total_cycles = 0u64;
        for &profile in &self.profiles {
            for &seed in &self.seeds {
                let (result, cycles) = self.run_one(lca, pool, golden, profile, seed);
                total_cycles += cycles;
                if let Some((kind, trace_cycles)) = result {
                    return SimOutcome {
                        verdict: Verdict::Detected {
                            kind,
                            profile,
                            seed,
                            trace_cycles,
                        },
                        total_cycles,
                        runtime: start.elapsed(),
                    };
                }
            }
        }
        SimOutcome {
            verdict: Verdict::Passed,
            total_cycles,
            runtime: start.elapsed(),
        }
    }

    /// Runs one (profile, seed) simulation. Returns the detection (if
    /// any) and the number of cycles simulated.
    fn run_one(
        &self,
        lca: &Lca,
        pool: &ExprPool,
        golden: fn(u64, u64) -> u64,
        profile: StimulusProfile,
        seed: u64,
    ) -> (Option<(DetectionKind, u64)>, u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ profile_salt(profile));
        let mut sim = Simulator::new(&lca.ts, pool);
        let data_w = pool.var_width(lca.data);
        let action_w = pool.var_width(lca.action);
        let mut expected: VecDeque<u64> = VecDeque::new();
        let mut idle = 0u64;
        let mut walking = 1u64;
        let mut counter = 0u64;

        for cycle in 0..self.cycles_per_run {
            // --- Generate stimulus -------------------------------------
            let (p_send, p_rdh, p_ce): (f64, f64, f64) = match profile {
                StimulusProfile::IncrementingStream => (0.9, 0.9, 1.0),
                StimulusProfile::WalkingOnesBursts => (0.6, 0.7, 1.0),
                StimulusProfile::ConstrainedRandom => (0.5, 0.5, 1.0),
                StimulusProfile::BackpressureStress => (0.9, 0.15, 1.0),
                StimulusProfile::ClockGating => (0.6, 0.6, 0.7),
            };
            let send = rng.gen_bool(p_send);
            let rdh = rng.gen_bool(p_rdh);
            let ce = lca.clock_enable.is_none() || rng.gen_bool(p_ce);
            let data_val = match profile {
                StimulusProfile::IncrementingStream => {
                    counter = counter.wrapping_add(1);
                    counter & Bv::mask(data_w)
                }
                StimulusProfile::WalkingOnesBursts => {
                    walking = walking.rotate_left(1);
                    walking & Bv::mask(data_w)
                }
                _ => rng.gen::<u64>() & Bv::mask(data_w),
            };
            let action_val = u64::from(send);

            let mut inputs: Vec<(VarId, Bv)> = vec![
                (lca.action, Bv::new(action_w, action_val)),
                (lca.data, Bv::new(data_w, data_val)),
                (lca.rdh, Bv::from_bool(rdh)),
            ];
            if let Some(cev) = lca.clock_enable {
                inputs.push((cev, Bv::from_bool(ce)));
            }

            // --- Observe, then clock ------------------------------------
            let cap = sim.peek(pool, lca.captured, &inputs).is_true();
            let del = sim.peek(pool, lca.delivered, &inputs).is_true();
            let out = sim.peek(pool, lca.out, &inputs).to_u64();
            sim.step_with(&lca.ts, pool, &inputs);

            if cap {
                expected.push_back(golden(action_val, data_val));
            }
            if del {
                match expected.pop_front() {
                    Some(want) => {
                        if out != want {
                            return (Some((DetectionKind::Mismatch, cycle + 1)), cycle + 1);
                        }
                    }
                    None => {
                        return (Some((DetectionKind::SpuriousOutput, cycle + 1)), cycle + 1);
                    }
                }
            }

            // --- Watchdog -------------------------------------------------
            // Count cycles since the design last made progress (captured
            // an input or delivered an output) while there is work to do:
            // an operation being offered or outputs still outstanding.
            if cap || del {
                idle = 0;
            } else if send || !expected.is_empty() {
                idle += 1;
            }
            if idle >= self.watchdog {
                return (Some((DetectionKind::Hang, cycle + 1)), cycle + 1);
            }
        }
        (None, self.cycles_per_run)
    }
}

fn profile_salt(profile: StimulusProfile) -> u64 {
    match profile {
        StimulusProfile::IncrementingStream => 0x1111,
        StimulusProfile::WalkingOnesBursts => 0x2222,
        StimulusProfile::ConstrainedRandom => 0x3333,
        StimulusProfile::BackpressureStress => 0x4444,
        StimulusProfile::ClockGating => 0x5555,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_designs::memctrl::{self, MemctrlBug, MemctrlConfig};
    use aqed_designs::{dataflow, gsm, motivating};

    #[test]
    fn healthy_configs_pass() {
        for config in MemctrlConfig::ALL {
            let mut p = ExprPool::new();
            let lca = memctrl::build(&mut p, config, None);
            let outcome = Testbench::quick().run(&lca, &p, memctrl::golden);
            assert!(!outcome.detected(), "{config:?} healthy flagged: {outcome}");
        }
    }

    #[test]
    fn conventional_detects_easy_fifo_bug() {
        let mut p = ExprPool::new();
        let lca = memctrl::build(
            &mut p,
            MemctrlConfig::Fifo,
            Some(MemctrlBug::FifoPtrWrapOffByOne),
        );
        let outcome = Testbench::quick().run(&lca, &p, memctrl::golden);
        assert!(outcome.detected(), "easy bug must be found: {outcome}");
    }

    #[test]
    fn conventional_detects_deadlock_via_watchdog() {
        let mut p = ExprPool::new();
        let lca = memctrl::build(
            &mut p,
            MemctrlConfig::Fifo,
            Some(MemctrlBug::FifoStuckFullDeadlock),
        );
        let outcome = Testbench::default().run(&lca, &p, memctrl::golden);
        match outcome.verdict {
            Verdict::Detected { kind, .. } => assert_eq!(kind, DetectionKind::Hang),
            Verdict::Passed => panic!("deadlock must hang the watchdog"),
        }
    }

    #[test]
    fn conventional_misses_corner_case_bugs() {
        for bug in [
            MemctrlBug::FifoRedundantWriteGlitch,
            MemctrlBug::DbWriteCollision,
        ] {
            let mut p = ExprPool::new();
            let lca = memctrl::build(&mut p, bug.config(), Some(bug));
            let outcome = Testbench::default().run(&lca, &p, memctrl::golden);
            assert!(
                !outcome.detected(),
                "{}: the data-dependent corner must escape the conventional flow, got {outcome}",
                bug.id()
            );
        }
    }

    #[test]
    fn conventional_detects_motivating_ce_bug() {
        let mut p = ExprPool::new();
        let lca = motivating::build(
            &mut p,
            Some(motivating::MotivatingBug::ClockEnableDisconnected),
        );
        let outcome = Testbench::default().run(&lca, &p, motivating::golden);
        // The clock-gating profile toggles ce and eventually freezes on
        // buffer 3's turn; the paper reports the conventional flow *did*
        // eventually catch this class (after ~70-cycle application runs).
        assert!(outcome.detected(), "{outcome}");
        assert!(
            outcome.trace_cycles().unwrap() > 6,
            "conventional trace should be much longer than A-QED's"
        );
    }

    #[test]
    fn conventional_detects_dataflow_and_gsm_bugs() {
        let mut p = ExprPool::new();
        let lca = dataflow::build(&mut p, Some(dataflow::DataflowBug::FifoSizing));
        let outcome = Testbench::default().run(&lca, &p, dataflow::golden);
        assert!(outcome.detected(), "dataflow: {outcome}");

        let mut p2 = ExprPool::new();
        let lca2 = gsm::build(&mut p2, Some(gsm::GsmBug::AccumulatorResetRace));
        let outcome2 = Testbench::default().run(&lca2, &p2, gsm::golden);
        assert!(outcome2.detected(), "gsm: {outcome2}");
    }

    #[test]
    fn outcome_display_forms() {
        let mut p = ExprPool::new();
        let lca = memctrl::build(&mut p, MemctrlConfig::Fifo, None);
        let outcome = Testbench::quick().run(&lca, &p, memctrl::golden);
        assert!(outcome.to_string().contains("passed"));
        assert!(outcome.trace_cycles().is_none());
        assert!(outcome.total_cycles > 0);
    }
}
