//! Structured observability for the A-QED verification stack.
//!
//! Three pieces, all dependency-free and offline-friendly:
//!
//! - a **tracing API**: RAII [`span`]s and typed instant [`event`]s with
//!   per-thread buffering, flushed in batches to a pluggable
//!   [`TraceSink`] (JSONL file for `--trace-out`, in-memory for tests);
//! - a **metrics registry** ([`metrics::MetricsRegistry`]) of named
//!   counters, gauges and log-bucketed histograms, sampled by the hot
//!   layers at coarse ticks (e.g. the CDCL budget poll);
//! - a **minimal JSON layer** ([`json`]) shared by the sinks, the
//!   `--report-json` serializer and the `trace_report` tool, since the
//!   build environment has no serde.
//!
//! # Overhead contract
//!
//! Everything is gated on two process-wide flags. With observability off
//! (the default) every entry point reduces to one relaxed atomic load:
//! [`span`] returns an inert guard without reading the clock, the
//! [`obs_event!`] / [`obs_span!`] macros do not even evaluate their field
//! expressions, and instrumentation sites skip metric updates. There are
//! no background threads; events reach the sink on batch overflow, thread
//! exit, or an explicit [`flush`]/[`uninstall_sink`].
//!
//! - [`enabled`] — master switch; gates metric recording. Set by
//!   [`set_enabled`] or implicitly by [`install_sink`].
//! - [`tracing_enabled`] — gates span/event recording; true only while a
//!   sink is installed.
//!
//! # Event schema
//!
//! One JSON object per line (JSONL), in per-thread order (the file as a
//! whole is *not* globally time-sorted — `trace_report` sorts):
//!
//! ```json
//! {"ts":123456,"tid":1,"ph":"B","name":"bmc.solve","args":{"depth":3}}
//! ```
//!
//! - `ts` — nanoseconds since the process-local trace epoch (u64)
//! - `tid` — small sequential id assigned per thread (u64, 1-based)
//! - `ph` — `"B"` (span begin), `"E"` (span end, name repeated so
//!   balance is checkable), `"I"` (instant event), `"b"`/`"e"` (async
//!   span begin/end, paired by `id` rather than thread stack order)
//! - `name` — static event name, dot-namespaced by layer
//!   (`sat.*`, `pp.*`, `bmc.*`, `pipeline.*`, `obligation.*`, ...)
//! - `id` — async span id (only on `"b"`/`"e"` events); process-unique,
//!   so one logical operation can be followed across threads (an
//!   obligation hopping between scheduler workers and portfolio solver
//!   threads)
//! - `args` — optional object of typed fields; numbers, strings, bools

pub mod aggregate;
pub mod json;
pub mod meter;
pub mod metrics;
pub mod recorder;
pub mod sink;

pub use meter::{JobMeter, MeterPhase};
pub use recorder::FlightRecorder;
pub use sink::{JsonlSink, MemorySink, TraceSink};

use std::cell::RefCell;
use std::mem;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Master observability switch: gates metric recording (and is implied
/// by tracing). Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Event/span recording switch: true only while a sink is installed.
static TRACING: AtomicBool = AtomicBool::new(false);
/// Next per-thread trace id (1-based; 0 is never used).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Next async span id (1-based; 0 is never used).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn sink_slot() -> &'static Mutex<Option<Arc<dyn TraceSink>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn TraceSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-local trace epoch.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Whether observability (metric recording) is on. Instrumentation
/// sites check this before touching the clock or the registry.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether span/event recording is on (a sink is installed).
#[inline]
#[must_use]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns metric recording on or off without touching the trace sink.
/// Used by `--report-json` runs that want metrics but no event stream.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Installs `sink` as the process-wide trace sink and enables both
/// tracing and metrics. Replaces (and returns) any previous sink after
/// flushing the calling thread's buffer into it.
pub fn install_sink(sink: Arc<dyn TraceSink>) -> Option<Arc<dyn TraceSink>> {
    flush_thread();
    let prev = lock_slot().replace(sink);
    TRACING.store(true, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    prev
}

/// Disables tracing, flushes the calling thread's buffer and the sink,
/// and returns the sink. Metric recording stays in whatever state
/// [`set_enabled`] last chose.
pub fn uninstall_sink() -> Option<Arc<dyn TraceSink>> {
    TRACING.store(false, Ordering::Relaxed);
    flush_thread();
    let sink = lock_slot().take();
    if let Some(s) = &sink {
        s.flush();
    }
    sink
}

/// Flushes only the calling thread's buffer into the current sink,
/// without forcing the sink itself to flush.
///
/// Worker threads whose lifetime is managed by [`std::thread::scope`]
/// MUST call this before their closure returns: the scope signals
/// completion before thread-local destructors run, so the `ThreadBuf`
/// drop-flush races against the scope owner uninstalling the sink and
/// can silently lose the thread's tail of events.
pub fn flush_local() {
    let _ = TLS.try_with(|tls| tls.borrow_mut().flush());
}

/// Flushes only the calling thread's buffer into the current sink.
fn flush_thread() {
    flush_local();
}

fn lock_slot() -> std::sync::MutexGuard<'static, Option<Arc<dyn TraceSink>>> {
    sink_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn current_sink() -> Option<Arc<dyn TraceSink>> {
    lock_slot().clone()
}

/// A typed field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

macro_rules! impl_from_field {
    ($($t:ty => $v:ident via $conv:expr),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(x: $t) -> Self {
                #[allow(clippy::redundant_closure_call)]
                FieldValue::$v(($conv)(x))
            }
        })*
    };
}
impl_from_field! {
    u64 => U64 via |x| x,
    u32 => U64 via u64::from,
    usize => U64 via |x| x as u64,
    i64 => I64 via |x| x,
    i32 => I64 via i64::from,
    f64 => F64 via |x| x,
    bool => Bool via |x| x,
    String => Str via |x| x,
    &str => Str via str::to_owned,
}

/// A key/value pair on an event. Keys are static so the hot path never
/// allocates for them.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub key: &'static str,
    pub value: FieldValue,
}

/// Event phase, mirroring the Chrome trace-event vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin.
    Begin,
    /// Span end (name repeated for balance checking).
    End,
    /// Instant event.
    Instant,
    /// Async span begin — paired with [`Phase::AsyncEnd`] by `(name,
    /// id)` rather than per-thread stack order, so the span may cross
    /// threads.
    AsyncBegin,
    /// Async span end.
    AsyncEnd,
}

impl Phase {
    /// One-letter JSON code: `B`, `E`, `I`, `b`, or `e`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "I",
            Phase::AsyncBegin => "b",
            Phase::AsyncEnd => "e",
        }
    }
}

/// A single trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Per-thread sequential id (1-based).
    pub tid: u64,
    pub phase: Phase,
    pub name: &'static str,
    /// Async span id; present exactly on [`Phase::AsyncBegin`] and
    /// [`Phase::AsyncEnd`] events.
    pub id: Option<u64>,
    pub fields: Vec<Field>,
}

const BATCH: usize = 128;

struct ThreadBuf {
    tid: u64,
    buf: Vec<TraceEvent>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            buf: Vec::new(),
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        self.buf.push(ev);
        if self.buf.len() >= BATCH {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if let Some(sink) = current_sink() {
            sink.write_batch(&self.buf);
        }
        self.buf.clear();
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

fn record(phase: Phase, name: &'static str, fields: Vec<Field>) {
    record_with_id(phase, name, None, fields);
}

fn record_with_id(phase: Phase, name: &'static str, id: Option<u64>, fields: Vec<Field>) {
    if !tracing_enabled() {
        return;
    }
    let ts_ns = now_ns();
    // try_with: survive records during thread teardown (TLS destroyed).
    let _ = TLS.try_with(|tls| {
        let mut b = tls.borrow_mut();
        let tid = b.tid;
        b.push(TraceEvent {
            ts_ns,
            tid,
            phase,
            name,
            id,
            fields,
        });
    });
}

/// Allocates a fresh, process-unique async span id.
#[must_use]
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CURRENT_SPAN: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// The async span id most recently claimed by this thread (the
/// obligation currently being processed), or `None`. Fan-out layers —
/// the portfolio backend spawning solver threads — read this before
/// spawning so child-thread events can link back to their obligation.
#[must_use]
pub fn current_span_id() -> Option<u64> {
    CURRENT_SPAN.with(std::cell::Cell::get)
}

/// Marks `id` as the async span this thread is working under (`None`
/// clears it). Callers should restore the previous value when done.
pub fn set_current_span_id(id: Option<u64>) {
    CURRENT_SPAN.with(|c| c.set(id));
}

/// Records an instant event. Prefer the [`obs_event!`] macro, which
/// skips field construction entirely when tracing is off.
pub fn event(name: &'static str, fields: Vec<Field>) {
    record(Phase::Instant, name, fields);
}

/// Flushes the calling thread's buffer and the sink. Worker threads
/// flush automatically on exit; long-lived threads may call this at
/// natural boundaries.
pub fn flush() {
    let _ = TLS.try_with(|tls| tls.borrow_mut().flush());
    if let Some(sink) = current_sink() {
        sink.flush();
    }
}

/// RAII span guard: emits a `Begin` on creation (when tracing is on)
/// and the matching `End` on drop — including during unwinding, which
/// keeps traces balanced under `catch_unwind` panic isolation.
#[must_use = "a span ends when its guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    name: Option<&'static str>,
    end_fields: Vec<Field>,
}

impl SpanGuard {
    /// An inert guard (tracing was off at span entry).
    fn inactive() -> Self {
        SpanGuard {
            name: None,
            end_fields: Vec::new(),
        }
    }

    /// Whether the span actually recorded a `Begin`.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.name.is_some()
    }

    /// Attaches a field to the span's `End` event — for results only
    /// known at phase exit (e.g. clauses added by an encode step).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.name.is_some() {
            self.end_fields.push(Field {
                key,
                value: value.into(),
            });
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            record(Phase::End, name, mem::take(&mut self.end_fields));
        }
    }
}

/// RAII guard for an *async* span: emits a `b` event on creation and the
/// matching `e` (same name and id) on drop. Unlike [`SpanGuard`], async
/// spans are paired by `(name, id)` rather than per-thread stack order,
/// so one logical operation can be traced across retries and threads.
#[must_use = "an async span ends when its guard is dropped"]
#[derive(Debug)]
pub struct AsyncSpanGuard {
    name: Option<&'static str>,
    id: u64,
    end_fields: Vec<Field>,
}

impl AsyncSpanGuard {
    /// The span's id (valid even when tracing is off, so callers can
    /// propagate it unconditionally).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the span actually recorded a `b` event.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.name.is_some()
    }

    /// Attaches a field to the span's `e` event.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.name.is_some() {
            self.end_fields.push(Field {
                key,
                value: value.into(),
            });
        }
    }
}

impl Drop for AsyncSpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            record_with_id(
                Phase::AsyncEnd,
                name,
                Some(self.id),
                mem::take(&mut self.end_fields),
            );
        }
    }
}

/// Opens an async span with the given id (allocate one with
/// [`next_span_id`]) and entry fields on its `b` event.
pub fn async_span(name: &'static str, id: u64, fields: Vec<Field>) -> AsyncSpanGuard {
    if !tracing_enabled() {
        return AsyncSpanGuard {
            name: None,
            id,
            end_fields: Vec::new(),
        };
    }
    record_with_id(Phase::AsyncBegin, name, Some(id), fields);
    AsyncSpanGuard {
        name: Some(name),
        id,
        end_fields: Vec::new(),
    }
}

/// Opens a span. Prefer [`obs_span!`] when attaching entry fields.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Opens a span with entry fields on its `Begin` event.
pub fn span_with(name: &'static str, fields: Vec<Field>) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard::inactive();
    }
    record(Phase::Begin, name, fields);
    SpanGuard {
        name: Some(name),
        end_fields: Vec::new(),
    }
}

/// Builds a `Vec<Field>` from `key = value` pairs.
#[macro_export]
macro_rules! obs_fields {
    ($($k:ident = $v:expr),* $(,)?) => {
        vec![$($crate::Field { key: stringify!($k), value: $crate::FieldValue::from($v) }),*]
    };
}

/// Records an instant event; field expressions are not evaluated when
/// tracing is off.
#[macro_export]
macro_rules! obs_event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::tracing_enabled() {
            $crate::event($name, $crate::obs_fields!($($k = $v),*));
        }
    };
}

/// Opens a span with entry fields; field expressions are not evaluated
/// when tracing is off. Bind the result: `let _g = obs_span!(...)`.
#[macro_export]
macro_rules! obs_span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::tracing_enabled() {
            $crate::span_with($name, $crate::obs_fields!($($k = $v),*))
        } else {
            $crate::span($name)
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave: the sink slot and the
    /// enabled flags are process-wide.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn with_memory_sink(f: impl FnOnce(&MemorySink)) -> Vec<TraceEvent> {
        let sink = Arc::new(MemorySink::new());
        install_sink(sink.clone());
        f(&sink);
        uninstall_sink();
        set_enabled(false);
        sink.events()
    }

    #[test]
    fn disabled_records_nothing_and_reads_no_clock() {
        let _s = serial();
        uninstall_sink();
        set_enabled(false);
        assert!(!enabled());
        assert!(!tracing_enabled());
        let mut g = span("phase");
        assert!(!g.is_active());
        g.record("k", 1u64);
        drop(g);
        event("ev", obs_fields!(x = 1u64));
        obs_event!("ev2", y = 2u64);
        // Nothing buffered: installing a sink now must observe zero events.
        let sink = Arc::new(MemorySink::new());
        install_sink(sink.clone());
        flush();
        uninstall_sink();
        set_enabled(false);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn spans_balance_including_under_panic() {
        let _s = serial();
        let events = with_memory_sink(|_| {
            let outer = span("outer");
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _inner = obs_span!("inner", depth = 3u64);
                panic!("boom");
            }));
            assert!(r.is_err());
            drop(outer);
            flush();
        });
        let codes: Vec<(&str, &str)> = events.iter().map(|e| (e.phase.code(), e.name)).collect();
        assert_eq!(
            codes,
            vec![
                ("B", "outer"),
                ("B", "inner"),
                ("E", "inner"),
                ("E", "outer")
            ]
        );
    }

    #[test]
    fn end_fields_ride_on_the_end_event() {
        let _s = serial();
        let events = with_memory_sink(|_| {
            let mut g = obs_span!("encode", depth = 2u64);
            g.record("clauses", 17u64);
            drop(g);
            flush();
        });
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].fields, obs_fields!(depth = 2u64));
        assert_eq!(events[1].fields, obs_fields!(clauses = 17u64));
        assert_eq!(events[1].phase, Phase::End);
    }

    #[test]
    fn worker_threads_flush_on_exit_with_distinct_tids() {
        let _s = serial();
        let events = with_memory_sink(|_| {
            let h1 = std::thread::spawn(|| obs_event!("w", n = 1u64));
            let h2 = std::thread::spawn(|| obs_event!("w", n = 2u64));
            h1.join().unwrap();
            h2.join().unwrap();
        });
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
        assert!(events.iter().all(|e| e.tid > 0));
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let _s = serial();
        let events = with_memory_sink(|_| {
            for _ in 0..10 {
                obs_event!("tick");
            }
            flush();
        });
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
