//! Always-on bounded flight recorder.
//!
//! A [`FlightRecorder`] is a [`TraceSink`] that keeps the most recent
//! trace events in a fixed-budget in-memory ring instead of writing
//! them anywhere. Per-thread batches drain into the global ring in
//! arrival order; once the ring's approximate byte footprint exceeds
//! its budget, the oldest events are evicted (and counted) to make
//! room. When a job dies — panic, worker kill, unsound witness — the
//! host dumps [`recent`](FlightRecorder::recent) into a postmortem
//! bundle, giving the operator the trace they would have wished they
//! had recorded, without the unbounded cost of always tracing to disk.
//!
//! Sizing: the budget bounds *memory*, not event count, because event
//! size varies wildly with field payloads (a case id vs. a verdict
//! string). The per-event estimate is deliberately conservative
//! (struct overhead + name + field keys/values); the ring's true heap
//! use tracks the estimate within small constants, so a 1 MiB budget
//! holds roughly 4–10k recent events — minutes of service traffic,
//! plenty for a postmortem window.

use crate::sink::TraceSink;
use crate::{FieldValue, TraceEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bounded in-memory ring of recent trace events; oldest evicted.
#[derive(Debug)]
pub struct FlightRecorder {
    max_bytes: usize,
    dropped: AtomicU64,
    inner: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<(TraceEvent, usize)>,
    bytes: usize,
}

impl FlightRecorder {
    /// A recorder holding at most ~`max_bytes` of recent events
    /// (approximate accounting; at least one event is always kept).
    #[must_use]
    pub fn new(max_bytes: usize) -> Self {
        FlightRecorder {
            max_bytes,
            dropped: AtomicU64::new(0),
            inner: Mutex::new(Ring::default()),
        }
    }

    /// The configured byte budget.
    #[must_use]
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Approximate bytes currently held — never exceeds the budget by
    /// more than one event.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        lock(&self.inner).bytes
    }

    /// Events evicted so far to stay inside the budget.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.inner).events.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).events.is_empty()
    }

    /// The retained events, oldest first. Call
    /// [`flush`](crate::flush) first so the calling thread's pending
    /// batch is included.
    #[must_use]
    pub fn recent(&self) -> Vec<TraceEvent> {
        lock(&self.inner)
            .events
            .iter()
            .map(|(e, _)| e.clone())
            .collect()
    }

    /// Drops every retained event (the eviction counter is kept).
    pub fn clear(&self) {
        let mut ring = lock(&self.inner);
        ring.events.clear();
        ring.bytes = 0;
    }
}

impl TraceSink for FlightRecorder {
    fn write_batch(&self, events: &[TraceEvent]) {
        let mut dropped = 0u64;
        let mut ring = lock(&self.inner);
        for ev in events {
            let size = approx_event_bytes(ev);
            ring.events.push_back((ev.clone(), size));
            ring.bytes += size;
            while ring.bytes > self.max_bytes && ring.events.len() > 1 {
                if let Some((_, old)) = ring.events.pop_front() {
                    ring.bytes -= old;
                    dropped += 1;
                }
            }
        }
        drop(ring);
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }
}

/// Conservative per-event footprint: fixed struct overhead plus the
/// name and every field's key and payload.
fn approx_event_bytes(ev: &TraceEvent) -> usize {
    let mut size = 64 + ev.name.len();
    for f in &ev.fields {
        size += 24 + f.key.len();
        size += match &f.value {
            FieldValue::Str(s) => s.len(),
            _ => 8,
        };
    }
    size
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Phase};

    fn event(name: &'static str, payload: &str) -> TraceEvent {
        TraceEvent {
            ts_ns: 1,
            tid: 1,
            phase: Phase::Instant,
            name,
            id: None,
            fields: vec![Field {
                key: "payload",
                value: FieldValue::Str(payload.to_owned()),
            }],
        }
    }

    #[test]
    fn ring_keeps_newest_and_stays_within_budget() {
        let rec = FlightRecorder::new(4096);
        let payload = "x".repeat(200);
        for _ in 0..100 {
            rec.write_batch(&[event("spam", &payload)]);
        }
        assert!(
            rec.approx_bytes() <= rec.max_bytes(),
            "ring at {} bytes exceeds budget {}",
            rec.approx_bytes(),
            rec.max_bytes()
        );
        assert!(rec.dropped() > 0, "eviction must have kicked in");
        let recent = rec.recent();
        assert!(!recent.is_empty());
        // Everything retained is from the newest writes.
        assert!(recent.iter().all(|e| e.name == "spam"));
        assert!(recent.len() < 100);
    }

    #[test]
    fn oldest_events_are_evicted_first() {
        let rec = FlightRecorder::new(2048);
        rec.write_batch(&[event("first", &"a".repeat(100))]);
        for _ in 0..50 {
            rec.write_batch(&[event("later", &"b".repeat(100))]);
        }
        assert!(
            rec.recent().iter().all(|e| e.name == "later"),
            "the oldest event must be gone"
        );
    }

    #[test]
    fn an_oversized_event_still_lands_alone() {
        let rec = FlightRecorder::new(64);
        rec.write_batch(&[event("huge", &"z".repeat(10_000))]);
        // Budget is blown but the ring never goes empty on insert.
        assert_eq!(rec.recent().len(), 1);
        rec.write_batch(&[event("next", "small")]);
        let names: Vec<&str> = rec.recent().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["next"], "oversized predecessor evicted");
    }

    #[test]
    fn clear_empties_the_ring_but_keeps_the_drop_counter() {
        let rec = FlightRecorder::new(256);
        for _ in 0..20 {
            rec.write_batch(&[event("e", &"p".repeat(50))]);
        }
        let dropped = rec.dropped();
        assert!(dropped > 0);
        rec.clear();
        assert_eq!(rec.approx_bytes(), 0);
        assert!(rec.recent().is_empty());
        assert_eq!(rec.dropped(), dropped);
    }
}
