//! Trace sinks: where batched [`TraceEvent`]s go.

use crate::json::write_escaped;
use crate::{FieldValue, TraceEvent};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, MutexGuard};

/// A destination for trace events.
///
/// Contract: `write_batch` receives events in per-thread timestamp
/// order, but batches from different threads interleave arbitrarily —
/// a sink must not assume global ordering. Implementations must be
/// `Send + Sync` (worker threads flush concurrently) and must never
/// panic into the tracer (I/O errors are swallowed or remembered, not
/// thrown). `flush` is called on [`crate::uninstall_sink`] and
/// [`crate::flush`].
pub trait TraceSink: Send + Sync {
    fn write_batch(&self, events: &[TraceEvent]);
    fn flush(&self) {}
}

/// Serializes one event as a single JSONL line (no trailing newline).
#[must_use]
pub fn event_to_json(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(64);
    let _ = write!(
        s,
        r#"{{"ts":{},"tid":{},"ph":"{}","name":"#,
        ev.ts_ns,
        ev.tid,
        ev.phase.code()
    );
    let _ = write_escaped(&mut s, ev.name);
    if let Some(id) = ev.id {
        let _ = write!(s, ",\"id\":{id}");
    }
    if !ev.fields.is_empty() {
        s.push_str(",\"args\":{");
        for (i, f) in ev.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write_escaped(&mut s, f.key);
            s.push(':');
            match &f.value {
                FieldValue::U64(v) => {
                    let _ = write!(s, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(s, "{v}");
                }
                FieldValue::F64(v) => {
                    if v.is_finite() {
                        let _ = write!(s, "{v}");
                    } else {
                        s.push_str("null");
                    }
                }
                FieldValue::Bool(v) => s.push_str(if *v { "true" } else { "false" }),
                FieldValue::Str(v) => {
                    let _ = write_escaped(&mut s, v);
                }
            }
        }
        s.push('}');
    }
    s.push('}');
    s
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Writes events as JSON Lines to a buffered file — the `--trace-out`
/// sink. I/O errors after creation are silently dropped: tracing must
/// never take down a verification run.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn write_batch(&self, events: &[TraceEvent]) {
        let mut out = lock(&self.out);
        for ev in events {
            let mut line = event_to_json(ev);
            line.push('\n');
            let _ = out.write_all(line.as_bytes());
        }
    }

    fn flush(&self) {
        let _ = lock(&self.out).flush();
    }
}

/// Collects events in memory — for tests and in-process tooling.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of everything received so far.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        lock(&self.events).clone()
    }

    pub fn clear(&self) {
        lock(&self.events).clear();
    }
}

impl TraceSink for MemorySink {
    fn write_batch(&self, events: &[TraceEvent]) {
        lock(&self.events).extend_from_slice(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::Phase;

    #[test]
    fn event_json_is_well_formed_jsonl() {
        let ev = TraceEvent {
            ts_ns: 42,
            tid: 3,
            phase: Phase::Instant,
            name: "weird \"name\"\n",
            id: None,
            fields: crate::obs_fields!(
                n = 7u64,
                neg = -2i64,
                f = 1.25,
                b = true,
                s = "multi\nline \"quoted\""
            ),
        };
        let line = event_to_json(&ev);
        assert!(!line.contains('\n'), "one event must stay on one line");
        let v = parse(&line).expect("valid json");
        assert_eq!(v.get("ts").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("tid").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ph").and_then(Json::as_str), Some("I"));
        assert_eq!(
            v.get("name").and_then(Json::as_str),
            Some("weird \"name\"\n")
        );
        let args = v.get("args").expect("args present");
        assert_eq!(args.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(args.get("neg").and_then(Json::as_f64), Some(-2.0));
        assert_eq!(args.get("f").and_then(Json::as_f64), Some(1.25));
        assert_eq!(args.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            args.get("s").and_then(Json::as_str),
            Some("multi\nline \"quoted\"")
        );
    }

    #[test]
    fn fieldless_event_omits_args() {
        let ev = TraceEvent {
            ts_ns: 1,
            tid: 1,
            phase: Phase::Begin,
            name: "p",
            id: None,
            fields: vec![],
        };
        let line = event_to_json(&ev);
        assert_eq!(line, r#"{"ts":1,"tid":1,"ph":"B","name":"p"}"#);
    }

    #[test]
    fn async_event_carries_id() {
        let ev = TraceEvent {
            ts_ns: 9,
            tid: 2,
            phase: Phase::AsyncBegin,
            name: "obligation",
            id: Some(17),
            fields: vec![],
        };
        let line = event_to_json(&ev);
        assert_eq!(
            line,
            r#"{"ts":9,"tid":2,"ph":"b","name":"obligation","id":17}"#
        );
        let v = parse(&line).expect("valid json");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(17));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("aqed_obs_sink_test_{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create");
        let evs: Vec<TraceEvent> = (0..3)
            .map(|i| TraceEvent {
                ts_ns: i,
                tid: 1,
                phase: Phase::Instant,
                name: "tick",
                id: None,
                fields: crate::obs_fields!(i = i),
            })
            .collect();
        sink.write_batch(&evs);
        TraceSink::flush(&sink);
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, l) in lines.iter().enumerate() {
            let v = parse(l).expect("each line parses");
            assert_eq!(
                v.get("args")
                    .and_then(|a| a.get("i"))
                    .and_then(Json::as_u64),
                Some(i as u64)
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
