//! Minimal JSON: a value tree, a strict parser, and a writer.
//!
//! The build environment has no serde; this module is the single JSON
//! implementation shared by the trace sinks (writing), `--report-json`
//! (writing) and `trace_report` (parsing + rewriting as Chrome trace
//! JSON). It supports exactly the JSON the stack produces: finite
//! numbers, UTF-8 strings with standard escapes, arrays, objects
//! (insertion-ordered, duplicate keys rejected), `true`/`false`/`null`.

use std::fmt::{self, Write as _};

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; integral values round-trip
    /// exactly up to 2^53, far beyond any id or per-process timestamp
    /// the tracer emits.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (linear scan; objects here are small).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Convenience constructor for an object.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience constructor for an exact u64 number.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Encodes a `u64` losslessly as a fixed-width lowercase hex string.
    ///
    /// [`Json::Num`] carries `f64`, which is only exact up to 2^53 —
    /// not enough for content hashes and checksums. Values that must
    /// survive a round trip bit-for-bit travel as strings instead.
    #[must_use]
    pub fn hex(n: u64) -> Json {
        Json::Str(format!("{n:016x}"))
    }

    /// Decodes a value written by [`Json::hex`] back to the exact `u64`.
    #[must_use]
    pub fn as_hex_u64(&self) -> Option<u64> {
        match self {
            Json::Str(s) if s.len() == 16 => u64::from_str_radix(s, 16).ok(),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl fmt::Display for Json {
    /// Compact serialization (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_char('[')?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    v.fmt(f)?;
                }
                f.write_char(']')
            }
            Json::Obj(fields) => {
                f.write_char('{')?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write_escaped(f, k)?;
                    f.write_char(':')?;
                    v.fmt(f)?;
                }
                f.write_char('}')
            }
        }
    }
}

fn write_num(f: &mut impl fmt::Write, n: f64) -> fmt::Result {
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    if n.is_finite() && n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        // Integral: print without the ".0" so u64 fields stay integers.
        if n < 0.0 {
            write!(f, "{}", n as i64)
        } else {
            write!(f, "{}", n as u64)
        }
    } else if n.is_finite() {
        write!(f, "{n}")
    } else {
        // JSON has no NaN/Inf; null is the least-bad encoding.
        f.write_str("null")
    }
}

/// Writes `s` as a quoted JSON string with standard escapes.
pub fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: only accept a full pair.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always well-formed).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            pos: start,
            msg: "invalid number".to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_trace_line() {
        let line = r#"{"ts":123456,"tid":1,"ph":"B","name":"bmc.solve","args":{"depth":3,"ok":true,"r":1.5}}"#;
        let v = parse(line).expect("parses");
        assert_eq!(v.get("ts").and_then(Json::as_u64), Some(123_456));
        assert_eq!(v.get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(
            v.get("args")
                .and_then(|a| a.get("depth"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(parse(&v.to_string()).expect("re-parses"), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\tе\u{1}\u{1F600}".to_owned());
        let s = v.to_string();
        assert_eq!(parse(&s).expect("parses"), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).expect("parses");
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "01x",
            "\"\\q\"",
            "{\"a\":1,\"a\":2}",
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let n = 9_007_199_254_740_992u64; // 2^53
        let v = Json::num(n);
        assert_eq!(parse(&v.to_string()).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(parse("-42").unwrap().to_string(), "-42");
        assert_eq!(parse("1.5e3").unwrap().as_f64(), Some(1500.0));
    }
}
