//! In-memory metrics: named counters, gauges, and log-bucketed
//! histograms on lock-free atomics.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones; hot call sites resolve a name once and keep the handle.
//! Recording is a relaxed atomic op — but instrumentation sites should
//! still gate on [`crate::enabled`] so a disabled run skips even that
//! (the "no-ops when observability is off" contract asserted by CI).
//!
//! Histograms bucket by bit length (powers of two): value `v` lands in
//! bucket `⌈log2(v+1)⌉`, i.e. bucket 0 holds exactly 0, bucket `i` holds
//! `[2^(i-1), 2^i)`. That gives ~64 buckets covering the full `u64`
//! range — plenty for latency-in-ns and rate distributions.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A log-bucketed (power-of-two) histogram.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`.
#[inline]
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
#[must_use]
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        let h = &*self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.0;
        let count = h.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                None
            } else {
                Some(h.min.load(Ordering::Relaxed))
            },
            max: h.max.load(Ordering::Relaxed),
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_lower(i), n))
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: Option<u64>,
    pub max: u64,
    /// `(inclusive lower bound, count)` for each non-empty bucket,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values, or 0 with no samples.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A process-wide registry of named metrics. Lookups lock a map; hot
/// sites should resolve once and keep the returned handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MetricsRegistry {
    #[must_use]
    pub const fn new() -> Self {
        MetricsRegistry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Returns (creating on first use) the counter named `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The current value of the counter named `name`, without creating
    /// it as a side effect. Health endpoints and CI assertions use this
    /// to probe "has X happened?" — an absent counter answers `None`
    /// rather than materialising a zero that then pollutes snapshots.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        lock(&self.counters).get(name).map(Counter::get)
    }

    /// Returns (creating on first use) the gauge named `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.gauges);
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Returns (creating on first use) the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.histograms);
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Returns (creating on first use) a scoped variant of the histogram
    /// named `name`, stored as `name{scope}`. Scoping gives one metric a
    /// separate series per label (portfolio worker, property class)
    /// while the unscoped series keeps its process-global meaning.
    #[must_use]
    pub fn histogram_scoped(&self, name: &str, scope: &str) -> Histogram {
        self.histogram(&format!("{name}{{{scope}}}"))
    }

    /// Drops every metric. Handles held by call sites detach (they keep
    /// counting into orphaned cells); used between CLI runs and tests.
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
    }

    /// Point-in-time copy of every metric, names ascending.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry used by all built-in instrumentation.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: MetricsRegistry = MetricsRegistry::new();
    &GLOBAL
}

/// Point-in-time copy of a whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// JSON form, used by `--report-json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::num(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("count", Json::num(h.count)),
                            ("sum", Json::num(h.sum)),
                            ("min", h.min.map_or(Json::Null, Json::num)),
                            ("max", Json::num(h.max)),
                            ("mean", Json::Num(h.mean())),
                            (
                                "buckets",
                                Json::Arr(
                                    h.buckets
                                        .iter()
                                        .map(|&(lo, n)| {
                                            Json::Arr(vec![Json::num(lo), Json::num(n)])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    /// Human-readable rendering (one metric per line, histograms with
    /// count/mean/max and a sparkline over non-empty buckets).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter   {k:<44} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge     {k:<44} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {k:<44} count={} mean={:.1} min={} max={} {}",
                h.count,
                h.mean(),
                h.min.unwrap_or(0),
                h.max,
                sparkline(&h.buckets),
            );
        }
        out
    }
}

fn sparkline(buckets: &[(u64, u64)]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = buckets.iter().map(|&(_, n)| n).max().unwrap_or(0);
    if peak == 0 {
        return String::new();
    }
    buckets
        .iter()
        .map(|&(_, n)| GLYPHS[((n * 7).div_ceil(peak)) as usize % 8])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        c.inc();
        c.add(4);
        // Same name resolves to the same cell.
        assert_eq!(reg.counter("x").get(), 5);
        let g = reg.gauge("y");
        g.set(7);
        g.set(3);
        assert_eq!(reg.gauge("y").get(), 3);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_lower(1), 1);
        assert_eq!(bucket_lower(3), 4);

        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 2, 3, 700] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 706);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, 700);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (512, 1)]);
        assert!((s.mean() - 141.2).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serializes_and_renders() {
        let reg = MetricsRegistry::new();
        reg.counter("a.hits").add(2);
        reg.gauge("b.size").set(9);
        reg.histogram("c.lat").record(5);
        let snap = reg.snapshot();
        assert!(!snap.is_empty());
        let j = snap.to_json().to_string();
        let back = crate::json::parse(&j).expect("valid json");
        assert_eq!(
            back.get("counters")
                .and_then(|c| c.get("a.hits"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            back.get("histograms")
                .and_then(|h| h.get("c.lat"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let text = snap.render();
        assert!(text.contains("a.hits"));
        assert!(text.contains("histogram"));
    }

    #[test]
    fn reset_clears_names() {
        let reg = MetricsRegistry::new();
        reg.counter("gone").inc();
        reg.reset();
        assert!(reg.snapshot().is_empty());
        assert_eq!(reg.counter("gone").get(), 0);
    }
}
