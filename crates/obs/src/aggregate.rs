//! Rolling-window aggregation and exposition over metric snapshots.
//!
//! The [`MetricsRegistry`] holds raw
//! monotone counters and log2 histograms; operators want *rates*
//! ("jobs/s over the last minute") and *quantiles* ("p99 solve time").
//! An [`Aggregator`] bridges the two: a periodic [`Aggregator::tick`]
//! — driven by whatever flush cadence the host already runs — appends
//! a counter snapshot to a bounded history ring, and the exposition
//! encoders diff that history to produce windowed rates alongside
//! quantiles interpolated from the histogram buckets.
//!
//! Exposition is **pull-based**: the aggregator never pushes anywhere,
//! it renders on demand (the `stats` admin command, a postmortem
//! bundle). Pull keeps the cost proportional to scrapes, not to
//! traffic, and means a wedged consumer can never back-pressure the
//! service. Two formats are offered over the same snapshot:
//! Prometheus text ([`Aggregator::expose_prometheus`]) for scrapers
//! and a JSON form ([`Aggregator::expose_json`]) for humans and tests
//! — both built on the crate's hand-rolled `json` module, zero new
//! dependencies.

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One counter snapshot in the history ring.
#[derive(Debug, Clone)]
struct Sample {
    /// Milliseconds since the aggregator was created.
    at_ms: u64,
    /// `(name, value)` pairs, ascending by name (registry order).
    counters: Vec<(String, u64)>,
}

/// Rolling-window rate and quantile computer over a metrics registry.
///
/// Windows are fixed at construction; [`standard`](Aggregator::standard)
/// gives the conventional 10s/1m/5m set. History is pruned to the
/// longest window each tick, so memory is bounded by
/// `longest_window / tick_interval` samples regardless of uptime.
#[derive(Debug)]
pub struct Aggregator {
    started: Instant,
    /// Ascending; the last entry bounds history retention.
    windows: Vec<Duration>,
    history: Mutex<VecDeque<Sample>>,
}

impl Aggregator {
    /// An aggregator computing rates over the given windows
    /// (deduplicated, sorted ascending; empty input falls back to the
    /// standard set).
    #[must_use]
    pub fn new(windows: &[Duration]) -> Self {
        let mut windows: Vec<Duration> = windows.to_vec();
        windows.sort_unstable();
        windows.dedup();
        if windows.is_empty() {
            return Self::standard();
        }
        Aggregator {
            started: Instant::now(),
            windows,
            history: Mutex::new(VecDeque::new()),
        }
    }

    /// The conventional 10s / 1m / 5m window set.
    #[must_use]
    pub fn standard() -> Self {
        Aggregator {
            started: Instant::now(),
            windows: vec![
                Duration::from_secs(10),
                Duration::from_secs(60),
                Duration::from_secs(300),
            ],
            history: Mutex::new(VecDeque::new()),
        }
    }

    /// Milliseconds since the aggregator was created.
    #[must_use]
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Appends the registry's current counter values to the history
    /// ring. Call at a fixed cadence (the serve flush interval); rates
    /// are diffs between ring entries, so two ticks are the minimum
    /// before any rate is reported.
    pub fn tick(&self, registry: &MetricsRegistry) {
        let counters = registry.snapshot().counters;
        self.tick_at(self.uptime_ms(), counters);
    }

    /// Test seam: record a sample at an explicit timestamp.
    fn tick_at(&self, at_ms: u64, counters: Vec<(String, u64)>) {
        let retain_ms = ms(*self.windows.last().expect("windows never empty"));
        let mut ring = lock(&self.history);
        ring.push_back(Sample { at_ms, counters });
        // Keep one sample *older* than the longest window so that a
        // full-window diff is always available once uptime allows.
        while ring.len() > 2 && ring[1].at_ms + retain_ms <= at_ms {
            ring.pop_front();
        }
    }

    /// Windowed counter rates: for each window, `(counter name,
    /// events/second)` diffed between the newest sample and the oldest
    /// sample inside the window. Counters with no delta are reported
    /// as `0.0`; windows with fewer than two samples are omitted
    /// entirely (no data is different from zero traffic).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn rates(&self) -> Vec<(String, Vec<(String, f64)>)> {
        let ring = lock(&self.history);
        let Some(newest) = ring.back() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &window in &self.windows {
            let horizon = newest.at_ms.saturating_sub(ms(window));
            // Oldest sample still inside the window.
            let Some(base) = ring
                .iter()
                .find(|s| s.at_ms >= horizon && s.at_ms < newest.at_ms)
            else {
                continue;
            };
            let dt_s = (newest.at_ms - base.at_ms) as f64 / 1e3;
            if dt_s <= 0.0 {
                continue;
            }
            let mut per_counter = Vec::new();
            for (name, now) in &newest.counters {
                let then = base
                    .counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(0, |&(_, v)| v);
                per_counter.push((name.clone(), now.saturating_sub(then) as f64 / dt_s));
            }
            out.push((window_label(window), per_counter));
        }
        out
    }

    /// JSON exposition: snapshot values plus derived rates and
    /// histogram quantiles, ready for the `stats` admin command.
    #[must_use]
    pub fn expose_json(&self, snap: &MetricsSnapshot) -> Json {
        let counters = Json::Obj(
            snap.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::num(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            snap.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            snap.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("count", Json::num(h.count)),
                            ("sum", Json::num(h.sum)),
                            ("min", h.min.map_or(Json::Null, Json::num)),
                            ("max", Json::num(h.max)),
                            ("mean", Json::Num(h.mean())),
                            ("p50", Json::Num(quantile(h, 0.50))),
                            ("p90", Json::Num(quantile(h, 0.90))),
                            ("p99", Json::Num(quantile(h, 0.99))),
                        ]),
                    )
                })
                .collect(),
        );
        let rates = Json::Obj(
            self.rates()
                .into_iter()
                .map(|(window, per_counter)| {
                    (
                        window,
                        Json::Obj(
                            per_counter
                                .into_iter()
                                .map(|(name, rate)| (name, Json::Num(rate)))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("uptime_ms", Json::num(self.uptime_ms())),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
            ("rates", rates),
        ])
    }

    /// Prometheus text exposition over the same data as
    /// [`expose_json`](Aggregator::expose_json). Metric names are
    /// sanitised (`serve.jobs.done` → `aqed_serve_jobs_done`), scoped
    /// series (`name{prop=FC}`) become labels, histograms render as
    /// cumulative `_bucket{le=...}` families, and windowed rates as
    /// `_per_sec{window=...}` gauges.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn expose_prometheus(&self, snap: &MetricsSnapshot) -> String {
        let mut out = String::new();
        out.push_str("# TYPE aqed_uptime_ms gauge\n");
        out.push_str(&format!("aqed_uptime_ms {}\n", self.uptime_ms()));
        for (name, value) in &snap.counters {
            let (base, labels) = split_scope(name);
            let metric = format!("{}_total", prom_name(&base));
            out.push_str(&format!("# TYPE {metric} counter\n"));
            out.push_str(&format!("{metric}{} {value}\n", prom_labels(&labels)));
        }
        for (name, value) in &snap.gauges {
            let (base, labels) = split_scope(name);
            let metric = prom_name(&base);
            out.push_str(&format!("# TYPE {metric} gauge\n"));
            out.push_str(&format!("{metric}{} {value}\n", prom_labels(&labels)));
        }
        for (name, h) in &snap.histograms {
            let (base, labels) = split_scope(name);
            let metric = prom_name(&base);
            out.push_str(&format!("# TYPE {metric} histogram\n"));
            let mut cumulative = 0u64;
            for &(lower, n) in &h.buckets {
                cumulative += n;
                let mut with_le = labels.clone();
                with_le.push(("le".to_string(), bucket_upper(lower).to_string()));
                out.push_str(&format!(
                    "{metric}_bucket{} {cumulative}\n",
                    prom_labels(&with_le)
                ));
            }
            let mut with_inf = labels.clone();
            with_inf.push(("le".to_string(), "+Inf".to_string()));
            out.push_str(&format!(
                "{metric}_bucket{} {}\n",
                prom_labels(&with_inf),
                h.count
            ));
            out.push_str(&format!("{metric}_sum{} {}\n", prom_labels(&labels), h.sum));
            out.push_str(&format!(
                "{metric}_count{} {}\n",
                prom_labels(&labels),
                h.count
            ));
            for (suffix, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                let qm = format!("{metric}_{suffix}");
                out.push_str(&format!("# TYPE {qm} gauge\n"));
                out.push_str(&format!(
                    "{qm}{} {}\n",
                    prom_labels(&labels),
                    format_value(quantile(h, q))
                ));
            }
        }
        for (window, per_counter) in self.rates() {
            for (name, rate) in per_counter {
                let (base, mut labels) = split_scope(&name);
                labels.push(("window".to_string(), window.clone()));
                let metric = format!("{}_per_sec", prom_name(&base));
                out.push_str(&format!("# TYPE {metric} gauge\n"));
                out.push_str(&format!(
                    "{metric}{} {}\n",
                    prom_labels(&labels),
                    format_value(rate)
                ));
            }
        }
        out
    }
}

/// Interpolated quantile from a histogram's log2 buckets. `q` is in
/// `[0, 1]`; the rank `q * count` is located in the cumulative bucket
/// counts and the value interpolated linearly inside the hit bucket's
/// `[lower, upper]` range. Exact at the recorded `min`/`max`
/// endpoints; returns 0 for an empty histogram.
#[must_use]
#[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
pub fn quantile(h: &HistogramSnapshot, q: f64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let target = q * h.count as f64;
    let mut cumulative = 0u64;
    for &(lower, n) in &h.buckets {
        let before = cumulative as f64;
        cumulative += n;
        if (cumulative as f64) < target {
            continue;
        }
        // Clamp the bucket's value range by the recorded min/max so
        // tail quantiles of narrow distributions stay tight.
        let lo = (h.min.unwrap_or(0).max(lower)) as f64;
        let hi = (h.max.min(bucket_upper(lower))) as f64;
        let fraction = if n == 0 {
            0.0
        } else {
            ((target - before) / n as f64).clamp(0.0, 1.0)
        };
        return (hi - lo).mul_add(fraction, lo);
    }
    h.max as f64
}

/// Inclusive upper bound of the bucket whose inclusive lower bound is
/// `lower` (buckets are powers of two; bucket 0 holds only the value 0).
fn bucket_upper(lower: u64) -> u64 {
    if lower == 0 {
        0
    } else {
        lower.saturating_mul(2).saturating_sub(1)
    }
}

/// `10s`, `1m`, `5m`, ... — seconds unless an exact minute multiple.
fn window_label(d: Duration) -> String {
    let secs = d.as_secs().max(1);
    if secs.is_multiple_of(60) {
        format!("{}m", secs / 60)
    } else {
        format!("{secs}s")
    }
}

fn ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Splits a registry key of the form `base{k=v,...}` into the base
/// name and its label pairs.
fn split_scope(name: &str) -> (String, Vec<(String, String)>) {
    let Some(open) = name.find('{') else {
        return (name.to_string(), Vec::new());
    };
    if !name.ends_with('}') {
        return (name.to_string(), Vec::new());
    }
    let base = name[..open].to_string();
    let scope = &name[open + 1..name.len() - 1];
    let labels = scope
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.trim().to_string(), v.trim().to_string()),
            None => ("scope".to_string(), pair.trim().to_string()),
        })
        .collect();
    (base, labels)
}

/// Sanitises a dotted metric name into a Prometheus identifier with
/// the `aqed_` namespace prefix.
fn prom_name(base: &str) -> String {
    let mut out = String::with_capacity(base.len() + 5);
    out.push_str("aqed_");
    for c in base.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// `{k="v",...}` or the empty string for no labels.
fn prom_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let key = prom_name(k).trim_start_matches("aqed_").to_string();
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
            format!("{key}=\"{escaped}\"")
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Finite decimal rendering (Prometheus forbids bare `NaN` surprises
/// from division; we never emit non-finite values).
fn format_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn hist_of(values: &[u64]) -> HistogramSnapshot {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t");
        for &v in values {
            h.record(v);
        }
        reg.snapshot().histograms[0].1.clone()
    }

    #[test]
    fn quantiles_interpolate_within_buckets_and_hit_endpoints() {
        let h = hist_of(&[100; 50]);
        // Single-valued distribution: every quantile is that value.
        assert!((quantile(&h, 0.5) - 100.0).abs() < 1e-9);
        assert!((quantile(&h, 0.99) - 100.0).abs() < 1e-9);

        let spread = hist_of(&[1, 2, 4, 8, 16, 32, 64, 128, 256, 1024]);
        let p50 = quantile(&spread, 0.5);
        let p99 = quantile(&spread, 0.99);
        assert!((8.0..=32.0).contains(&p50), "p50 {p50}");
        assert!(p99 > p50, "p99 {p99} must exceed p50 {p50}");
        assert!(p99 <= 1024.0, "p99 {p99} capped at max");
        assert!((quantile(&spread, 1.0) - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: None,
            max: 0,
            buckets: Vec::new(),
        };
        assert!(quantile(&h, 0.99).abs() < f64::EPSILON);
    }

    #[test]
    fn rates_diff_oldest_in_window_against_newest() {
        let agg = Aggregator::new(&[Duration::from_secs(10), Duration::from_secs(60)]);
        // No samples, then one sample: no rates either way.
        assert!(agg.rates().is_empty());
        agg.tick_at(0, vec![("jobs".into(), 0)]);
        assert!(agg.rates().is_empty());
        // 0 → 20 jobs over 10s: 2.0/s in both windows.
        agg.tick_at(5_000, vec![("jobs".into(), 10)]);
        agg.tick_at(10_000, vec![("jobs".into(), 20)]);
        let rates = agg.rates();
        assert_eq!(rates.len(), 2);
        let (label, per) = &rates[0];
        assert_eq!(label, "10s");
        assert_eq!(per.len(), 1);
        assert!((per[0].1 - 2.0).abs() < 1e-9, "rate {}", per[0].1);
        // A counter that appears later is treated as starting at 0.
        agg.tick_at(20_000, vec![("jobs".into(), 20), ("late".into(), 5)]);
        let rates = agg.rates();
        let ten = &rates[0].1;
        let late = ten.iter().find(|(n, _)| n == "late").expect("late");
        assert!((late.1 - 0.5).abs() < 1e-9, "late rate {}", late.1);
    }

    #[test]
    fn history_is_pruned_to_the_longest_window() {
        let agg = Aggregator::new(&[Duration::from_secs(10)]);
        for i in 0..1_000u64 {
            agg.tick_at(i * 500, vec![("c".into(), i)]);
        }
        let len = lock(&agg.history).len();
        // 10s window at 500ms cadence: ~20 live samples plus the one
        // retained beyond the horizon.
        assert!(len <= 24, "ring grew to {len}");
        // The full-window rate is still computable: 2 increments/s.
        let rates = agg.rates();
        assert_eq!(rates.len(), 1);
        assert!((rates[0].1[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_text_is_wellformed_and_covers_every_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.jobs.done").add(7);
        reg.gauge("serve.queue.depth").set(3);
        let h = reg.histogram_scoped("bmc.solve.ns", "prop=FC");
        h.record(1_000);
        h.record(2_000);
        let agg = Aggregator::new(&[Duration::from_secs(10)]);
        agg.tick_at(0, vec![("serve.jobs.done".into(), 0)]);
        agg.tick_at(10_000, vec![("serve.jobs.done".into(), 7)]);
        let text = agg.expose_prometheus(&reg.snapshot());
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "comment line: {line}");
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparseable value in: {line}"
            );
            let name = name_part.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in: {line}"
            );
            assert!(name.starts_with("aqed_"), "unprefixed metric: {line}");
        }
        assert!(text.contains("aqed_serve_jobs_done_total 7"));
        assert!(text.contains("aqed_serve_queue_depth 3"));
        assert!(text.contains("aqed_bmc_solve_ns_count{prop=\"FC\"} 2"));
        assert!(text.contains("aqed_bmc_solve_ns_bucket{prop=\"FC\",le=\"+Inf\"} 2"));
        assert!(text.contains("aqed_bmc_solve_ns_p99{prop=\"FC\"}"));
        assert!(text.contains("aqed_serve_jobs_done_per_sec{window=\"10s\"} 0.7"));
        // Cumulative bucket counts are monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v = line.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap();
            assert!(v >= last, "non-monotone bucket line: {line}");
            last = v;
        }
    }

    #[test]
    fn json_exposition_carries_rates_and_quantiles() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs").add(4);
        reg.histogram("lat").record(500);
        let agg = Aggregator::new(&[Duration::from_secs(10)]);
        agg.tick_at(0, vec![("jobs".into(), 0)]);
        agg.tick_at(8_000, vec![("jobs".into(), 4)]);
        let json = agg.expose_json(&reg.snapshot());
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("jobs"))
                .and_then(Json::as_u64),
            Some(4)
        );
        let p99 = json
            .get("histograms")
            .and_then(|h| h.get("lat"))
            .and_then(|l| l.get("p99"))
            .and_then(Json::as_f64)
            .expect("p99 present");
        assert!(p99 > 0.0);
        let rate = json
            .get("rates")
            .and_then(|r| r.get("10s"))
            .and_then(|w| w.get("jobs"))
            .and_then(Json::as_f64)
            .expect("windowed rate present");
        assert!((rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scope_splitting_handles_plain_and_labelled_names() {
        assert_eq!(split_scope("a.b"), ("a.b".to_string(), Vec::new()));
        let (base, labels) = split_scope("bmc.solve{prop=FC}");
        assert_eq!(base, "bmc.solve");
        assert_eq!(labels, vec![("prop".to_string(), "FC".to_string())]);
    }
}
