//! Per-job resource attribution.
//!
//! A [`JobMeter`] is a lock-free bundle of atomics shared between the
//! thread running a verification job and whoever wants to report on
//! it (the serve heartbeat thread, the `job.done` event, the CLI
//! report JSON). The scheduler updates it at obligation granularity —
//! cache hits, reused verdicts, solver totals, and the phase-time
//! breakdown absorbed from each obligation's BMC stats — so "which
//! job burned the CPU, and in which phase" is answerable from the
//! event stream alone, while the job is still running.
//!
//! The meter lives in `aqed-obs` (which everything already depends
//! on) so the scheduler, engine, server, and CLI can all share one
//! type without a new dependency edge. All counters are plain relaxed
//! atomics: attribution is monitoring, not accounting, and a reader
//! racing a writer sees a value at most one obligation stale.

use crate::json::Json;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

thread_local! {
    /// The meter mid-solve progress deltas flow into on this thread;
    /// see [`set_thread_meter`].
    static CURRENT_METER: RefCell<Option<Arc<JobMeter>>> = const { RefCell::new(None) };
}

/// Installs `meter` as this thread's live-attribution target and
/// returns the previous one. Solver-internal progress samples (which
/// fire mid-solve, long before an obligation completes) reach the job
/// meter through this thread-local — the solver cannot carry a meter
/// reference itself without poisoning `Eq` on its options types.
/// Scheduler worker threads set it for the duration of their loop;
/// threads that never set it (portfolio helpers, tests) contribute
/// nothing live, and their totals still arrive when the obligation
/// completes.
pub fn set_thread_meter(meter: Option<Arc<JobMeter>>) -> Option<Arc<JobMeter>> {
    CURRENT_METER.with(|slot| std::mem::replace(&mut *slot.borrow_mut(), meter))
}

/// Folds a mid-solve conflict delta into this thread's meter, if one
/// is installed. A cheap no-op otherwise.
pub fn add_live_conflicts(n: u64) {
    if n == 0 {
        return;
    }
    CURRENT_METER.with(|slot| {
        if let Some(m) = &*slot.borrow() {
            m.live_conflicts.fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Coarse lifecycle phase, readable while the job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterPhase {
    /// Accepted but not yet claimed by a worker.
    Queued,
    /// A worker is executing obligations.
    Running,
    /// Terminal (done, errored, or cancelled).
    Done,
}

impl MeterPhase {
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MeterPhase::Queued => "queued",
            MeterPhase::Running => "running",
            MeterPhase::Done => "done",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => MeterPhase::Running,
            2 => MeterPhase::Done,
            _ => MeterPhase::Queued,
        }
    }
}

/// Shared, lock-free attribution for one verification job.
#[derive(Debug, Default)]
pub struct JobMeter {
    phase: AtomicU8,
    queue_wait_ns: AtomicU64,
    obligations_total: AtomicU64,
    obligations_done: AtomicU64,
    cache_hits: AtomicU64,
    verdicts_reused: AtomicU64,
    solver_calls: AtomicU64,
    conflicts: AtomicU64,
    propagations: AtomicU64,
    learnt_imported: AtomicU64,
    learnt_discarded: AtomicU64,
    peak_arena_bytes: AtomicU64,
    /// Conflicts sampled mid-solve via [`add_live_conflicts`]; a lower
    /// bound that moves while [`JobMeter::conflicts`] (exact, absorbed
    /// at obligation completion) stands still.
    live_conflicts: AtomicU64,
    coi_ns: AtomicU64,
    preprocess_ns: AtomicU64,
    encode_ns: AtomicU64,
    solve_ns: AtomicU64,
}

impl JobMeter {
    #[must_use]
    pub fn new() -> Self {
        JobMeter::default()
    }

    /// Records how long the job sat queued before a worker claimed it.
    pub fn set_queue_wait(&self, wait: Duration) {
        self.queue_wait_ns.store(ns(wait), Ordering::Relaxed);
    }

    pub fn set_phase(&self, phase: MeterPhase) {
        self.phase.store(phase as u8, Ordering::Relaxed);
    }

    #[must_use]
    pub fn phase(&self) -> MeterPhase {
        MeterPhase::from_u8(self.phase.load(Ordering::Relaxed))
    }

    /// Total obligation count, known once the schedule is built.
    pub fn set_obligations_total(&self, total: u64) {
        self.obligations_total.store(total, Ordering::Relaxed);
    }

    /// One obligation reached a terminal state (solved, cached,
    /// reused, cancelled, or panicked).
    pub fn note_obligation_done(&self) {
        self.obligations_done.fetch_add(1, Ordering::Relaxed);
    }

    /// One obligation was answered from the artifact store's
    /// design-hash cache without solving.
    pub fn note_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Obligations (or warm-start frame prefixes) answered by reused
    /// persisted verdicts instead of solving.
    pub fn add_verdicts_reused(&self, n: u64) {
        self.verdicts_reused.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds one obligation's solver totals into the job.
    pub fn add_solver(&self, calls: u64, conflicts: u64, propagations: u64) {
        self.solver_calls.fetch_add(calls, Ordering::Relaxed);
        self.conflicts.fetch_add(conflicts, Ordering::Relaxed);
        self.propagations.fetch_add(propagations, Ordering::Relaxed);
    }

    /// Folds one obligation's learnt-clause traffic into the job.
    pub fn add_learnts(&self, imported: u64, discarded: u64) {
        self.learnt_imported.fetch_add(imported, Ordering::Relaxed);
        self.learnt_discarded
            .fetch_add(discarded, Ordering::Relaxed);
    }

    /// Tracks the largest solver arena seen by any obligation.
    pub fn note_arena_bytes(&self, bytes: u64) {
        self.peak_arena_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Folds one obligation's phase breakdown (nanoseconds) into the
    /// job totals.
    pub fn add_phase_ns(&self, coi: u64, preprocess: u64, encode: u64, solve: u64) {
        self.coi_ns.fetch_add(coi, Ordering::Relaxed);
        self.preprocess_ns.fetch_add(preprocess, Ordering::Relaxed);
        self.encode_ns.fetch_add(encode, Ordering::Relaxed);
        self.solve_ns.fetch_add(solve, Ordering::Relaxed);
    }

    /// Conflicts so far — the heartbeat's "is it making progress"
    /// signal. The larger of the exact per-obligation total (absorbed
    /// at completion) and the live mid-solve samples, so the value
    /// moves during a long solve instead of jumping only at obligation
    /// boundaries. Final attribution JSON reports the exact total.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
            .load(Ordering::Relaxed)
            .max(self.live_conflicts.load(Ordering::Relaxed))
    }

    #[must_use]
    pub fn obligations_done(&self) -> u64 {
        self.obligations_done.load(Ordering::Relaxed)
    }

    #[must_use]
    pub fn obligations_total(&self) -> u64 {
        self.obligations_total.load(Ordering::Relaxed)
    }

    /// Full attribution snapshot: phase breakdown, solver totals,
    /// store hit attribution, and peak arena bytes. This is the
    /// `attribution` object on `job.done` events and in report JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        Json::obj(vec![
            ("phase", Json::from(self.phase().as_str())),
            (
                "obligations",
                Json::obj(vec![
                    ("done", Json::num(load(&self.obligations_done))),
                    ("total", Json::num(load(&self.obligations_total))),
                ]),
            ),
            ("cache_hits", Json::num(load(&self.cache_hits))),
            ("verdicts_reused", Json::num(load(&self.verdicts_reused))),
            (
                "solver",
                Json::obj(vec![
                    ("calls", Json::num(load(&self.solver_calls))),
                    ("conflicts", Json::num(load(&self.conflicts))),
                    ("propagations", Json::num(load(&self.propagations))),
                    ("learnt_imported", Json::num(load(&self.learnt_imported))),
                    ("learnt_discarded", Json::num(load(&self.learnt_discarded))),
                    ("peak_arena_bytes", Json::num(load(&self.peak_arena_bytes))),
                ]),
            ),
            (
                "phases_ms",
                Json::obj(vec![
                    ("queue_wait", ms_json(load(&self.queue_wait_ns))),
                    ("coi", ms_json(load(&self.coi_ns))),
                    ("preprocess", ms_json(load(&self.preprocess_ns))),
                    ("encode", ms_json(load(&self.encode_ns))),
                    ("solve", ms_json(load(&self.solve_ns))),
                ]),
            ),
        ])
    }
}

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[allow(clippy::cast_precision_loss)]
fn ms_json(ns: u64) -> Json {
    Json::Num(ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_snapshots() {
        let m = JobMeter::new();
        assert_eq!(m.phase(), MeterPhase::Queued);
        m.set_queue_wait(Duration::from_millis(3));
        m.set_phase(MeterPhase::Running);
        m.set_obligations_total(4);
        m.note_cache_hit();
        m.note_obligation_done();
        m.add_verdicts_reused(1);
        m.note_obligation_done();
        m.add_solver(2, 100, 5_000);
        m.add_learnts(10, 3);
        m.note_arena_bytes(1_000);
        m.note_arena_bytes(500);
        m.add_phase_ns(1_000_000, 2_000_000, 3_000_000, 4_000_000);
        m.add_phase_ns(0, 0, 0, 1_000_000);
        m.note_obligation_done();
        m.set_phase(MeterPhase::Done);

        assert_eq!(m.conflicts(), 100);
        assert_eq!(m.obligations_done(), 3);
        assert_eq!(m.obligations_total(), 4);

        let j = m.to_json();
        assert_eq!(j.get("phase").and_then(Json::as_str), Some("done"));
        assert_eq!(j.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("verdicts_reused").and_then(Json::as_u64), Some(1));
        let solver = j.get("solver").expect("solver");
        assert_eq!(solver.get("calls").and_then(Json::as_u64), Some(2));
        assert_eq!(solver.get("conflicts").and_then(Json::as_u64), Some(100));
        assert_eq!(
            solver.get("peak_arena_bytes").and_then(Json::as_u64),
            Some(1_000),
            "peak is a max, not a sum"
        );
        let phases = j.get("phases_ms").expect("phases_ms");
        let solve = phases.get("solve").and_then(Json::as_f64).unwrap();
        assert!((solve - 5.0).abs() < 1e-9, "solve {solve}ms");
        let wait = phases.get("queue_wait").and_then(Json::as_f64).unwrap();
        assert!((wait - 3.0).abs() < 1e-9, "queue wait {wait}ms");
    }

    #[test]
    fn meter_json_round_trips_through_the_parser() {
        let m = JobMeter::new();
        m.add_solver(1, 2, 3);
        let text = format!("{}", m.to_json());
        let parsed = crate::json::parse(&text).expect("meter JSON parses");
        assert_eq!(
            parsed
                .get("solver")
                .and_then(|s| s.get("propagations"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }
}
