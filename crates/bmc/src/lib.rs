//! Bounded model checking over transition systems.
//!
//! [`Bmc`] unrolls a [`TransitionSystem`] frame by frame, bit-blasts the
//! unrolled circuit into one incremental SAT instance, and checks each
//! *bad* property at every depth. Properties are activated through
//! assumption literals, so one solver instance (with all its learned
//! clauses) is reused across depths — the standard incremental-BMC
//! architecture that the A-QED paper relies on ("progress in BMC tools").
//!
//! On a satisfiable query the engine extracts a [`Counterexample`]: the
//! concrete per-cycle inputs and the initial values of uninitialised
//! registers, expressed over the *original* system variables so the trace
//! replays directly on the [`Simulator`].
//!
//! # Examples
//!
//! A counter that must never reach 5 — BMC finds the shortest witness:
//!
//! ```
//! use aqed_bmc::{Bmc, BmcOptions, BmcResult};
//! use aqed_tsys::TransitionSystem;
//! use aqed_expr::ExprPool;
//!
//! let mut p = ExprPool::new();
//! let mut ts = TransitionSystem::new("counter");
//! let en = ts.add_input(&mut p, "en", 1);
//! let c = ts.add_register(&mut p, "c", 4, 0);
//! let ce = p.var_expr(c);
//! let one = p.lit(4, 1);
//! let inc = p.add(ce, one);
//! let ene = p.var_expr(en);
//! let next = p.ite(ene, inc, ce);
//! ts.set_next(c, next);
//! let five = p.lit(4, 5);
//! let hit = p.eq(ce, five);
//! ts.add_bad("reaches_5", hit);
//!
//! let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(10));
//! match bmc.check(&ts, &mut p) {
//!     BmcResult::Counterexample(cex) => {
//!         assert_eq!(cex.bad_name, "reaches_5");
//!         assert_eq!(cex.depth, 5); // 5 enables needed
//!     }
//!     other => panic!("expected counterexample, got {other:?}"),
//! }
//! ```

pub mod kind;
mod witness;

pub use witness::to_btor2_witness;

// Re-exported so downstream crates can set budgets without a direct
// `aqed-sat` dependency.
pub use aqed_sat::{ArmedBudget, Budget, StopHandle, StopReason};

use aqed_bitblast::BitBlaster;
use aqed_bitvec::Bv;
use aqed_expr::{ExprPool, ExprRef, VarId};
use aqed_sat::{Lit, SatBackend, SolveResult, Solver, SolverStats, Var};
use aqed_tsys::{coi_slice_cached, CoiCache, CoiSlice, Simulator, Trace, TransitionSystem};
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for a BMC run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmcOptions {
    /// Maximum unrolling depth (number of frames − 1). Frame `k` means
    /// the bad is evaluated after `k` transitions.
    pub max_bound: usize,
    /// Reuse one solver across depths (true, default) or re-encode from
    /// scratch per depth (false; ablation baseline).
    pub incremental: bool,
    /// Optional per-`check` conflict budget; exceeding it yields
    /// [`BmcResult::Unknown`].
    pub conflict_budget: Option<u64>,
    /// Resource budget (wall-clock deadline, effort caps) governing the
    /// whole run. Unlimited by default; armed when `check` starts. An
    /// externally armed budget (shared deadline, cancellation) can be
    /// passed to [`Bmc::check_under`] instead.
    pub budget: Budget,
    /// After a depth is proven violation-free, permanently assert the
    /// negation of that frame's bad literals. Sound; helps some
    /// instances (the AES equivalence proofs) and hurts others — measure
    /// per design.
    pub prune_checked_bads: bool,
    /// Slice the system to the cone of influence of the selected bads
    /// (plus all constraints) before unrolling (default true). Verdicts
    /// are unchanged; counterexamples are widened back to the full input
    /// set with zero values for sliced-away inputs.
    pub coi: bool,
    /// Ask the SAT backend to preprocess the CNF (subsumption, bounded
    /// variable elimination) before searching (default true). Backends
    /// without a preprocessor ignore the request.
    pub preprocess: bool,
    /// Escalation hint forwarded to the backend via
    /// [`SatBackend::set_escalation_level`]: how many budget-exhausted
    /// retries preceded this run. `None` (default) leaves the backend's
    /// own policy untouched — the portfolio backend then races at full
    /// width on every solve. The obligation scheduler sets `Some(0)` on
    /// first attempts so easy obligations stay on one solver.
    pub escalation_level: Option<u32>,
    /// Label forwarded to the backend via
    /// [`SatBackend::set_metrics_scope`] (e.g. `"prop=fc"`), separating
    /// the backend's metric histograms per obligation / property class.
    pub metrics_scope: Option<String>,
}

impl Default for BmcOptions {
    fn default() -> Self {
        BmcOptions {
            max_bound: 30,
            incremental: true,
            conflict_budget: None,
            budget: Budget::unlimited(),
            prune_checked_bads: false,
            coi: true,
            preprocess: true,
            escalation_level: None,
            metrics_scope: None,
        }
    }
}

impl BmcOptions {
    /// Returns the options with the given maximum bound.
    #[must_use]
    pub fn with_max_bound(mut self, bound: usize) -> Self {
        self.max_bound = bound;
        self
    }

    /// Returns the options with incremental solving enabled or disabled.
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Returns the options with a conflict budget.
    #[must_use]
    pub fn with_conflict_budget(mut self, budget: Option<u64>) -> Self {
        self.conflict_budget = budget;
        self
    }

    /// Returns the options with a resource budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Returns the options with checked-bad pruning enabled or disabled.
    #[must_use]
    pub fn with_prune_checked_bads(mut self, prune: bool) -> Self {
        self.prune_checked_bads = prune;
        self
    }

    /// Returns the options with cone-of-influence reduction enabled or
    /// disabled.
    #[must_use]
    pub fn with_coi(mut self, coi: bool) -> Self {
        self.coi = coi;
        self
    }

    /// Returns the options with CNF preprocessing enabled or disabled.
    #[must_use]
    pub fn with_preprocess(mut self, preprocess: bool) -> Self {
        self.preprocess = preprocess;
        self
    }

    /// Returns the options with a backend escalation hint.
    #[must_use]
    pub fn with_escalation_level(mut self, level: Option<u32>) -> Self {
        self.escalation_level = level;
        self
    }

    /// Returns the options with a backend metrics scope label.
    #[must_use]
    pub fn with_metrics_scope(mut self, scope: Option<String>) -> Self {
        self.metrics_scope = scope;
        self
    }
}

/// Clauses longer than this stay out of the exported learnt core: their
/// import cost outweighs their pruning value.
const MAX_PACK_LITS: usize = 32;

/// At most this many learnt clauses are exported per run (the
/// highest-activity survivors).
const MAX_PACK_CLAUSES: usize = 2048;

/// A learnt-clause core exported by one incremental BMC run, keyed to
/// the exact frame-by-frame CNF the run built.
///
/// The unroller, bit-blaster, and per-frame disjunction encoding are
/// deterministic functions of the (sliced) transition system, so two
/// runs over an identical slice allocate identical solver variables in
/// identical order. `frame_vars` records the variable count after each
/// frame's query encoding; a future run may inject `clauses` only once
/// its own counts have matched the donor's through the donor's final
/// frame — any mismatch means the CNF differs and the whole pack is
/// discarded. Injected clauses are then implied by the (identical)
/// formula, so they are redundant by construction and cannot change a
/// verdict or a model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LearntPack {
    /// Backend variable count observed after frame `k`'s query encoding.
    pub frame_vars: Vec<u32>,
    /// Learnt clauses, each literal encoded as `(var << 1) | positive`.
    pub clauses: Vec<Vec<u32>>,
}

impl LearntPack {
    /// Whether the pack carries no clauses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

/// Warm-start inputs for one incremental run (see
/// [`Bmc::set_warm_start`]).
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// Frames `0..=skip_to` are already proven clean for the selected
    /// bads by a reused persisted verdict: they are still encoded — so
    /// the CNF reproduces the donor run's variable numbering exactly —
    /// but their queries are not solved. The caller owns the soundness
    /// of the reused fact (content-addressed cone identity).
    pub skip_to: Option<usize>,
    /// Learnt core from a previous run over an identical sliced system,
    /// injected once the frame fingerprints prove the CNF identical.
    pub pack: Option<LearntPack>,
}

/// Per-run warm-start bookkeeping threaded through the frame loop.
struct WarmCtl {
    /// Whether warm mode is on (fingerprints recorded, core exported).
    enabled: bool,
    skip_to: Option<usize>,
    /// Pending pack; taken on injection or on the first mismatch.
    pack: Option<LearntPack>,
    /// This run's own frame fingerprints (becomes the exported pack's).
    frame_vars: Vec<u32>,
    /// Clauses dropped without injection (fingerprint mismatch, or the
    /// run ended before reaching the pack's final frame).
    discarded: u64,
    /// Whether at least one frame query was skipped via `skip_to`.
    skipped: bool,
}

impl WarmCtl {
    fn off() -> Self {
        WarmCtl {
            enabled: false,
            skip_to: None,
            pack: None,
            frame_vars: Vec::new(),
            discarded: 0,
            skipped: false,
        }
    }

    fn from_warm(warm: Option<WarmStart>) -> Self {
        let Some(w) = warm else { return WarmCtl::off() };
        let mut ctl = WarmCtl {
            enabled: true,
            skip_to: w.skip_to,
            pack: None,
            frame_vars: Vec::new(),
            discarded: 0,
            skipped: false,
        };
        match w.pack {
            // A pack with clauses but no fingerprints can never be
            // validated: discard it up front.
            Some(p) if p.frame_vars.is_empty() => ctl.discarded = p.clauses.len() as u64,
            Some(p) if !p.is_empty() => ctl.pack = Some(p),
            _ => {}
        }
        ctl
    }

    /// Whether frame `k`'s query is covered by a reused clean verdict.
    fn skips(&self, k: usize) -> bool {
        self.skip_to.is_some_and(|c| k <= c)
    }

    /// Records frame `k`'s completed encoding and injects the pack when
    /// the donor's final frame is reached with every fingerprint
    /// matched. Called after the frame's query CNF (bad literals plus
    /// disjunction) is fully built and before it is solved, so injected
    /// clauses help the very next query.
    fn observe_frame<B: SatBackend>(&mut self, k: usize, backend: &mut B) {
        if !self.enabled {
            return;
        }
        let nv = backend.num_vars() as u32;
        self.frame_vars.push(nv);
        let Some(pack) = &self.pack else { return };
        if pack.frame_vars[k] != nv {
            let p = self.pack.take().expect("checked above");
            self.discarded += p.clauses.len() as u64;
            return;
        }
        if k + 1 == pack.frame_vars.len() {
            let p = self.pack.take().expect("checked above");
            let clauses: Vec<Vec<Lit>> = p
                .clauses
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|&code| Var::from_index((code >> 1) as usize).lit(code & 1 == 1))
                        .collect()
                })
                .collect();
            backend.import_learnts(&clauses);
        }
    }
}

/// A concrete witness violating a bad property.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Name of the violated property.
    pub bad_name: String,
    /// Index of the violated property in [`TransitionSystem::bads`].
    pub bad_index: usize,
    /// Frame at which the property fired (0-based). The trace has
    /// `depth + 1` cycles: the violating evaluation happens in the last
    /// one.
    pub depth: usize,
    /// Per-cycle input assignments over the original input variables.
    pub trace: Trace,
    /// Concrete initial values chosen for uninitialised registers.
    pub initial_state: HashMap<VarId, Bv>,
}

impl Counterexample {
    /// Trace length in clock cycles (the paper's "CEX length").
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.depth + 1
    }

    /// Replays the counterexample on the concrete simulator and returns
    /// whether the reported bad property indeed fires at `depth`.
    /// A sound BMC engine always returns `true` here; the test suites use
    /// this as an end-to-end cross-check.
    #[must_use]
    pub fn replay(&self, ts: &TransitionSystem, pool: &ExprPool) -> bool {
        let mut sim = Simulator::with_state(ts, pool, &self.initial_state);
        for k in 0..=self.depth {
            let inputs: Vec<(VarId, Bv)> = self.trace.frame(k).to_vec();
            let rec = sim.step_with(ts, pool, &inputs);
            if k == self.depth {
                return rec.violated_bads.contains(&self.bad_index);
            }
        }
        false
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "counterexample to '{}' at depth {} ({} cycles)",
            self.bad_name,
            self.depth,
            self.cycles()
        )
    }
}

/// Outcome of a BMC run.
#[derive(Debug, Clone)]
pub enum BmcResult {
    /// A violation was found; the witness is the *shortest* within the
    /// explored depths (depths are explored in increasing order).
    Counterexample(Counterexample),
    /// No violation exists within `bound` transitions.
    NoCounterexample {
        /// The deepest bound fully checked.
        bound: usize,
    },
    /// A resource limit stopped the run at the given depth.
    Unknown {
        /// The depth being explored when the budget ran out.
        bound: usize,
        /// Which limit stopped the run.
        reason: StopReason,
    },
}

impl BmcResult {
    /// The counterexample, if any.
    #[must_use]
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            BmcResult::Counterexample(cex) => Some(cex),
            _ => None,
        }
    }

    /// Whether the run proved the absence of violations up to its bound.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        matches!(self, BmcResult::NoCounterexample { .. })
    }
}

/// Statistics of the most recent [`Bmc::check`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct BmcStats {
    /// Deepest frame encoded.
    pub frames_encoded: usize,
    /// Total SAT solver calls.
    pub solver_calls: u64,
    /// CNF clauses in the solver at the end of the run.
    pub clauses: usize,
    /// CNF variables in the solver at the end of the run.
    pub variables: usize,
    /// Wall-clock time of the whole check.
    pub elapsed: Duration,
    /// Cumulative statistics of the underlying SAT solver (conflicts,
    /// propagations, arena bytes, GC runs, …). Monolithic runs absorb
    /// every per-depth solver, so counters cover the whole run (and
    /// `arena_bytes` is the per-depth peak).
    pub solver: SolverStats,
    /// State variables kept by cone-of-influence reduction (all of them
    /// when COI is disabled).
    pub coi_latches_kept: usize,
    /// State variables sliced away by cone-of-influence reduction.
    pub coi_latches_dropped: usize,
    /// Persisted verdicts reused verbatim instead of being re-proven:
    /// counts whole-obligation cache hits and warm-start runs whose
    /// frame prefix was covered by a reused clean fact.
    pub verdicts_reused: u64,
    /// Wall-clock microseconds spent in cone-of-influence slicing.
    pub coi_micros: u64,
    /// Wall-clock microseconds spent unrolling frames into CNF.
    pub encode_micros: u64,
    /// Wall-clock microseconds spent in the per-depth SAT queries
    /// (including warm fingerprinting and witness extraction).
    pub solve_micros: u64,
}

impl BmcStats {
    /// Folds another run's statistics into this one. Used when several
    /// per-obligation checks report as a single aggregate: counters add
    /// up, `frames_encoded` takes the deepest run, and `elapsed` becomes
    /// total solver time (which exceeds wall-clock under parallelism).
    pub fn absorb(&mut self, other: &BmcStats) {
        self.frames_encoded = self.frames_encoded.max(other.frames_encoded);
        self.solver_calls += other.solver_calls;
        self.clauses += other.clauses;
        self.variables += other.variables;
        self.elapsed += other.elapsed;
        self.solver.absorb(&other.solver);
        self.coi_latches_kept += other.coi_latches_kept;
        self.coi_latches_dropped += other.coi_latches_dropped;
        self.verdicts_reused += other.verdicts_reused;
        self.coi_micros += other.coi_micros;
        self.encode_micros += other.encode_micros;
        self.solve_micros += other.solve_micros;
    }
}

/// The bounded model checker, generic over the SAT backend it drives.
/// Create once per system with [`Bmc::new`] (CDCL backend) or
/// [`Bmc::with_backend`] (any [`SatBackend`]), then call [`Bmc::check`].
#[derive(Debug)]
pub struct Bmc<B: SatBackend = Solver> {
    options: BmcOptions,
    stats: BmcStats,
    /// Selected bad indices; `None` = all bads of the system.
    bad_filter: Option<Vec<usize>>,
    /// Shared COI support-fixpoint memo (see [`Bmc::set_coi_cache`]).
    coi_cache: Option<Arc<CoiCache>>,
    /// Warm-start inputs for the next incremental check, if any.
    warm: Option<WarmStart>,
    /// Learnt core captured by the most recent warm-mode run.
    export: Option<LearntPack>,
    backend: PhantomData<fn() -> B>,
}

impl Bmc<Solver> {
    /// Creates a checker for `ts` backed by the in-process CDCL solver.
    ///
    /// The system reference is only used for upfront sanity checks; pass
    /// the same system to [`Bmc::check`].
    ///
    /// # Panics
    ///
    /// Panics if the system has no bad properties.
    #[must_use]
    pub fn new(ts: &TransitionSystem, options: BmcOptions) -> Self {
        Bmc::with_backend(ts, options)
    }
}

impl<B: SatBackend> Bmc<B> {
    /// Creates a checker for `ts` using backend `B` (one fresh instance
    /// per encoding session, via `B::default()`).
    ///
    /// # Panics
    ///
    /// Panics if the system has no bad properties.
    #[must_use]
    pub fn with_backend(ts: &TransitionSystem, options: BmcOptions) -> Self {
        assert!(
            !ts.bads().is_empty(),
            "system '{}' has no bad properties to check",
            ts.name()
        );
        Bmc {
            options,
            stats: BmcStats::default(),
            bad_filter: None,
            coi_cache: None,
            warm: None,
            export: None,
            backend: PhantomData,
        }
    }

    /// Enables warm-start mode for the next incremental check: frames
    /// covered by `warm.skip_to` are encoded but not solved, the learnt
    /// pack is injected once the frame fingerprints prove the CNF
    /// identical to the donor's (see [`LearntPack`]), and on completion
    /// the run's own surviving learnt core is captured for
    /// [`Bmc::take_learnt_export`]. Monolithic mode ignores warm-start
    /// (its per-depth sessions never match an incremental donor).
    pub fn set_warm_start(&mut self, warm: WarmStart) {
        self.warm = Some(warm);
    }

    /// The learnt core captured by the most recent warm-mode incremental
    /// run, or `None` when warm mode was off (or the run was monolithic).
    pub fn take_learnt_export(&mut self) -> Option<LearntPack> {
        self.export.take()
    }

    /// Installs a shared [`CoiCache`] so repeated checks (and sibling
    /// checkers of the same system — the obligation scheduler hands one
    /// cache to every job of a run) reuse the COI support fixpoint
    /// instead of re-slicing from scratch. The cache is bound to one
    /// system; see [`CoiCache`] for the contract.
    pub fn set_coi_cache(&mut self, cache: Arc<CoiCache>) {
        self.coi_cache = Some(cache);
    }

    /// Restricts checking to the named properties (default: all).
    ///
    /// # Panics
    ///
    /// Panics if a name does not exist in the system.
    pub fn select_bads(&mut self, ts: &TransitionSystem, names: &[&str]) {
        let idx: Vec<usize> = names
            .iter()
            .map(|n| {
                ts.bad_index(n)
                    .unwrap_or_else(|| panic!("no bad property named '{n}'"))
            })
            .collect();
        self.bad_filter = Some(idx);
    }

    /// Restricts checking to the given bad indices (default: all). The
    /// obligation scheduler uses this to split a system's properties into
    /// independent jobs without going through names.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn select_bad_indices(&mut self, ts: &TransitionSystem, indices: &[usize]) {
        for &i in indices {
            assert!(
                i < ts.bads().len(),
                "bad index {i} out of range (system has {})",
                ts.bads().len()
            );
        }
        self.bad_filter = Some(indices.to_vec());
    }

    /// Statistics of the most recent check.
    #[must_use]
    pub fn stats(&self) -> BmcStats {
        self.stats
    }

    fn bad_indices(&self, ts: &TransitionSystem) -> Vec<usize> {
        self.bad_filter
            .clone()
            .unwrap_or_else(|| (0..ts.bads().len()).collect())
    }
}

impl<B: SatBackend + Default> Bmc<B> {
    /// Runs BMC on `ts` (which must be validated and identical to the one
    /// passed to the constructor), exploring depths `0..=max_bound` in
    /// order and returning at the first violation.
    ///
    /// # Panics
    ///
    /// Panics if the system fails validation (call
    /// [`TransitionSystem::validate`] first for a proper error value).
    pub fn check(&mut self, ts: &TransitionSystem, pool: &mut ExprPool) -> BmcResult {
        let armed = ArmedBudget::arm(&self.options.budget);
        self.check_under(ts, pool, &armed)
    }

    /// Like [`Bmc::check`], but governed by an externally armed budget —
    /// the deadline keeps running across calls and cancellation through
    /// the budget's [`StopHandle`] is observed between and inside solver
    /// queries. The obligation scheduler uses this to share one deadline
    /// across many per-property runs.
    ///
    /// # Panics
    ///
    /// As for [`Bmc::check`].
    pub fn check_under(
        &mut self,
        ts: &TransitionSystem,
        pool: &mut ExprPool,
        armed: &ArmedBudget,
    ) -> BmcResult {
        self.check_inspecting(ts, pool, armed, |_| {})
    }

    /// Like [`Bmc::check_under`], with a hook that receives the live SAT
    /// backend after the run finishes but before the encoding session is
    /// dropped. The profiling harness uses this to replay the final model
    /// through bare propagation. In monolithic mode (a fresh session per
    /// depth) the hook is not called.
    ///
    /// # Panics
    ///
    /// As for [`Bmc::check`].
    pub fn check_inspecting<F: FnOnce(&mut B)>(
        &mut self,
        ts: &TransitionSystem,
        pool: &mut ExprPool,
        armed: &ArmedBudget,
        inspect: F,
    ) -> BmcResult {
        let start = Instant::now();
        ts.validate(pool).expect("system must be well-formed");
        self.stats = BmcStats::default();
        self.export = None;
        let bad_idx = self.bad_indices(ts);
        let _check_span = aqed_obs::obs_span!(
            "bmc.check",
            system = ts.name(),
            bads = bad_idx.len(),
            incremental = self.options.incremental,
            max_bound = self.options.max_bound,
        );
        // Word-level stage of the simplification pipeline: slice the
        // system to the cone of influence of the selected bads before a
        // single frame is unrolled. The run below then works on the
        // slice, whose bads are re-indexed 0..n.
        let coi_start = Instant::now();
        let slice: Option<CoiSlice> = self.options.coi.then(|| {
            let mut sp = aqed_obs::span("pipeline.coi");
            let s = coi_slice_cached(ts, pool, &bad_idx, self.coi_cache.as_deref());
            sp.record("latches_kept", s.latches_kept);
            sp.record("latches_dropped", s.latches_dropped);
            sp.record("inputs_kept", s.inputs_kept);
            sp.record("inputs_dropped", s.inputs_dropped);
            s
        });
        self.stats.coi_micros = duration_micros(coi_start.elapsed());
        let (work_ts, work_idx): (&TransitionSystem, Vec<usize>) = match &slice {
            Some(s) => {
                self.stats.coi_latches_kept = s.latches_kept;
                self.stats.coi_latches_dropped = s.latches_dropped;
                (&s.system, (0..s.bad_map.len()).collect())
            }
            None => {
                self.stats.coi_latches_kept = ts.states().len();
                (ts, bad_idx)
            }
        };
        let mut result = if self.options.incremental {
            self.run_incremental(work_ts, pool, &work_idx, armed, inspect)
        } else {
            self.run_monolithic(work_ts, pool, &work_idx, armed)
        };
        if let (Some(s), BmcResult::Counterexample(cex)) = (&slice, &mut result) {
            // Map the witness back onto the original system: restore the
            // original bad index and widen the trace with zero values for
            // the sliced-away inputs (sound: they lie outside every kept
            // cone, so their values cannot affect the violation).
            cex.bad_index = s.bad_map[cex.bad_index];
            let extra: Vec<(VarId, Bv)> = ts
                .inputs()
                .iter()
                .filter(|v| !s.system.inputs().contains(v))
                .map(|&v| (v, Bv::zero(pool.var_width(v))))
                .collect();
            cex.trace.pad_frames(&extra);
            // Sliced-away uninitialised registers get a zero power-on
            // value so the witness stays complete.
            for st in ts.states() {
                if st.init.is_none() && !s.system.is_state(st.var) {
                    cex.initial_state
                        .insert(st.var, Bv::zero(pool.var_width(st.var)));
                }
            }
        }
        self.stats.elapsed = start.elapsed();
        result
    }

    /// Incremental mode: one session for the whole run; each depth adds
    /// one frame to the live encoding. `inspect` sees the backend after
    /// the last query.
    fn run_incremental<F: FnOnce(&mut B)>(
        &mut self,
        ts: &TransitionSystem,
        pool: &mut ExprPool,
        bad_idx: &[usize],
        armed: &ArmedBudget,
        inspect: F,
    ) -> BmcResult {
        let mut session: Session<B> = Session::new(ts, pool, &self.options, armed);
        let prune = self.options.prune_checked_bads;
        let mut warm = WarmCtl::from_warm(self.warm.take());
        let result = 'run: {
            for k in 0..=self.options.max_bound {
                if let Some(reason) = armed.poll() {
                    break 'run BmcResult::Unknown { bound: k, reason };
                }
                self.stats.frames_encoded = k;
                {
                    let encode_start = Instant::now();
                    let mut sp = aqed_obs::obs_span!("bmc.encode", depth = k);
                    let pre = sp.is_active().then(|| session.sizes());
                    session.encode_frame(ts, pool, k);
                    record_growth(&mut sp, pre, &session);
                    self.stats.encode_micros += duration_micros(encode_start.elapsed());
                }
                let outcome = {
                    let solve_start = Instant::now();
                    let mut sp = aqed_obs::obs_span!("bmc.solve", depth = k);
                    let pre = sp.is_active().then(|| session.sizes());
                    let o = self.check_frame(&mut session, ts, pool, k, bad_idx, prune, &mut warm);
                    record_growth(&mut sp, pre, &session);
                    sp.record("result", outcome_code(&o));
                    self.stats.solve_micros += duration_micros(solve_start.elapsed());
                    o
                };
                aqed_obs::obs_event!("bmc.depth", depth = k, result = outcome_code(&outcome));
                match outcome {
                    FrameOutcome::Clean => {}
                    FrameOutcome::Cex(cex) => break 'run BmcResult::Counterexample(cex),
                    FrameOutcome::Unknown(reason) => {
                        break 'run BmcResult::Unknown { bound: k, reason };
                    }
                }
            }
            BmcResult::NoCounterexample {
                bound: self.options.max_bound,
            }
        };
        if warm.enabled {
            // A pack the run never validated (ended early, or diverged)
            // counts as discarded rather than silently vanishing.
            if let Some(p) = warm.pack.take() {
                warm.discarded += p.clauses.len() as u64;
            }
            self.stats.solver.learnt_discarded += warm.discarded;
            if warm.skipped {
                self.stats.verdicts_reused += 1;
            }
            let clauses: Vec<Vec<u32>> = session
                .backend
                .export_learnts(MAX_PACK_LITS, MAX_PACK_CLAUSES)
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|&l| ((l.var().index() as u32) << 1) | u32::from(l.is_positive()))
                        .collect()
                })
                .collect();
            self.export = Some(LearntPack {
                frame_vars: warm.frame_vars,
                clauses,
            });
        }
        inspect(&mut session.backend);
        session.export_stats(&mut self.stats);
        result
    }

    /// Monolithic mode: fresh session per depth, re-encoding frames
    /// `0..=k` from scratch — the ablation baseline.
    fn run_monolithic(
        &mut self,
        ts: &TransitionSystem,
        pool: &mut ExprPool,
        bad_idx: &[usize],
        armed: &ArmedBudget,
    ) -> BmcResult {
        for k in 0..=self.options.max_bound {
            if let Some(reason) = armed.poll() {
                return BmcResult::Unknown { bound: k, reason };
            }
            let mut session: Session<B> = Session::new(ts, pool, &self.options, armed);
            self.stats.frames_encoded = k;
            {
                let encode_start = Instant::now();
                let mut sp = aqed_obs::obs_span!("bmc.encode", depth = k);
                let pre = sp.is_active().then(|| session.sizes());
                for j in 0..=k {
                    session.encode_frame(ts, pool, j);
                }
                record_growth(&mut sp, pre, &session);
                self.stats.encode_micros += duration_micros(encode_start.elapsed());
            }
            // No pruning: the session is dropped after this one query.
            let outcome = {
                let solve_start = Instant::now();
                let mut sp = aqed_obs::obs_span!("bmc.solve", depth = k);
                let pre = sp.is_active().then(|| session.sizes());
                let o = self.check_frame(
                    &mut session,
                    ts,
                    pool,
                    k,
                    bad_idx,
                    false,
                    &mut WarmCtl::off(),
                );
                record_growth(&mut sp, pre, &session);
                sp.record("result", outcome_code(&o));
                self.stats.solve_micros += duration_micros(solve_start.elapsed());
                o
            };
            aqed_obs::obs_event!("bmc.depth", depth = k, result = outcome_code(&outcome));
            session.export_stats(&mut self.stats);
            match outcome {
                FrameOutcome::Clean => {}
                FrameOutcome::Cex(cex) => return BmcResult::Counterexample(cex),
                FrameOutcome::Unknown(reason) => return BmcResult::Unknown { bound: k, reason },
            }
        }
        BmcResult::NoCounterexample {
            bound: self.options.max_bound,
        }
    }

    /// Encodes and solves the "any selected bad fires at frame `k`"
    /// query, counting the solver call. In warm mode the completed frame
    /// encoding is fingerprinted first (injecting the learnt pack when
    /// due), and frames covered by a reused clean verdict skip the solve.
    #[allow(clippy::too_many_arguments)]
    fn check_frame(
        &mut self,
        session: &mut Session<B>,
        ts: &TransitionSystem,
        pool: &mut ExprPool,
        k: usize,
        bad_idx: &[usize],
        prune: bool,
        warm: &mut WarmCtl,
    ) -> FrameOutcome {
        let frame_bad_lits = session.frame_bad_lits(pool, k, bad_idx);
        if frame_bad_lits.is_empty() {
            warm.observe_frame(k, &mut session.backend);
            return FrameOutcome::Clean; // every bad statically false here
        }
        let any = session.arm_query(&frame_bad_lits);
        // The frame's query CNF (bad literals + disjunction) is complete:
        // fingerprint it, and inject the pack before the next solve.
        warm.observe_frame(k, &mut session.backend);
        if warm.skips(k) {
            // Covered by a reused clean fact: mirror the prune side
            // effect (the fact proves these bads unreachable) but spend
            // no solver call.
            if prune {
                for &(_, lit) in &frame_bad_lits {
                    session.backend.add_clause(&[!lit]);
                }
            }
            warm.skipped = true;
            return FrameOutcome::Clean;
        }
        self.stats.solver_calls += 1;
        session.solve_armed(ts, pool, k, &frame_bad_lits, any, prune)
    }
}

/// Outcome of one per-frame query inside a session.
enum FrameOutcome {
    Cex(Counterexample),
    Clean,
    Unknown(StopReason),
}

/// Trace label for a frame outcome.
/// Saturating microsecond count for the phase-timing stats.
fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn outcome_code(o: &FrameOutcome) -> &'static str {
    match o {
        FrameOutcome::Cex(_) => "cex",
        FrameOutcome::Clean => "clean",
        FrameOutcome::Unknown(_) => "unknown",
    }
}

/// Attaches the encoding growth (bit-blast output size) of a phase to
/// its span: clause/variable deltas against `pre` (captured only when
/// the span is live).
fn record_growth<B: SatBackend>(
    sp: &mut aqed_obs::SpanGuard,
    pre: Option<(usize, usize)>,
    session: &Session<B>,
) {
    if let Some((clauses, vars)) = pre {
        let (now_c, now_v) = session.sizes();
        sp.record("clauses_added", now_c.saturating_sub(clauses));
        sp.record("vars_added", now_v.saturating_sub(vars));
    }
}

/// One SAT encoding session: a backend plus the bit-blaster and unroller
/// feeding it. Both BMC modes and the k-induction engine drive their
/// encodings through this single path.
#[derive(Debug)]
struct Session<B: SatBackend> {
    backend: B,
    blaster: BitBlaster,
    unroller: Unroller,
    /// Whether the backend preprocesses; gates interface freezing.
    preprocess: bool,
}

impl<B: SatBackend + Default> Session<B> {
    fn new(
        ts: &TransitionSystem,
        pool: &mut ExprPool,
        options: &BmcOptions,
        armed: &ArmedBudget,
    ) -> Self {
        let mut backend = B::default();
        backend.set_conflict_budget(options.conflict_budget);
        backend.set_budget(armed.clone());
        backend.set_preprocessing(options.preprocess);
        if let Some(level) = options.escalation_level {
            backend.set_escalation_level(level);
        }
        if let Some(scope) = &options.metrics_scope {
            backend.set_metrics_scope(scope);
        }
        Session {
            backend,
            blaster: BitBlaster::new(),
            unroller: Unroller::new(ts, pool),
            preprocess: options.preprocess,
        }
    }
}

impl<B: SatBackend> Session<B> {
    /// Unrolls to frame `k` and permanently asserts its constraints.
    fn encode_frame(&mut self, ts: &TransitionSystem, pool: &mut ExprPool, k: usize) {
        self.unroller.extend_to(ts, pool, k);
        for &c in &self.unroller.frames[k].constraints {
            self.blaster.assert_true(pool, c, &mut self.backend);
        }
    }

    /// Bit-blasts the selected bads of frame `k` into one activation
    /// literal per property, skipping statically-false bads.
    fn frame_bad_lits(
        &mut self,
        pool: &mut ExprPool,
        k: usize,
        bad_idx: &[usize],
    ) -> Vec<(usize, Lit)> {
        let mut lits: Vec<(usize, Lit)> = Vec::new();
        for &bi in bad_idx {
            let bexpr = self.unroller.frames[k].bads[bi];
            if pool.as_const(bexpr).is_some_and(|v| !v.is_true()) {
                continue; // statically false at this depth
            }
            let lit = self.blaster.literal(pool, bexpr, &mut self.backend);
            lits.push((bi, lit));
        }
        lits
    }

    /// Prepares frame `k`'s query: freezes the live interface (when the
    /// backend preprocesses) and encodes the bad disjunction, returning
    /// the assumption literal. Splitting this from [`Session::solve_armed`]
    /// gives warm-start a point where the frame's CNF is complete but the
    /// query has not yet run.
    fn arm_query(&mut self, frame_bad_lits: &[(usize, Lit)]) -> Lit {
        if self.preprocess {
            self.freeze_interface(frame_bad_lits);
        }
        self.encode_disjunction(frame_bad_lits)
    }

    /// Solves "any of this frame's bads" under the assumption prepared by
    /// [`Session::arm_query`].
    fn solve_armed(
        &mut self,
        ts: &TransitionSystem,
        pool: &ExprPool,
        k: usize,
        frame_bad_lits: &[(usize, Lit)],
        any: Lit,
        prune: bool,
    ) -> FrameOutcome {
        match self.backend.solve_under(&[any]) {
            SolveResult::Sat => FrameOutcome::Cex(self.unroller.extract_cex(
                ts,
                pool,
                &self.blaster,
                &self.backend,
                k,
                frame_bad_lits,
            )),
            SolveResult::Unsat => {
                if prune {
                    // This depth is proven violation-free: fix the
                    // frame's bad literals to false permanently (sound:
                    // they are unreachable).
                    for &(_, lit) in frame_bad_lits {
                        self.backend.add_clause(&[!lit]);
                    }
                }
                FrameOutcome::Clean
            }
            // Backends predating budget support report no reason; the
            // only limit they can hit is the legacy conflict budget.
            SolveResult::Unknown => {
                FrameOutcome::Unknown(self.backend.stop_reason().unwrap_or(StopReason::Conflicts))
            }
        }
    }

    /// Freezes the frame interface ahead of a preprocessing solve: every
    /// already-encoded bit of the symbolic state entering the next frame,
    /// plus this query's bad literals (pruning may assert their negation
    /// later). Eliminating these would be sound — the solver reactivates
    /// an eliminated variable when a new clause or assumption touches it —
    /// but each reactivation re-adds stored clauses, so freezing the
    /// variables known to be re-referenced avoids the churn.
    fn freeze_interface(&mut self, frame_bad_lits: &[(usize, Lit)]) {
        for &e in self.unroller.state_exprs.values() {
            if let Some(bits) = self.blaster.cached_bits(e) {
                for &l in bits {
                    self.backend.freeze_var(l.var());
                }
            }
        }
        for &(_, l) in frame_bad_lits {
            self.backend.freeze_var(l.var());
        }
    }

    /// Encodes `any = l1 ∨ l2 ∨ …` via an auxiliary variable usable as an
    /// assumption.
    fn encode_disjunction(&mut self, lits: &[(usize, Lit)]) -> Lit {
        if lits.len() == 1 {
            return lits[0].1;
        }
        let any = self.backend.new_var().pos();
        let mut clause: Vec<Lit> = vec![!any];
        clause.extend(lits.iter().map(|&(_, l)| l));
        self.backend.add_clause(&clause);
        any
    }

    /// `(clauses, variables)` currently in the backend.
    fn sizes(&self) -> (usize, usize) {
        (self.backend.num_clauses(), self.backend.num_vars())
    }

    fn export_stats(&self, stats: &mut BmcStats) {
        stats.clauses = self.backend.num_clauses();
        stats.variables = self.backend.num_vars();
        // Absorb (sum) rather than overwrite: monolithic runs export one
        // fresh session per depth, and every depth's effort must be
        // accounted for in the final aggregate.
        stats.solver.absorb(&self.backend.stats());
    }
}

/// One unrolled frame: every system expression rewritten over frame-local
/// input variables and the accumulated symbolic state.
#[derive(Debug)]
struct Frame {
    /// Fresh variable per original input.
    input_vars: HashMap<VarId, VarId>,
    /// Constraint expressions of this frame.
    constraints: Vec<ExprRef>,
    /// Bad expressions of this frame (index-aligned with the system).
    bads: Vec<ExprRef>,
}

#[derive(Debug)]
struct Unroller {
    frames: Vec<Frame>,
    /// Symbolic state entering the *next* frame to be created.
    state_exprs: HashMap<VarId, ExprRef>,
    /// Fresh frame-0 variables standing in for uninitialised registers.
    free_initials: HashMap<VarId, VarId>,
}

impl Unroller {
    fn new(ts: &TransitionSystem, pool: &mut ExprPool) -> Self {
        // Frame-0 state: init expression or a fresh free variable.
        let mut state_exprs: HashMap<VarId, ExprRef> = HashMap::new();
        let mut free_initials = HashMap::new();
        // Fixpoint over init expressions that reference other states.
        for s in ts.states() {
            if s.init.is_none() {
                let w = pool.var_width(s.var);
                let name = format!("{}@init", pool.var_name(s.var));
                let fv = pool.var(name, w, aqed_expr::VarKind::Input);
                free_initials.insert(s.var, fv);
                state_exprs.insert(s.var, pool.var_expr(fv));
            }
        }
        let mut pending: Vec<(VarId, ExprRef)> = ts
            .states()
            .iter()
            .filter_map(|s| s.init.map(|i| (s.var, i)))
            .collect();
        let mut progress = true;
        while progress && !pending.is_empty() {
            progress = false;
            let mut remaining = Vec::new();
            for (var, init) in pending {
                let deps = pool.support(init);
                if deps.iter().all(|d| state_exprs.contains_key(d)) {
                    let e = pool.substitute(init, &state_exprs);
                    state_exprs.insert(var, e);
                    progress = true;
                } else {
                    remaining.push((var, init));
                }
            }
            pending = remaining;
        }
        assert!(pending.is_empty(), "cyclic init expressions");
        Unroller {
            frames: Vec::new(),
            state_exprs,
            free_initials,
        }
    }

    /// Ensures frames `0..=k` exist.
    fn extend_to(&mut self, ts: &TransitionSystem, pool: &mut ExprPool, k: usize) {
        while self.frames.len() <= k {
            let fidx = self.frames.len();
            // Fresh input variables for this frame.
            let mut map = self.state_exprs.clone();
            let mut input_vars = HashMap::new();
            for &iv in ts.inputs() {
                let w = pool.var_width(iv);
                let name = format!("{}@{}", pool.var_name(iv), fidx);
                let fv = pool.var(name, w, aqed_expr::VarKind::Input);
                input_vars.insert(iv, fv);
                map.insert(iv, pool.var_expr(fv));
            }
            let constraints: Vec<ExprRef> = ts
                .constraints()
                .iter()
                .map(|&c| pool.substitute(c, &map))
                .collect();
            let bads: Vec<ExprRef> = ts
                .bads()
                .iter()
                .map(|&(_, b)| pool.substitute(b, &map))
                .collect();
            // Advance symbolic state.
            let next_roots: Vec<ExprRef> = ts
                .states()
                .iter()
                .map(|s| s.next.expect("validated"))
                .collect();
            let next_exprs = pool.substitute_all(&next_roots, &map);
            for (s, e) in ts.states().iter().zip(next_exprs) {
                self.state_exprs.insert(s.var, e);
            }
            self.frames.push(Frame {
                input_vars,
                constraints,
                bads,
            });
        }
    }

    fn extract_cex<B: SatBackend>(
        &self,
        ts: &TransitionSystem,
        pool: &ExprPool,
        blaster: &BitBlaster,
        solver: &B,
        depth: usize,
        frame_bad_lits: &[(usize, Lit)],
    ) -> Counterexample {
        // Which bad fired? (At least one of the assumed disjuncts is true.)
        let (bad_index, _) = frame_bad_lits
            .iter()
            .find(|&&(_, l)| solver.value(l) == Some(true))
            .copied()
            .expect("SAT model satisfies at least one disjunct");
        let bad_name = ts.bads()[bad_index].0.clone();
        // Initial values of uninitialised registers.
        let mut initial_state = HashMap::new();
        for (&orig, &fv) in &self.free_initials {
            let val = blaster
                .model_var(pool, fv, solver)
                .unwrap_or_else(|| Bv::zero(pool.var_width(orig)));
            initial_state.insert(orig, val);
        }
        // Inputs per frame, mapped back to the original variables.
        let mut trace = Trace::new();
        for frame in self.frames.iter().take(depth + 1) {
            let mut inputs: Vec<(VarId, Bv)> = ts
                .inputs()
                .iter()
                .map(|&iv| {
                    let fv = frame.input_vars[&iv];
                    let val = blaster
                        .model_var(pool, fv, solver)
                        .unwrap_or_else(|| Bv::zero(pool.var_width(iv)));
                    (iv, val)
                })
                .collect();
            inputs.sort_by_key(|&(v, _)| v);
            trace.push_frame(inputs);
        }
        Counterexample {
            bad_name,
            bad_index,
            depth,
            trace,
            initial_state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counter with enable; bad when count reaches `target`.
    fn counter_system(pool: &mut ExprPool, target: u64) -> TransitionSystem {
        let mut ts = TransitionSystem::new("counter");
        let en = ts.add_input(pool, "en", 1);
        let c = ts.add_register(pool, "c", 4, 0);
        let ce = pool.var_expr(c);
        let one = pool.lit(4, 1);
        let inc = pool.add(ce, one);
        let ene = pool.var_expr(en);
        let next = pool.ite(ene, inc, ce);
        ts.set_next(c, next);
        let t = pool.lit(4, target);
        let hit = pool.eq(ce, t);
        ts.add_bad("reach_target", hit);
        ts
    }

    #[test]
    fn finds_shortest_counterexample() {
        let mut p = ExprPool::new();
        let ts = counter_system(&mut p, 3);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(10));
        let result = bmc.check(&ts, &mut p);
        let cex = result.counterexample().expect("must find");
        assert_eq!(cex.depth, 3);
        assert_eq!(cex.cycles(), 4);
        assert!(cex.replay(&ts, &p), "counterexample must replay");
        assert!(bmc.stats().solver_calls >= 1);
        // The simplification pipeline may shrink the final clause count
        // to zero on a toy system; variables always remain.
        assert!(bmc.stats().variables > 0);
    }

    #[test]
    fn proves_bounded_safety() {
        let mut p = ExprPool::new();
        // Target 12 unreachable within bound 5.
        let ts = counter_system(&mut p, 12);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(5));
        let result = bmc.check(&ts, &mut p);
        assert!(result.is_clean());
        match result {
            BmcResult::NoCounterexample { bound } => assert_eq!(bound, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn monolithic_stats_absorb_every_depth() {
        // A free-running tick register t (t' = t + 1, init 0) becomes a
        // compile-time constant at every unrolled frame, so the bad
        // (c == x) ∧ (t < 2) constant-folds to false for depths ≥ 2.
        // With the constraint c ≠ x the early depths are UNSAT only
        // after real solver work. A monolithic run at bound 5 therefore
        // ends on a session that never called the solver — if
        // `export_stats` kept only the last per-depth solver (the old
        // footgun), the aggregate would report zero effort.
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("tick_gate");
        let en = ts.add_input(&mut p, "en", 1);
        let x = ts.add_input(&mut p, "x", 4);
        let c = ts.add_register(&mut p, "c", 4, 0);
        let t = ts.add_register(&mut p, "t", 4, 0);
        let ce = p.var_expr(c);
        let te = p.var_expr(t);
        let one = p.lit(4, 1);
        let inc = p.add(ce, one);
        let ene = p.var_expr(en);
        let cnext = p.ite(ene, inc, ce);
        ts.set_next(c, cnext);
        let tnext = p.add(te, one);
        ts.set_next(t, tnext);
        let xe = p.var_expr(x);
        let c_eq_x = p.eq(ce, xe);
        let two = p.lit(4, 2);
        let t_lt_2 = p.ult(te, two);
        let bad = p.and(c_eq_x, t_lt_2);
        ts.add_bad("early_match", bad);
        let neq = p.not(c_eq_x);
        ts.add_constraint(neq);

        let mut mono = Bmc::new(
            &ts,
            BmcOptions::default()
                .with_max_bound(5)
                .with_incremental(false),
        );
        let result = mono.check(&ts, &mut p);
        assert!(result.is_clean());
        let stats = mono.stats();
        assert_eq!(
            stats.solver_calls, 2,
            "only depths 0 and 1 are not statically discharged"
        );
        assert!(
            stats.solver.propagations + stats.solver.decisions > 0,
            "absorbed stats must retain the early depths' effort even \
             though the final per-depth session never solved: {:?}",
            stats.solver
        );
    }

    #[test]
    fn monolithic_agrees_with_incremental() {
        for target in [2u64, 6] {
            let mut p1 = ExprPool::new();
            let ts1 = counter_system(&mut p1, target);
            let mut inc = Bmc::new(&ts1, BmcOptions::default().with_max_bound(10));
            let r1 = inc.check(&ts1, &mut p1);

            let mut p2 = ExprPool::new();
            let ts2 = counter_system(&mut p2, target);
            let mut mono = Bmc::new(
                &ts2,
                BmcOptions::default()
                    .with_max_bound(10)
                    .with_incremental(false),
            );
            let r2 = mono.check(&ts2, &mut p2);
            let d1 = r1.counterexample().map(|c| c.depth);
            let d2 = r2.counterexample().map(|c| c.depth);
            assert_eq!(d1, d2);
            assert_eq!(d1, Some(target as usize));
        }
    }

    #[test]
    fn dimacs_backend_agrees_with_cdcl() {
        for target in [3u64, 12] {
            let mut p1 = ExprPool::new();
            let ts1 = counter_system(&mut p1, target);
            let mut cdcl = Bmc::new(&ts1, BmcOptions::default().with_max_bound(8));
            let r1 = cdcl.check(&ts1, &mut p1);

            let mut p2 = ExprPool::new();
            let ts2 = counter_system(&mut p2, target);
            let mut logged: Bmc<aqed_sat::DimacsBackend> =
                Bmc::with_backend(&ts2, BmcOptions::default().with_max_bound(8));
            let r2 = logged.check(&ts2, &mut p2);

            assert_eq!(r1.is_clean(), r2.is_clean(), "target {target}");
            assert_eq!(
                r1.counterexample().map(|c| c.depth),
                r2.counterexample().map(|c| c.depth),
                "target {target}"
            );
            if let Some(cex) = r2.counterexample() {
                assert!(cex.replay(&ts2, &p2));
            }
        }
    }

    #[test]
    fn constraints_restrict_inputs() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("constrained");
        let en = ts.add_input(&mut p, "en", 1);
        let c = ts.add_register(&mut p, "c", 4, 0);
        let ce = p.var_expr(c);
        let one = p.lit(4, 1);
        let inc = p.add(ce, one);
        let ene = p.var_expr(en);
        let next = p.ite(ene, inc, ce);
        ts.set_next(c, next);
        // Environment never asserts enable → counter never moves.
        let nen = p.not(ene);
        ts.add_constraint(nen);
        let t = p.lit(4, 1);
        let hit = p.eq(ce, t);
        ts.add_bad("reach_1", hit);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(8));
        assert!(bmc.check(&ts, &mut p).is_clean());
    }

    #[test]
    fn uninitialised_state_found_in_initial_frame() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("free_init");
        let s = ts.add_state(&mut p, "s", 8); // no init: free power-on value
        let se = p.var_expr(s);
        ts.set_next(s, se); // holds forever
        let k = p.lit(8, 0x5A);
        let hit = p.eq(se, k);
        ts.add_bad("s_is_5a", hit);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(3));
        let result = bmc.check(&ts, &mut p);
        let cex = result.counterexample().expect("initial state can be 0x5A");
        assert_eq!(cex.depth, 0);
        assert_eq!(cex.initial_state[&s], Bv::new(8, 0x5A));
        assert!(cex.replay(&ts, &p));
    }

    #[test]
    fn multiple_bads_reports_first_reachable() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("multi");
        let c = ts.add_register(&mut p, "c", 4, 0);
        let ce = p.var_expr(c);
        let one = p.lit(4, 1);
        let next = p.add(ce, one);
        ts.set_next(c, next);
        let far = p.lit(4, 9);
        let near = p.lit(4, 2);
        let hit_far = p.eq(ce, far);
        let hit_near = p.eq(ce, near);
        ts.add_bad("far", hit_far);
        ts.add_bad("near", hit_near);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(15));
        let result = bmc.check(&ts, &mut p);
        let cex = result.counterexample().expect("finds near first");
        assert_eq!(cex.bad_name, "near");
        assert_eq!(cex.depth, 2);
    }

    #[test]
    fn select_bads_filters() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("multi");
        let c = ts.add_register(&mut p, "c", 4, 0);
        let ce = p.var_expr(c);
        let one = p.lit(4, 1);
        let next = p.add(ce, one);
        ts.set_next(c, next);
        let far = p.lit(4, 9);
        let near = p.lit(4, 2);
        let hit_far = p.eq(ce, far);
        let hit_near = p.eq(ce, near);
        ts.add_bad("far", hit_far);
        ts.add_bad("near", hit_near);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(15));
        bmc.select_bads(&ts, &["far"]);
        let result = bmc.check(&ts, &mut p);
        let cex = result.counterexample().expect("far reachable at 9");
        assert_eq!(cex.bad_name, "far");
        assert_eq!(cex.depth, 9);
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        // A factoring-style instance (x * y == semiprime with both
        // factors nontrivial) needs real search, so a 1-conflict budget
        // cannot finish it.
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("hard");
        let x = ts.add_input(&mut p, "x", 16);
        let y = ts.add_input(&mut p, "y", 16);
        let dummy = ts.add_register(&mut p, "dummy", 1, 0);
        let de = p.var_expr(dummy);
        ts.set_next(dummy, de);
        let xe = p.var_expr(x);
        let ye = p.var_expr(y);
        let prod = p.mul(xe, ye);
        let k = p.lit(16, 58_483); // 251 * 233
        let one = p.lit(16, 1);
        let hit = p.eq(prod, k);
        let xg = p.ugt(xe, one);
        let yg = p.ugt(ye, one);
        let hard = p.and_all([hit, xg, yg]);
        ts.add_bad("factorable", hard);
        let mut bmc = Bmc::new(
            &ts,
            BmcOptions::default()
                .with_max_bound(6)
                .with_conflict_budget(Some(1)),
        );
        let result = bmc.check(&ts, &mut p);
        assert!(matches!(
            result,
            BmcResult::Unknown {
                reason: StopReason::Conflicts,
                ..
            }
        ));
    }

    #[test]
    fn expired_deadline_yields_unknown_with_reason() {
        let mut p = ExprPool::new();
        let ts = counter_system(&mut p, 3);
        let mut bmc = Bmc::new(
            &ts,
            BmcOptions::default()
                .with_max_bound(10)
                .with_budget(Budget::unlimited().with_timeout(Duration::ZERO)),
        );
        match bmc.check(&ts, &mut p) {
            BmcResult::Unknown { bound, reason } => {
                assert_eq!(reason, StopReason::Deadline);
                assert_eq!(bound, 0);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_shared_budget_stops_check_under() {
        let mut p = ExprPool::new();
        let ts = counter_system(&mut p, 3);
        let armed = ArmedBudget::unlimited();
        armed.cancel();
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(10));
        match bmc.check_under(&ts, &mut p, &armed) {
            BmcResult::Unknown { reason, .. } => assert_eq!(reason, StopReason::Cancelled),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_does_not_change_verdicts() {
        for target in [3u64, 12] {
            let mut p1 = ExprPool::new();
            let ts1 = counter_system(&mut p1, target);
            let mut plain = Bmc::new(&ts1, BmcOptions::default().with_max_bound(8));
            let r1 = plain.check(&ts1, &mut p1);

            let mut p2 = ExprPool::new();
            let ts2 = counter_system(&mut p2, target);
            let mut governed = Bmc::new(
                &ts2,
                BmcOptions::default().with_max_bound(8).with_budget(
                    Budget::unlimited()
                        .with_timeout(Duration::from_secs(600))
                        .with_max_conflicts(u64::MAX / 2),
                ),
            );
            let r2 = governed.check(&ts2, &mut p2);
            assert_eq!(r1.is_clean(), r2.is_clean());
            assert_eq!(
                r1.counterexample().map(|c| c.depth),
                r2.counterexample().map(|c| c.depth)
            );
        }
    }

    #[test]
    #[should_panic(expected = "no bad properties")]
    fn rejects_system_without_bads() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("nothing");
        let s = ts.add_register(&mut p, "s", 1, 0);
        let se = p.var_expr(s);
        ts.set_next(s, se);
        let _ = Bmc::new(&ts, BmcOptions::default());
    }

    /// Two independent counters (distinct widths so targets differ); one
    /// bad property per counter.
    fn twin_counter_system(pool: &mut ExprPool) -> TransitionSystem {
        let mut ts = TransitionSystem::new("twins");
        let ena = ts.add_input(pool, "ena", 1);
        let enb = ts.add_input(pool, "enb", 1);
        let a = ts.add_register(pool, "a", 4, 0);
        let b = ts.add_register(pool, "b", 4, 0);
        for (reg, en) in [(a, ena), (b, enb)] {
            let re = pool.var_expr(reg);
            let one = pool.lit(4, 1);
            let inc = pool.add(re, one);
            let ene = pool.var_expr(en);
            let next = pool.ite(ene, inc, re);
            ts.set_next(reg, next);
        }
        let ae = pool.var_expr(a);
        let be = pool.var_expr(b);
        let two = pool.lit(4, 2);
        let four = pool.lit(4, 4);
        let a2 = pool.eq(ae, two);
        let b4 = pool.eq(be, four);
        ts.add_bad("a_hits_2", a2);
        ts.add_bad("b_hits_4", b4);
        ts
    }

    #[test]
    fn coi_slices_per_obligation_and_remaps_witness() {
        let mut p = ExprPool::new();
        let ts = twin_counter_system(&mut p);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(10));
        bmc.select_bad_indices(&ts, &[1]);
        let result = bmc.check(&ts, &mut p);
        let cex = result.counterexample().expect("b reaches 4");
        // The witness speaks the original system's language: original bad
        // index, all original inputs present in every frame.
        assert_eq!(cex.bad_index, 1);
        assert_eq!(cex.bad_name, "b_hits_4");
        assert_eq!(cex.depth, 4);
        let ena = ts.inputs()[0];
        for k in 0..=cex.depth {
            assert!(cex.trace.value(k, ena).is_some(), "ena padded at cycle {k}");
        }
        assert!(cex.replay(&ts, &p), "padded witness replays on original");
        // Half the design was sliced away.
        assert_eq!(bmc.stats().coi_latches_kept, 1);
        assert_eq!(bmc.stats().coi_latches_dropped, 1);
    }

    #[test]
    fn coi_off_matches_coi_on() {
        for idx in [0usize, 1] {
            let mut p1 = ExprPool::new();
            let ts1 = twin_counter_system(&mut p1);
            let mut on = Bmc::new(&ts1, BmcOptions::default().with_max_bound(10));
            on.select_bad_indices(&ts1, &[idx]);
            let r1 = on.check(&ts1, &mut p1);

            let mut p2 = ExprPool::new();
            let ts2 = twin_counter_system(&mut p2);
            let mut off = Bmc::new(
                &ts2,
                BmcOptions::default().with_max_bound(10).with_coi(false),
            );
            off.select_bad_indices(&ts2, &[idx]);
            let r2 = off.check(&ts2, &mut p2);

            assert_eq!(
                r1.counterexample().map(|c| (c.depth, c.bad_index)),
                r2.counterexample().map(|c| (c.depth, c.bad_index)),
                "bad {idx}"
            );
            assert_eq!(off.stats().coi_latches_dropped, 0);
        }
    }

    #[test]
    fn pipeline_disabled_still_finds_counterexamples() {
        let mut p = ExprPool::new();
        let ts = counter_system(&mut p, 3);
        let mut bmc = Bmc::new(
            &ts,
            BmcOptions::default()
                .with_max_bound(10)
                .with_coi(false)
                .with_preprocess(false),
        );
        let cex = bmc.check(&ts, &mut p);
        assert_eq!(cex.counterexample().map(|c| c.depth), Some(3));
    }

    #[test]
    fn inspect_hook_sees_live_backend() {
        let mut p = ExprPool::new();
        let ts = counter_system(&mut p, 3);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(10));
        let armed = ArmedBudget::unlimited();
        let mut seen_vars = 0usize;
        let result = bmc.check_inspecting(&ts, &mut p, &armed, |backend| {
            seen_vars = backend.num_vars();
        });
        assert!(result.counterexample().is_some());
        assert_eq!(seen_vars, bmc.stats().variables);
        assert!(seen_vars > 0);
    }

    #[test]
    fn cex_display_and_result_helpers() {
        let mut p = ExprPool::new();
        let ts = counter_system(&mut p, 1);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(4));
        let result = bmc.check(&ts, &mut p);
        let cex = result.counterexample().expect("found");
        let text = cex.to_string();
        assert!(text.contains("reach_target"));
        assert!(!result.is_clean());
    }

    /// Runs `counter_system(target)` at `bound` in warm mode and returns
    /// (result, stats, exported pack).
    fn warm_run(target: u64, bound: usize, warm: WarmStart) -> (BmcResult, BmcStats, LearntPack) {
        let mut p = ExprPool::new();
        let ts = counter_system(&mut p, target);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(bound));
        bmc.set_warm_start(warm);
        let result = bmc.check(&ts, &mut p);
        let pack = bmc.take_learnt_export().expect("warm mode exports a pack");
        (result, bmc.stats(), pack)
    }

    #[test]
    fn warm_start_fingerprints_are_deterministic_and_pack_reimports() {
        let (r1, _, pack1) = warm_run(12, 5, WarmStart::default());
        assert!(r1.is_clean());
        assert_eq!(pack1.frame_vars.len(), 6, "one fingerprint per frame");

        // A second run over the identical system reproduces the exact
        // frame fingerprints, so the whole pack validates and is
        // installed (nothing discarded).
        let imported = pack1.clauses.len() as u64;
        let warm = WarmStart {
            skip_to: None,
            pack: Some(pack1.clone()),
        };
        let (r2, stats, pack2) = warm_run(12, 5, warm);
        assert!(r2.is_clean());
        assert_eq!(pack2.frame_vars, pack1.frame_vars);
        assert_eq!(stats.solver.learnt_discarded, 0);
        assert_eq!(stats.solver.learnt_imported, imported);
    }

    #[test]
    fn warm_start_skips_reused_clean_prefix() {
        let (r1, cold, pack) = warm_run(12, 5, WarmStart::default());
        assert!(r1.is_clean());
        assert!(cold.solver_calls > 2);

        // Deeper re-run with frames 0..=5 covered by the reused verdict:
        // only the new frames are solved, and the verdict matches a cold
        // run at the same bound.
        let warm = WarmStart {
            skip_to: Some(5),
            pack: Some(pack),
        };
        let (r2, stats, _) = warm_run(12, 7, warm);
        let (r_cold, _, _) = warm_run(12, 7, WarmStart::default());
        assert_eq!(r2.is_clean(), r_cold.is_clean());
        assert!(r2.is_clean());
        assert_eq!(stats.solver_calls, 2, "only frames 6 and 7 are solved");
        assert_eq!(stats.verdicts_reused, 1);
    }

    #[test]
    fn warm_start_with_pack_preserves_counterexamples() {
        let (r1, _, pack) = warm_run(3, 10, WarmStart::default());
        let d1 = r1.counterexample().expect("bug").depth;
        let warm = WarmStart {
            skip_to: None,
            pack: Some(pack),
        };
        let (r2, stats, _) = warm_run(3, 10, warm);
        let cex = r2.counterexample().expect("warm run must find the bug");
        assert_eq!(cex.depth, d1);
        let mut p = ExprPool::new();
        let ts = counter_system(&mut p, 3);
        assert!(cex.replay(&ts, &p), "warm-found witness must replay");
        assert_eq!(stats.solver.learnt_discarded, 0);
    }

    #[test]
    fn warm_start_discards_mismatched_pack() {
        let (_, _, mut pack) = warm_run(12, 5, WarmStart::default());
        // Tamper with a mid-run fingerprint and make sure the pack has
        // something to discard even if the toy run learnt nothing.
        pack.frame_vars[2] += 1;
        pack.clauses.push(vec![0, 2]);
        pack.clauses.push(vec![1, 3, 5]);
        let expected = pack.clauses.len() as u64;
        let warm = WarmStart {
            skip_to: None,
            pack: Some(pack),
        };
        let (r, stats, _) = warm_run(12, 5, warm);
        assert!(r.is_clean(), "a discarded pack never changes the verdict");
        assert_eq!(stats.solver.learnt_imported, 0);
        assert_eq!(stats.solver.learnt_discarded, expected);
    }

    #[test]
    fn warm_start_discards_pack_from_a_shallower_run() {
        // The donor stopped at frame 3; a bound-2 re-run never reaches
        // the pack's final frame, so the pack is dropped, not injected.
        let (_, _, mut pack) = warm_run(12, 3, WarmStart::default());
        pack.clauses.push(vec![0, 2]);
        let expected = pack.clauses.len() as u64;
        let warm = WarmStart {
            skip_to: None,
            pack: Some(pack),
        };
        let (r, stats, _) = warm_run(12, 2, warm);
        assert!(r.is_clean());
        assert_eq!(stats.solver.learnt_imported, 0);
        assert_eq!(stats.solver.learnt_discarded, expected);
    }
}
