//! k-induction: unbounded proofs on top of the bounded engine.
//!
//! BMC alone only ever certifies "no violation within `k` transitions".
//! k-induction closes the gap for many properties: if
//!
//! 1. **base**: no violation is reachable within `k` steps from the
//!    initial states, and
//! 2. **step**: every path of `k+1` *arbitrary* (not necessarily
//!    reachable) states satisfying the constraints, with the property
//!    holding in the first `k` states, also satisfies it in state `k+1`,
//!
//! then the property holds in *all* reachable states. The step check
//! optionally adds simple-path (state-distinctness) constraints, which
//! makes the method complete for finite systems as `k` grows.
//!
//! This extends the paper's A-QED flow from bug hunting to outright
//! proof for the designs whose monitors are inductive (the scalability
//! direction listed in the paper's Sec. VII).

use crate::{Bmc, BmcOptions, BmcResult};
use aqed_bitblast::BitBlaster;
use aqed_expr::{ExprPool, ExprRef, VarId, VarKind};
use aqed_sat::{ArmedBudget, Budget, Lit, SatBackend, SolveResult, Solver};
use aqed_tsys::TransitionSystem;
use std::collections::HashMap;

/// Outcome of a k-induction proof attempt.
#[derive(Debug, Clone)]
pub enum InductionResult {
    /// The property holds in every reachable state: base and step both
    /// succeeded at the returned depth.
    Proved {
        /// Induction depth at which the step succeeded.
        k: usize,
    },
    /// A real counterexample was found by the base (BMC) check.
    Counterexample(crate::Counterexample),
    /// Neither proved nor refuted within `max_k` (the property may hold
    /// but is not k-inductive at this depth, or budgets ran out).
    Unknown {
        /// The deepest induction depth attempted.
        max_k: usize,
    },
}

impl InductionResult {
    /// Whether the property was proved for all reachable states.
    #[must_use]
    pub fn is_proved(&self) -> bool {
        matches!(self, InductionResult::Proved { .. })
    }
}

/// Configuration for [`prove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InductionOptions {
    /// Maximum induction depth to attempt.
    pub max_k: usize,
    /// Add pairwise state-distinctness (simple-path) constraints to the
    /// step case. Strengthens the method at quadratic encoding cost.
    pub simple_path: bool,
    /// Optional conflict budget per SAT query.
    pub conflict_budget: Option<u64>,
    /// Resource budget (deadline, effort caps) shared by the whole
    /// proof attempt — base checks and step cases alike.
    pub budget: Budget,
}

impl Default for InductionOptions {
    fn default() -> Self {
        InductionOptions {
            max_k: 10,
            simple_path: true,
            conflict_budget: None,
            budget: Budget::unlimited(),
        }
    }
}

/// Attempts to prove every bad property of `ts` unreachable using
/// k-induction, increasing `k` from 0 to `options.max_k`.
///
/// # Panics
///
/// Panics if the system fails validation or has no bad properties.
#[must_use]
pub fn prove(
    ts: &TransitionSystem,
    pool: &mut ExprPool,
    options: &InductionOptions,
) -> InductionResult {
    prove_with::<Solver>(ts, pool, options)
}

/// [`prove`] generic over the SAT backend: base checks run through
/// [`Bmc::with_backend`] and the step case builds its own `B::default()`
/// instance per depth.
///
/// # Panics
///
/// Panics if the system fails validation or has no bad properties.
#[must_use]
pub fn prove_with<B: SatBackend + Default>(
    ts: &TransitionSystem,
    pool: &mut ExprPool,
    options: &InductionOptions,
) -> InductionResult {
    ts.validate(pool).expect("system must be well-formed");
    assert!(!ts.bads().is_empty(), "nothing to prove");
    // One armed budget for the whole attempt: the deadline spans every
    // base check and step case rather than restarting per depth.
    let armed = ArmedBudget::arm(&options.budget);
    for k in 0..=options.max_k {
        if armed.poll().is_some() {
            return InductionResult::Unknown { max_k: k };
        }
        // Base: BMC up to depth k.
        let mut bmc: Bmc<B> = Bmc::with_backend(
            ts,
            BmcOptions::default()
                .with_max_bound(k)
                .with_conflict_budget(options.conflict_budget),
        );
        match bmc.check_under(ts, pool, &armed) {
            BmcResult::Counterexample(cex) => return InductionResult::Counterexample(cex),
            BmcResult::Unknown { .. } => return InductionResult::Unknown { max_k: k },
            BmcResult::NoCounterexample { .. } => {}
        }
        // Step: arbitrary k+1-state path, property holds in first k
        // states, violated in the last.
        match step_case::<B>(ts, pool, k, options, &armed) {
            StepOutcome::Holds => return InductionResult::Proved { k },
            StepOutcome::Fails => {}
            // A budgeted-out step cannot distinguish "not inductive yet"
            // from "inductive but unproven" — stop instead of burning the
            // remaining budget on ever-deeper step cases.
            StepOutcome::Unknown => return InductionResult::Unknown { max_k: k },
        }
    }
    InductionResult::Unknown {
        max_k: options.max_k,
    }
}

/// Result of one induction step query.
enum StepOutcome {
    /// The step case is valid (query UNSAT): the property is k-inductive.
    Holds,
    /// A (possibly spurious) step counterexample exists; try deeper k.
    Fails,
    /// A resource limit stopped the query.
    Unknown,
}

/// Returns true when the induction step at depth `k` is valid (the
/// "property can be violated after k clean arbitrary states" query is
/// UNSAT).
fn step_case<B: SatBackend + Default>(
    ts: &TransitionSystem,
    pool: &mut ExprPool,
    k: usize,
    options: &InductionOptions,
    armed: &ArmedBudget,
) -> StepOutcome {
    let mut solver = B::default();
    let mut blaster = BitBlaster::new();
    solver.set_conflict_budget(options.conflict_budget);
    solver.set_budget(armed.clone());

    // Frame 0 state: completely free.
    let mut state_exprs: HashMap<VarId, ExprRef> = HashMap::new();
    for s in ts.states() {
        let w = pool.var_width(s.var);
        let name = format!("{}@step0", pool.var_name(s.var));
        let fv = pool.var(name, w, VarKind::Input);
        state_exprs.insert(s.var, pool.var_expr(fv));
    }

    let mut frame_states: Vec<Vec<ExprRef>> = Vec::new();
    let mut all_bads_clean: Vec<Lit> = Vec::new();
    let mut last_bad_lits: Vec<Lit> = Vec::new();

    for frame in 0..=k + 1 {
        // Record this frame's state vector (for simple-path).
        let state_vec: Vec<ExprRef> = ts.states().iter().map(|s| state_exprs[&s.var]).collect();
        frame_states.push(state_vec);

        // Fresh inputs.
        let mut map = state_exprs.clone();
        for &iv in ts.inputs() {
            let w = pool.var_width(iv);
            let name = format!("{}@step{frame}", pool.var_name(iv));
            let fv = pool.var(name, w, VarKind::Input);
            map.insert(iv, pool.var_expr(fv));
        }
        // Constraints hold in every frame.
        for &c in ts.constraints() {
            let ce = pool.substitute(c, &map);
            blaster.assert_true(pool, ce, &mut solver);
        }
        // Bads.
        let frame_bads: Vec<ExprRef> = ts
            .bads()
            .iter()
            .map(|&(_, b)| pool.substitute(b, &map))
            .collect();
        if frame <= k {
            // Property assumed to hold: all bads false.
            for b in frame_bads {
                let l = blaster.literal(pool, b, &mut solver);
                all_bads_clean.push(!l);
            }
        } else {
            // Final frame: some bad fires.
            for b in frame_bads {
                let l = blaster.literal(pool, b, &mut solver);
                last_bad_lits.push(l);
            }
        }
        if frame <= k {
            // Advance.
            let next_roots: Vec<ExprRef> = ts
                .states()
                .iter()
                .map(|s| s.next.expect("validated"))
                .collect();
            let next_exprs = pool.substitute_all(&next_roots, &map);
            for (s, e) in ts.states().iter().zip(next_exprs) {
                state_exprs.insert(s.var, e);
            }
        }
    }

    // Assume cleanliness of the first k+1 frames.
    for l in &all_bads_clean {
        solver.add_clause(&[*l]);
    }
    // Simple-path: all state vectors pairwise distinct.
    if options.simple_path {
        for i in 0..frame_states.len() {
            for j in (i + 1)..frame_states.len() {
                // distinct(i, j): OR over state elements of inequality.
                let mut any_diff: Vec<Lit> = Vec::new();
                for (a, b) in frame_states[i].iter().zip(&frame_states[j]) {
                    let ne = pool.ne(*a, *b);
                    any_diff.push(blaster.literal(pool, ne, &mut solver));
                }
                solver.add_clause(&any_diff);
            }
        }
    }
    // Violation in the final frame.
    solver.add_clause(&last_bad_lits);

    match solver.solve_under(&[]) {
        SolveResult::Unsat => StepOutcome::Holds,
        SolveResult::Sat => StepOutcome::Fails,
        SolveResult::Unknown => StepOutcome::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Saturating counter: counts up to 10 and stays; bad if it exceeds
    /// 12 — unreachable, and provable by induction with simple-path.
    fn saturating_counter(pool: &mut ExprPool) -> TransitionSystem {
        let mut ts = TransitionSystem::new("sat_counter");
        let en = ts.add_input(pool, "en", 1);
        let c = ts.add_register(pool, "c", 4, 0);
        let ce = pool.var_expr(c);
        let ten = pool.lit(4, 10);
        let at_max = pool.uge(ce, ten);
        let one = pool.lit(4, 1);
        let inc = pool.add(ce, one);
        let bump = pool.ite(at_max, ce, inc);
        let ene = pool.var_expr(en);
        let next = pool.ite(ene, bump, ce);
        ts.set_next(c, next);
        let twelve = pool.lit(4, 12);
        let bad = pool.ugt(ce, twelve);
        ts.add_bad("exceeds_12", bad);
        ts
    }

    #[test]
    fn proves_saturating_counter_safe() {
        let mut pool = ExprPool::new();
        let ts = saturating_counter(&mut pool);
        let result = prove(&ts, &mut pool, &InductionOptions::default());
        assert!(result.is_proved(), "{result:?}");
    }

    #[test]
    fn refutes_with_real_counterexample() {
        let mut pool = ExprPool::new();
        let mut ts = TransitionSystem::new("reaches");
        let c = ts.add_register(&mut pool, "c", 4, 0);
        let ce = pool.var_expr(c);
        let one = pool.lit(4, 1);
        let next = pool.add(ce, one);
        ts.set_next(c, next);
        let five = pool.lit(4, 5);
        let bad = pool.eq(ce, five);
        ts.add_bad("reaches_5", bad);
        let result = prove(&ts, &mut pool, &InductionOptions::default());
        match result {
            InductionResult::Counterexample(cex) => {
                assert_eq!(cex.depth, 5);
                assert!(cex.replay(&ts, &pool));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn non_inductive_at_zero_needs_deeper_k() {
        // Two-phase toggler: parity register and a counter that only
        // moves every other cycle; bad needs the phase relation, which is
        // not 0-inductive but provable at small k with simple-path.
        let mut pool = ExprPool::new();
        let mut ts = TransitionSystem::new("toggler");
        let phase = ts.add_register(&mut pool, "phase", 1, 0);
        let c = ts.add_register(&mut pool, "c", 2, 0);
        let pe = pool.var_expr(phase);
        let np = pool.not(pe);
        ts.set_next(phase, np);
        let ce = pool.var_expr(c);
        let one = pool.lit(2, 1);
        let inc = pool.add(ce, one);
        let wrapped = {
            let two = pool.lit(2, 2);
            let at2 = pool.uge(ce, two);
            let zero = pool.lit(2, 0);
            pool.ite(at2, zero, inc)
        };
        let next_c = pool.ite(pe, wrapped, ce);
        ts.set_next(c, next_c);
        let three = pool.lit(2, 3);
        let bad = pool.eq(ce, three);
        ts.add_bad("c_is_3", bad);
        let result = prove(&ts, &mut pool, &InductionOptions::default());
        match result {
            InductionResult::Proved { k } => assert!(k <= 6, "k = {k}"),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn unknown_when_not_inductive_within_budget() {
        // A counter that wraps through the full 4-bit space with the bad
        // at an unreachable odd... actually make the bad reachable only
        // from unreachable states: c increments by 2 from 0, bad at odd
        // value 7. Without simple-path this is never k-inductive (the
        // arbitrary start state can be odd); with simple-path it proves
        // once paths exhaust. Use simple_path = false to get Unknown.
        let mut pool = ExprPool::new();
        let mut ts = TransitionSystem::new("even_counter");
        let c = ts.add_register(&mut pool, "c", 4, 0);
        let ce = pool.var_expr(c);
        let two = pool.lit(4, 2);
        let next = pool.add(ce, two);
        ts.set_next(c, next);
        let seven = pool.lit(4, 7);
        let bad = pool.eq(ce, seven);
        ts.add_bad("odd_reached", bad);
        let opts = InductionOptions {
            max_k: 3,
            simple_path: false,
            ..InductionOptions::default()
        };
        let result = prove(&ts, &mut pool, &opts);
        assert!(
            matches!(result, InductionResult::Unknown { .. }),
            "{result:?}"
        );
        // With simple-path it proves (even states only, paths of length
        // 8 exhaust the even subspace).
        let opts = InductionOptions {
            max_k: 10,
            simple_path: true,
            ..InductionOptions::default()
        };
        let result = prove(&ts, &mut pool, &opts);
        assert!(result.is_proved(), "{result:?}");
    }

    #[test]
    fn expired_deadline_stops_proof_attempt() {
        let mut pool = ExprPool::new();
        let ts = saturating_counter(&mut pool);
        let opts = InductionOptions {
            budget: Budget::unlimited().with_timeout(std::time::Duration::ZERO),
            ..InductionOptions::default()
        };
        let result = prove(&ts, &mut pool, &opts);
        assert!(
            matches!(result, InductionResult::Unknown { .. }),
            "{result:?}"
        );
    }
}
