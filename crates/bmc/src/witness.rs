//! BTOR2 witness output for counterexamples.
//!
//! Pairs with [`aqed_tsys::to_btor2`]: a counterexample found by this
//! engine can be written in the BTOR2 witness format understood by
//! `btorsim` and friends, keyed by the same input/state declaration
//! order the exporter emits.

use crate::Counterexample;
use aqed_expr::ExprPool;
use aqed_tsys::TransitionSystem;
use std::fmt::Write as _;

/// Renders the counterexample in BTOR2 witness format.
///
/// The property index refers to the system's bad-property order; input
/// and state indices refer to declaration order (matching
/// [`aqed_tsys::to_btor2`]'s output).
#[must_use]
pub fn to_btor2_witness(cex: &Counterexample, ts: &TransitionSystem, pool: &ExprPool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "sat");
    let _ = writeln!(out, "b{}", cex.bad_index);
    // Initial state assignments (only registers the engine chose freely).
    let _ = writeln!(out, "#0");
    for (idx, st) in ts.states().iter().enumerate() {
        if let Some(v) = cex.initial_state.get(&st.var) {
            let w = pool.var_width(st.var);
            let _ = writeln!(
                out,
                "{idx} {:0width$b} {}#0",
                v.to_u64(),
                pool.var_name(st.var),
                width = w as usize
            );
        }
    }
    // Inputs per frame.
    for frame in 0..cex.trace.len() {
        let _ = writeln!(out, "@{frame}");
        for (idx, &iv) in ts.inputs().iter().enumerate() {
            if let Some(v) = cex.trace.value(frame, iv) {
                let w = pool.var_width(iv);
                let _ = writeln!(
                    out,
                    "{idx} {:0width$b} {}@{frame}",
                    v.to_u64(),
                    pool.var_name(iv),
                    width = w as usize
                );
            }
        }
    }
    out.push_str(".\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bmc, BmcOptions, BmcResult};

    #[test]
    fn witness_has_expected_structure() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("w");
        let en = ts.add_input(&mut p, "en", 1);
        let c = ts.add_register(&mut p, "c", 4, 0);
        let free = ts.add_state(&mut p, "free", 2); // uninitialised
        let fe = p.var_expr(free);
        ts.set_next(free, fe);
        let ce = p.var_expr(c);
        let one = p.lit(4, 1);
        let inc = p.add(ce, one);
        let ene = p.var_expr(en);
        let next = p.ite(ene, inc, ce);
        ts.set_next(c, next);
        let three = p.lit(4, 3);
        let hit = p.eq(ce, three);
        ts.add_bad("reach3", hit);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(6));
        let cex = match bmc.check(&ts, &mut p) {
            BmcResult::Counterexample(c) => c,
            other => panic!("{other:?}"),
        };
        let w = to_btor2_witness(&cex, &ts, &p);
        assert!(w.starts_with("sat\nb0\n#0\n"));
        assert!(w.contains("@0"));
        assert!(w.contains("en@0"));
        assert!(w.contains("free#0"), "free initial state recorded: {w}");
        assert!(w.trim_end().ends_with('.'));
        // One @frame section per trace cycle.
        let frames = w.lines().filter(|l| l.starts_with('@')).count();
        assert_eq!(frames, cex.trace.len());
    }
}
