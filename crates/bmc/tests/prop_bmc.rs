//! Property tests of the BMC engine against exhaustive concrete search:
//! on small random counter machines, BMC's verdict and witness depth must
//! equal the simulator's breadth-first ground truth.

use aqed_bitvec::Bv;
use aqed_bmc::{Bmc, BmcOptions, BmcResult};
use aqed_expr::ExprPool;
use aqed_tsys::{Simulator, TransitionSystem};
use proptest::prelude::*;

/// Builds a 4-bit machine: s' = s + (en ? step : 0) ^ (inv ? mask : 0),
/// bad when s == target.
fn machine(
    pool: &mut ExprPool,
    step: u64,
    mask: u64,
    target: u64,
) -> (TransitionSystem, aqed_expr::VarId, aqed_expr::VarId) {
    let mut ts = TransitionSystem::new("m");
    let en = ts.add_input(pool, "en", 1);
    let inv = ts.add_input(pool, "inv", 1);
    let s = ts.add_register(pool, "s", 4, 0);
    let se = pool.var_expr(s);
    let ene = pool.var_expr(en);
    let inve = pool.var_expr(inv);
    let stepl = pool.lit(4, step);
    let zero = pool.lit(4, 0);
    let add = pool.ite(ene, stepl, zero);
    let summed = pool.add(se, add);
    let maskl = pool.lit(4, mask);
    let xored = pool.xor(summed, maskl);
    let next = pool.ite(inve, xored, summed);
    ts.set_next(s, next);
    let tl = pool.lit(4, target);
    let hit = pool.eq(se, tl);
    ts.add_bad("hit", hit);
    (ts, en, inv)
}

/// Ground truth: BFS over the 16-state × 4-input machine.
fn bfs_depth(step: u64, mask: u64, target: u64, max_depth: usize) -> Option<usize> {
    let mut reachable = vec![false; 16];
    reachable[0] = true;
    for depth in 0..=max_depth {
        if reachable[target as usize] {
            return Some(depth);
        }
        let mut next = vec![false; 16];
        for (s, &r) in reachable.iter().enumerate() {
            if !r {
                continue;
            }
            for en in [0u64, 1] {
                for inv in [0u64, 1] {
                    let mut v = (s as u64 + en * step) & 0xF;
                    if inv == 1 {
                        v ^= mask;
                    }
                    next[v as usize] = true;
                }
            }
        }
        reachable = next;
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bmc_matches_bfs(step in 0u64..16, mask in 0u64..16, target in 0u64..16) {
        const MAX: usize = 8;
        let truth = bfs_depth(step, mask, target, MAX);
        let mut pool = ExprPool::new();
        let (ts, _, _) = machine(&mut pool, step, mask, target);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(MAX));
        match bmc.check(&ts, &mut pool) {
            BmcResult::Counterexample(cex) => {
                prop_assert_eq!(Some(cex.depth), truth, "witness depth must be minimal");
                prop_assert!(cex.replay(&ts, &pool), "witness must replay");
            }
            BmcResult::NoCounterexample { bound } => {
                prop_assert_eq!(bound, MAX);
                prop_assert_eq!(truth, None, "BMC clean but BFS reaches target");
            }
            BmcResult::Unknown { .. } => prop_assert!(false, "no budget set"),
        }
    }

    /// The simplification pipeline (COI slicing + CNF preprocessing) must
    /// never change a BMC verdict. The machine carries a decoy register
    /// and decoy input outside the bad's cone so COI has something real
    /// to drop, and any counterexample must still replay on the
    /// *original* (unsliced) system.
    #[test]
    fn pipeline_never_changes_verdict(
        step in 0u64..16,
        mask in 0u64..16,
        target in 0u64..16,
        decoy_step in 1u64..16,
    ) {
        const MAX: usize = 8;
        let mut pool = ExprPool::new();
        let (mut ts, _, _) = machine(&mut pool, step, mask, target);
        // Decoy state: d' = d + (dEn ? decoy_step : 0), referenced by no bad.
        let den = ts.add_input(&mut pool, "dEn", 1);
        let d = ts.add_register(&mut pool, "d", 4, 0);
        let de = pool.var_expr(d);
        let dene = pool.var_expr(den);
        let stepl = pool.lit(4, decoy_step);
        let zero = pool.lit(4, 0);
        let add = pool.ite(dene, stepl, zero);
        let dnext = pool.add(de, add);
        ts.set_next(d, dnext);

        let run = |ts: &TransitionSystem, pool: &mut ExprPool, coi: bool, pre: bool| {
            let opts = BmcOptions::default()
                .with_max_bound(MAX)
                .with_coi(coi)
                .with_preprocess(pre);
            let mut bmc = Bmc::new(ts, opts);
            bmc.check(ts, pool)
        };
        let on = run(&ts, &mut pool, true, true);
        let off = run(&ts, &mut pool, false, false);
        match (&on, &off) {
            (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                prop_assert_eq!(a.depth, b.depth, "witness depth must match");
                prop_assert!(a.replay(&ts, &pool), "pipeline witness must replay on the original system");
            }
            (BmcResult::NoCounterexample { bound: a }, BmcResult::NoCounterexample { bound: b }) => {
                prop_assert_eq!(a, b);
            }
            other => prop_assert!(false, "verdicts diverge: {:?}", other),
        }
    }

    #[test]
    fn cex_replay_follows_trace(step in 1u64..16, target in 1u64..16) {
        let mut pool = ExprPool::new();
        let (ts, _, _) = machine(&mut pool, step, 0, target);
        let mut bmc = Bmc::new(&ts, BmcOptions::default().with_max_bound(10));
        if let BmcResult::Counterexample(cex) = bmc.check(&ts, &mut pool) {
            // Manually replay and confirm the final state is the target.
            let mut sim = Simulator::with_state(&ts, &pool, &cex.initial_state);
            let s = ts.states()[0].var;
            for k in 0..cex.depth {
                let inputs: Vec<_> = cex.trace.frame(k).to_vec();
                sim.step_with(&ts, &pool, &inputs);
            }
            prop_assert_eq!(sim.state(s), Bv::new(4, target));
        }
    }
}
