//! Property-based tests for `Bv`: algebraic laws and consistency with
//! native `u64` arithmetic.

use aqed_bitvec::Bv;
use proptest::prelude::*;

fn bv_pair() -> impl Strategy<Value = (Bv, Bv)> {
    (1u32..=64, any::<u64>(), any::<u64>()).prop_map(|(w, a, b)| (Bv::new(w, a), Bv::new(w, b)))
}

fn bv_one() -> impl Strategy<Value = Bv> {
    (1u32..=64, any::<u64>()).prop_map(|(w, a)| Bv::new(w, a))
}

proptest! {
    #[test]
    fn add_commutes((a, b) in bv_pair()) {
        prop_assert_eq!(a.add(b), b.add(a));
    }

    #[test]
    fn add_sub_inverse((a, b) in bv_pair()) {
        prop_assert_eq!(a.add(b).sub(b), a);
        prop_assert_eq!(a.sub(b).add(b), a);
    }

    #[test]
    fn neg_is_sub_from_zero(a in bv_one()) {
        prop_assert_eq!(a.neg(), Bv::zero(a.width()).sub(a));
        prop_assert_eq!(a.neg().neg(), a);
    }

    #[test]
    fn mul_matches_native((a, b) in bv_pair()) {
        let expect = a.to_u64().wrapping_mul(b.to_u64()) & Bv::mask(a.width());
        prop_assert_eq!(a.mul(b).to_u64(), expect);
    }

    #[test]
    fn div_rem_reconstruct((a, b) in bv_pair()) {
        prop_assume!(!b.is_zero());
        let q = a.udiv(b);
        let r = a.urem(b);
        prop_assert!(r.ult(b));
        prop_assert_eq!(q.mul(b).add(r), a);
    }

    #[test]
    fn demorgan((a, b) in bv_pair()) {
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    #[test]
    fn xor_self_is_zero(a in bv_one()) {
        prop_assert_eq!(a.xor(a), Bv::zero(a.width()));
        prop_assert_eq!(a.xor(Bv::zero(a.width())), a);
    }

    #[test]
    fn shift_composition(a in bv_one(), s1 in 0u64..70, s2 in 0u64..70) {
        // shl(s1) then shl(s2) equals a single shift by s1+s2 (zero once
        // the total reaches the width), for any representable amounts.
        let w = u64::from(a.width());
        let m = Bv::mask(a.width());
        let s1v = s1.min(m);
        let s2v = s2.min(m);
        let composed = a.shl(Bv::new(a.width(), s1v)).shl(Bv::new(a.width(), s2v));
        let total = s1v.saturating_add(s2v);
        let expect = if total >= w { 0 } else { (a.to_u64() << total) & m };
        prop_assert_eq!(composed.to_u64(), expect);
    }

    #[test]
    fn lshr_matches_native(a in bv_one(), s in 0u64..80) {
        let w = a.width();
        let got = a.lshr(Bv::new(w, s.min(Bv::mask(w))));
        let amt = s.min(Bv::mask(w));
        let expect = if amt >= u64::from(w) { 0 } else { a.to_u64() >> amt };
        prop_assert_eq!(got.to_u64(), expect);
    }

    #[test]
    fn rotate_roundtrip(a in bv_one(), s in 0u64..200) {
        let w = a.width();
        let amt = Bv::new(w, s & Bv::mask(w));
        prop_assert_eq!(a.rol(amt).ror(amt), a);
        prop_assert_eq!(a.rol(amt).count_ones(), a.count_ones());
    }

    #[test]
    fn unsigned_order_total((a, b) in bv_pair()) {
        let lt = a.ult(b);
        let gt = b.ult(a);
        let eq = a == b;
        prop_assert_eq!(u32::from(lt) + u32::from(gt) + u32::from(eq), 1);
    }

    #[test]
    fn signed_matches_i64((a, b) in bv_pair()) {
        prop_assert_eq!(a.slt(b), a.to_i64() < b.to_i64());
        prop_assert_eq!(a.sle(b), a.to_i64() <= b.to_i64());
    }

    #[test]
    fn concat_extract_inverse(hi in (1u32..=32, any::<u64>()), lo in (1u32..=32, any::<u64>())) {
        let h = Bv::new(hi.0, hi.1);
        let l = Bv::new(lo.0, lo.1);
        let c = h.concat(l);
        prop_assert_eq!(c.extract(c.width() - 1, l.width()), h);
        prop_assert_eq!(c.extract(l.width() - 1, 0), l);
    }

    #[test]
    fn sext_preserves_signed_value(a in bv_one(), extra in 0u32..32) {
        let nw = (a.width() + extra).min(64);
        prop_assert_eq!(a.sext(nw).to_i64(), a.to_i64());
        prop_assert_eq!(a.zext(nw).to_u64(), a.to_u64());
    }

    #[test]
    fn to_i64_roundtrip(a in bv_one()) {
        prop_assert_eq!(Bv::new(a.width(), a.to_i64() as u64), a);
    }
}
