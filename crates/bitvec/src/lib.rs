//! Fixed-width bit-vector values with hardware wrap-around semantics.
//!
//! [`Bv`] models the value domain of synchronous RTL: a two's-complement
//! bit-vector of a fixed width between 1 and 64 bits. All arithmetic wraps
//! modulo `2^width`, exactly as hardware adders and multipliers do, and all
//! operations keep the invariant that bits above `width` are zero.
//!
//! This crate is the concrete counterpart of the symbolic word-level IR in
//! `aqed-expr`: the expression evaluator, the transition-system simulator and
//! the bit-blaster's constant folder all compute in `Bv`.
//!
//! # Examples
//!
//! ```
//! use aqed_bitvec::Bv;
//!
//! let a = Bv::new(8, 0xF0);
//! let b = Bv::new(8, 0x20);
//! assert_eq!(a.add(b), Bv::new(8, 0x10)); // wraps modulo 2^8
//! assert_eq!(a.concat(b), Bv::new(16, 0xF020));
//! assert!(b.ult(a));
//! assert!(a.slt(b)); // 0xF0 is negative as a signed 8-bit value
//! ```

mod ops;

pub use ops::DivByZero;

use std::fmt;

/// A fixed-width bit-vector value (1 to 64 bits) with wrap-around semantics.
///
/// The representation stores the value in the low `width` bits of a `u64`;
/// higher bits are always zero. Construction through [`Bv::new`] masks the
/// supplied value, so every `Bv` is canonical and `==` is value equality.
///
/// # Examples
///
/// ```
/// use aqed_bitvec::Bv;
/// let x = Bv::new(4, 0x1F); // masked to 4 bits
/// assert_eq!(x.to_u64(), 0xF);
/// assert_eq!(x.width(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bv {
    width: u32,
    val: u64,
}

impl Bv {
    /// Maximum supported width in bits.
    pub const MAX_WIDTH: u32 = 64;

    /// Creates a bit-vector of `width` bits holding `val` truncated to that
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than [`Bv::MAX_WIDTH`].
    ///
    /// # Examples
    ///
    /// ```
    /// use aqed_bitvec::Bv;
    /// assert_eq!(Bv::new(3, 9).to_u64(), 1); // 9 mod 8
    /// ```
    #[inline]
    #[must_use]
    pub fn new(width: u32, val: u64) -> Self {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "bit-vector width must be in 1..=64, got {width}"
        );
        Self {
            width,
            val: val & Self::mask(width),
        }
    }

    /// The all-zeros vector of the given width.
    #[inline]
    #[must_use]
    pub fn zero(width: u32) -> Self {
        Self::new(width, 0)
    }

    /// The vector of the given width with value 1.
    #[inline]
    #[must_use]
    pub fn one(width: u32) -> Self {
        Self::new(width, 1)
    }

    /// The all-ones vector of the given width (i.e. `-1` as signed).
    #[inline]
    #[must_use]
    pub fn ones(width: u32) -> Self {
        Self::new(width, u64::MAX)
    }

    /// A 1-bit vector from a boolean: `true` → `1`, `false` → `0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqed_bitvec::Bv;
    /// assert_eq!(Bv::from_bool(true), Bv::one(1));
    /// ```
    #[inline]
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        Self::new(1, u64::from(b))
    }

    /// The most negative signed value of the given width (`100…0`).
    #[inline]
    #[must_use]
    pub fn min_signed(width: u32) -> Self {
        Self::new(width, 1u64 << (width - 1))
    }

    /// The most positive signed value of the given width (`011…1`).
    #[inline]
    #[must_use]
    pub fn max_signed(width: u32) -> Self {
        Self::new(width, Self::mask(width) >> 1)
    }

    /// The bit mask with the low `width` bits set.
    #[inline]
    #[must_use]
    pub fn mask(width: u32) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// Width of the vector in bits.
    #[inline]
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The value zero-extended to `u64`.
    #[inline]
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        self.val
    }

    /// The value interpreted as a two's-complement signed integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqed_bitvec::Bv;
    /// assert_eq!(Bv::new(4, 0xF).to_i64(), -1);
    /// assert_eq!(Bv::new(4, 0x7).to_i64(), 7);
    /// ```
    #[inline]
    #[must_use]
    pub fn to_i64(&self) -> i64 {
        let shift = 64 - self.width;
        ((self.val << shift) as i64) >> shift
    }

    /// Whether every bit is zero.
    #[inline]
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.val == 0
    }

    /// Whether every bit is one.
    #[inline]
    #[must_use]
    pub fn is_ones(&self) -> bool {
        self.val == Self::mask(self.width)
    }

    /// Whether this is a 1-bit vector holding 1 (hardware "true").
    #[inline]
    #[must_use]
    pub fn is_true(&self) -> bool {
        self.width == 1 && self.val == 1
    }

    /// The most significant (sign) bit.
    #[inline]
    #[must_use]
    pub fn msb(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// The bit at position `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[inline]
    #[must_use]
    pub fn bit(&self, i: u32) -> bool {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        (self.val >> i) & 1 == 1
    }

    /// Returns a copy with bit `i` set to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn with_bit(&self, i: u32, b: bool) -> Self {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let cleared = self.val & !(1u64 << i);
        Self {
            width: self.width,
            val: cleared | (u64::from(b) << i),
        }
    }

    /// Number of one bits.
    #[inline]
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.val.count_ones()
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bv({}'h{:x})", self.width, self.val)
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.val)
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.val, f)
    }
}

impl fmt::UpperHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.val, f)
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.val, f)
    }
}

impl fmt::Octal for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.val, f)
    }
}

impl From<bool> for Bv {
    fn from(b: bool) -> Self {
        Self::from_bool(b)
    }
}

impl From<u8> for Bv {
    fn from(v: u8) -> Self {
        Self::new(8, u64::from(v))
    }
}

impl From<u16> for Bv {
    fn from(v: u16) -> Self {
        Self::new(16, u64::from(v))
    }
}

impl From<u32> for Bv {
    fn from(v: u32) -> Self {
        Self::new(32, u64::from(v))
    }
}

impl From<u64> for Bv {
    fn from(v: u64) -> Self {
        Self::new(64, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_masks_value() {
        assert_eq!(Bv::new(4, 0xFF).to_u64(), 0xF);
        assert_eq!(Bv::new(64, u64::MAX).to_u64(), u64::MAX);
        assert_eq!(Bv::new(1, 2).to_u64(), 0);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_rejected() {
        let _ = Bv::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn overwide_rejected() {
        let _ = Bv::new(65, 0);
    }

    #[test]
    fn constructors() {
        assert_eq!(Bv::zero(8).to_u64(), 0);
        assert_eq!(Bv::one(8).to_u64(), 1);
        assert_eq!(Bv::ones(8).to_u64(), 0xFF);
        assert_eq!(Bv::min_signed(8).to_u64(), 0x80);
        assert_eq!(Bv::max_signed(8).to_u64(), 0x7F);
        assert_eq!(Bv::from_bool(true), Bv::new(1, 1));
        assert_eq!(Bv::from_bool(false), Bv::new(1, 0));
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(Bv::new(8, 0x80).to_i64(), -128);
        assert_eq!(Bv::new(8, 0xFF).to_i64(), -1);
        assert_eq!(Bv::new(8, 0x7F).to_i64(), 127);
        assert_eq!(Bv::new(64, u64::MAX).to_i64(), -1);
        assert_eq!(Bv::new(1, 1).to_i64(), -1);
    }

    #[test]
    fn bit_access() {
        let v = Bv::new(8, 0b1010_0001);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(7));
        assert!(v.msb());
        assert_eq!(v.with_bit(1, true).to_u64(), 0b1010_0011);
        assert_eq!(v.with_bit(7, false).to_u64(), 0b0010_0001);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range() {
        let _ = Bv::new(4, 0).bit(4);
    }

    #[test]
    fn predicates() {
        assert!(Bv::zero(5).is_zero());
        assert!(Bv::ones(5).is_ones());
        assert!(Bv::one(1).is_true());
        assert!(!Bv::one(2).is_true());
        assert!(!Bv::zero(1).is_true());
    }

    #[test]
    fn from_primitives() {
        assert_eq!(Bv::from(0xABu8), Bv::new(8, 0xAB));
        assert_eq!(Bv::from(0xABCDu16), Bv::new(16, 0xABCD));
        assert_eq!(Bv::from(0xDEADBEEFu32), Bv::new(32, 0xDEAD_BEEF));
        assert_eq!(Bv::from(1u64 << 63), Bv::new(64, 1 << 63));
        assert_eq!(Bv::from(true), Bv::one(1));
    }

    #[test]
    fn formatting() {
        let v = Bv::new(12, 0xABC);
        assert_eq!(format!("{v}"), "12'd2748");
        assert_eq!(format!("{v:?}"), "Bv(12'habc)");
        assert_eq!(format!("{v:x}"), "abc");
        assert_eq!(format!("{v:X}"), "ABC");
        assert_eq!(format!("{v:b}"), "101010111100");
        assert_eq!(format!("{v:o}"), "5274");
    }
}
