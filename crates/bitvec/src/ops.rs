//! Arithmetic, bitwise, shift, comparison and structural operations on [`Bv`].
//!
//! All binary arithmetic and bitwise operations require both operands to have
//! the same width and panic otherwise — width mismatches are programming
//! errors in circuit construction, never data errors. Division by zero
//! follows the SMT-LIB / BTOR2 convention (`udiv` by zero yields all-ones,
//! `urem` by zero yields the dividend); a checked variant returning
//! [`DivByZero`] is also provided.

use crate::Bv;
use std::error::Error;
use std::fmt;

/// Error returned by the checked division operations when the divisor is
/// zero.
///
/// # Examples
///
/// ```
/// use aqed_bitvec::Bv;
/// let x = Bv::new(8, 10);
/// assert!(x.checked_udiv(Bv::zero(8)).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DivByZero;

impl fmt::Display for DivByZero {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("bit-vector division by zero")
    }
}

impl Error for DivByZero {}

// The word-level operations are deliberately named methods rather than
// `std::ops` impls: they panic on width mismatch, which operator syntax
// would hide.
#[allow(clippy::should_implement_trait)]
impl Bv {
    #[inline]
    fn check_same_width(self, rhs: Self, op: &str) {
        assert!(
            self.width() == rhs.width(),
            "width mismatch in {op}: {} vs {}",
            self.width(),
            rhs.width()
        );
    }

    // ------------------------------------------------------------------
    // Arithmetic (wrapping, i.e. modulo 2^width)
    // ------------------------------------------------------------------

    /// Wrapping addition.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn add(self, rhs: Self) -> Self {
        self.check_same_width(rhs, "add");
        Self::new(self.width(), self.to_u64().wrapping_add(rhs.to_u64()))
    }

    /// Wrapping subtraction.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn sub(self, rhs: Self) -> Self {
        self.check_same_width(rhs, "sub");
        Self::new(self.width(), self.to_u64().wrapping_sub(rhs.to_u64()))
    }

    /// Wrapping multiplication.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn mul(self, rhs: Self) -> Self {
        self.check_same_width(rhs, "mul");
        Self::new(self.width(), self.to_u64().wrapping_mul(rhs.to_u64()))
    }

    /// Two's-complement negation.
    #[must_use]
    pub fn neg(self) -> Self {
        Self::new(self.width(), self.to_u64().wrapping_neg())
    }

    /// Unsigned division. Division by zero yields the all-ones vector
    /// (SMT-LIB / BTOR2 convention).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn udiv(self, rhs: Self) -> Self {
        self.check_same_width(rhs, "udiv");
        if rhs.is_zero() {
            Self::ones(self.width())
        } else {
            Self::new(self.width(), self.to_u64() / rhs.to_u64())
        }
    }

    /// Unsigned remainder. Remainder by zero yields the dividend
    /// (SMT-LIB / BTOR2 convention).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn urem(self, rhs: Self) -> Self {
        self.check_same_width(rhs, "urem");
        if rhs.is_zero() {
            self
        } else {
            Self::new(self.width(), self.to_u64() % rhs.to_u64())
        }
    }

    /// Unsigned division returning an error on a zero divisor.
    ///
    /// # Errors
    ///
    /// Returns [`DivByZero`] if `rhs` is zero.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn checked_udiv(self, rhs: Self) -> Result<Self, DivByZero> {
        self.check_same_width(rhs, "checked_udiv");
        if rhs.is_zero() {
            Err(DivByZero)
        } else {
            Ok(Self::new(self.width(), self.to_u64() / rhs.to_u64()))
        }
    }

    /// Unsigned remainder returning an error on a zero divisor.
    ///
    /// # Errors
    ///
    /// Returns [`DivByZero`] if `rhs` is zero.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn checked_urem(self, rhs: Self) -> Result<Self, DivByZero> {
        self.check_same_width(rhs, "checked_urem");
        if rhs.is_zero() {
            Err(DivByZero)
        } else {
            Ok(Self::new(self.width(), self.to_u64() % rhs.to_u64()))
        }
    }

    // ------------------------------------------------------------------
    // Bitwise
    // ------------------------------------------------------------------

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn and(self, rhs: Self) -> Self {
        self.check_same_width(rhs, "and");
        Self::new(self.width(), self.to_u64() & rhs.to_u64())
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn or(self, rhs: Self) -> Self {
        self.check_same_width(rhs, "or");
        Self::new(self.width(), self.to_u64() | rhs.to_u64())
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn xor(self, rhs: Self) -> Self {
        self.check_same_width(rhs, "xor");
        Self::new(self.width(), self.to_u64() ^ rhs.to_u64())
    }

    /// Bitwise NOT.
    #[must_use]
    pub fn not(self) -> Self {
        Self::new(self.width(), !self.to_u64())
    }

    // ------------------------------------------------------------------
    // Reductions (produce 1-bit results)
    // ------------------------------------------------------------------

    /// OR-reduction: 1 iff any bit is set.
    #[must_use]
    pub fn redor(self) -> Self {
        Self::from_bool(!self.is_zero())
    }

    /// AND-reduction: 1 iff all bits are set.
    #[must_use]
    pub fn redand(self) -> Self {
        Self::from_bool(self.is_ones())
    }

    /// XOR-reduction: parity of the number of set bits.
    #[must_use]
    pub fn redxor(self) -> Self {
        Self::from_bool(self.count_ones() % 2 == 1)
    }

    // ------------------------------------------------------------------
    // Shifts (shift amount is taken as an unsigned value; shifting by
    // >= width produces 0, or the sign fill for `ashr`)
    // ------------------------------------------------------------------

    /// Logical shift left. Shift amounts of `width` or more yield zero.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn shl(self, amount: Self) -> Self {
        self.check_same_width(amount, "shl");
        let n = amount.to_u64();
        if n >= u64::from(self.width()) {
            Self::zero(self.width())
        } else {
            Self::new(self.width(), self.to_u64() << n)
        }
    }

    /// Logical shift right. Shift amounts of `width` or more yield zero.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn lshr(self, amount: Self) -> Self {
        self.check_same_width(amount, "lshr");
        let n = amount.to_u64();
        if n >= u64::from(self.width()) {
            Self::zero(self.width())
        } else {
            Self::new(self.width(), self.to_u64() >> n)
        }
    }

    /// Arithmetic shift right (sign-filling). Shift amounts of `width` or
    /// more yield all-zeros or all-ones depending on the sign bit.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ashr(self, amount: Self) -> Self {
        self.check_same_width(amount, "ashr");
        let n = amount.to_u64();
        if n >= u64::from(self.width()) {
            if self.msb() {
                Self::ones(self.width())
            } else {
                Self::zero(self.width())
            }
        } else {
            Self::new(self.width(), ((self.to_i64()) >> n) as u64)
        }
    }

    /// Rotate left by `amount mod width` positions.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn rol(self, amount: Self) -> Self {
        self.check_same_width(amount, "rol");
        let w = u64::from(self.width());
        let n = amount.to_u64() % w;
        if n == 0 {
            self
        } else {
            let v = self.to_u64();
            Self::new(self.width(), (v << n) | (v >> (w - n)))
        }
    }

    /// Rotate right by `amount mod width` positions.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ror(self, amount: Self) -> Self {
        self.check_same_width(amount, "ror");
        let w = u64::from(self.width());
        let n = amount.to_u64() % w;
        if n == 0 {
            self
        } else {
            let v = self.to_u64();
            Self::new(self.width(), (v >> n) | (v << (w - n)))
        }
    }

    // ------------------------------------------------------------------
    // Comparisons (return Rust bool; the expression IR wraps them into
    // 1-bit vectors)
    // ------------------------------------------------------------------

    /// Unsigned less-than.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ult(self, rhs: Self) -> bool {
        self.check_same_width(rhs, "ult");
        self.to_u64() < rhs.to_u64()
    }

    /// Unsigned less-or-equal.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn ule(self, rhs: Self) -> bool {
        self.check_same_width(rhs, "ule");
        self.to_u64() <= rhs.to_u64()
    }

    /// Signed less-than.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn slt(self, rhs: Self) -> bool {
        self.check_same_width(rhs, "slt");
        self.to_i64() < rhs.to_i64()
    }

    /// Signed less-or-equal.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[must_use]
    pub fn sle(self, rhs: Self) -> bool {
        self.check_same_width(rhs, "sle");
        self.to_i64() <= rhs.to_i64()
    }

    // ------------------------------------------------------------------
    // Structural
    // ------------------------------------------------------------------

    /// Concatenation: `self` becomes the high bits, `rhs` the low bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`Bv::MAX_WIDTH`].
    ///
    /// # Examples
    ///
    /// ```
    /// use aqed_bitvec::Bv;
    /// let hi = Bv::new(4, 0xA);
    /// let lo = Bv::new(8, 0x5C);
    /// assert_eq!(hi.concat(lo), Bv::new(12, 0xA5C));
    /// ```
    #[must_use]
    pub fn concat(self, rhs: Self) -> Self {
        let w = self.width() + rhs.width();
        assert!(
            w <= Self::MAX_WIDTH,
            "concat result width {w} exceeds {}",
            Self::MAX_WIDTH
        );
        Self::new(w, (self.to_u64() << rhs.width()) | rhs.to_u64())
    }

    /// Extracts bits `hi..=lo` (inclusive) as a new vector of width
    /// `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqed_bitvec::Bv;
    /// assert_eq!(Bv::new(12, 0xA5C).extract(11, 8), Bv::new(4, 0xA));
    /// ```
    #[must_use]
    pub fn extract(self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "extract hi {hi} < lo {lo}");
        assert!(
            hi < self.width(),
            "extract hi {hi} out of range for width {}",
            self.width()
        );
        Self::new(hi - lo + 1, self.to_u64() >> lo)
    }

    /// Zero-extends to `new_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is smaller than the current width or exceeds
    /// [`Bv::MAX_WIDTH`].
    #[must_use]
    pub fn zext(self, new_width: u32) -> Self {
        assert!(
            new_width >= self.width() && new_width <= Self::MAX_WIDTH,
            "zext to {new_width} invalid from width {}",
            self.width()
        );
        Self::new(new_width, self.to_u64())
    }

    /// Sign-extends to `new_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is smaller than the current width or exceeds
    /// [`Bv::MAX_WIDTH`].
    ///
    /// # Examples
    ///
    /// ```
    /// use aqed_bitvec::Bv;
    /// assert_eq!(Bv::new(4, 0xF).sext(8), Bv::new(8, 0xFF));
    /// assert_eq!(Bv::new(4, 0x7).sext(8), Bv::new(8, 0x07));
    /// ```
    #[must_use]
    pub fn sext(self, new_width: u32) -> Self {
        assert!(
            new_width >= self.width() && new_width <= Self::MAX_WIDTH,
            "sext to {new_width} invalid from width {}",
            self.width()
        );
        Self::new(new_width, self.to_i64() as u64)
    }
}

#[cfg(test)]
mod tests {
    use crate::Bv;

    #[test]
    fn arithmetic_wraps() {
        let w = 8;
        assert_eq!(Bv::new(w, 0xFF).add(Bv::one(w)), Bv::zero(w));
        assert_eq!(Bv::zero(w).sub(Bv::one(w)), Bv::ones(w));
        assert_eq!(Bv::new(w, 0x10).mul(Bv::new(w, 0x10)), Bv::zero(w));
        assert_eq!(Bv::new(w, 1).neg(), Bv::ones(w));
        assert_eq!(Bv::zero(w).neg(), Bv::zero(w));
        assert_eq!(Bv::min_signed(w).neg(), Bv::min_signed(w));
    }

    #[test]
    fn division_conventions() {
        let w = 8;
        assert_eq!(Bv::new(w, 100).udiv(Bv::new(w, 7)), Bv::new(w, 14));
        assert_eq!(Bv::new(w, 100).urem(Bv::new(w, 7)), Bv::new(w, 2));
        // div-by-zero: SMT-LIB semantics
        assert_eq!(Bv::new(w, 100).udiv(Bv::zero(w)), Bv::ones(w));
        assert_eq!(Bv::new(w, 100).urem(Bv::zero(w)), Bv::new(w, 100));
        assert_eq!(
            Bv::new(w, 100).checked_udiv(Bv::new(w, 7)),
            Ok(Bv::new(w, 14))
        );
        assert!(Bv::new(w, 100).checked_udiv(Bv::zero(w)).is_err());
        assert!(Bv::new(w, 100).checked_urem(Bv::zero(w)).is_err());
        let err = Bv::one(w).checked_udiv(Bv::zero(w)).unwrap_err();
        assert_eq!(err.to_string(), "bit-vector division by zero");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = Bv::new(8, 1).add(Bv::new(9, 1));
    }

    #[test]
    fn bitwise() {
        let a = Bv::new(8, 0b1100_1010);
        let b = Bv::new(8, 0b1010_0110);
        assert_eq!(a.and(b), Bv::new(8, 0b1000_0010));
        assert_eq!(a.or(b), Bv::new(8, 0b1110_1110));
        assert_eq!(a.xor(b), Bv::new(8, 0b0110_1100));
        assert_eq!(a.not(), Bv::new(8, 0b0011_0101));
    }

    #[test]
    fn reductions() {
        assert_eq!(Bv::zero(8).redor(), Bv::from_bool(false));
        assert_eq!(Bv::new(8, 4).redor(), Bv::from_bool(true));
        assert_eq!(Bv::ones(8).redand(), Bv::from_bool(true));
        assert_eq!(Bv::new(8, 0xFE).redand(), Bv::from_bool(false));
        assert_eq!(Bv::new(8, 0b0110).redxor(), Bv::from_bool(false));
        assert_eq!(Bv::new(8, 0b0111).redxor(), Bv::from_bool(true));
    }

    #[test]
    fn shifts() {
        let v = Bv::new(8, 0b1001_0001);
        assert_eq!(v.shl(Bv::new(8, 2)), Bv::new(8, 0b0100_0100));
        assert_eq!(v.lshr(Bv::new(8, 4)), Bv::new(8, 0b0000_1001));
        assert_eq!(v.ashr(Bv::new(8, 4)), Bv::new(8, 0b1111_1001));
        // Overshift
        assert_eq!(v.shl(Bv::new(8, 8)), Bv::zero(8));
        assert_eq!(v.lshr(Bv::new(8, 100)), Bv::zero(8));
        assert_eq!(v.ashr(Bv::new(8, 100)), Bv::ones(8));
        assert_eq!(Bv::new(8, 0x71).ashr(Bv::new(8, 100)), Bv::zero(8));
    }

    #[test]
    fn rotates() {
        let v = Bv::new(8, 0b1000_0001);
        assert_eq!(v.rol(Bv::new(8, 1)), Bv::new(8, 0b0000_0011));
        assert_eq!(v.ror(Bv::new(8, 1)), Bv::new(8, 0b1100_0000));
        assert_eq!(v.rol(Bv::new(8, 8)), v);
        assert_eq!(v.ror(Bv::new(8, 16)), v);
        assert_eq!(v.rol(Bv::new(8, 9)), v.rol(Bv::new(8, 1)));
    }

    #[test]
    fn comparisons() {
        let a = Bv::new(8, 0x80); // -128 signed, 128 unsigned
        let b = Bv::new(8, 0x01);
        assert!(b.ult(a));
        assert!(!a.ult(b));
        assert!(a.slt(b));
        assert!(!b.slt(a));
        assert!(a.ule(a));
        assert!(a.sle(a));
    }

    #[test]
    fn concat_extract_roundtrip() {
        let hi = Bv::new(7, 0x55);
        let lo = Bv::new(9, 0x1AB);
        let c = hi.concat(lo);
        assert_eq!(c.width(), 16);
        assert_eq!(c.extract(15, 9), hi);
        assert_eq!(c.extract(8, 0), lo);
        assert_eq!(c.extract(0, 0), Bv::from_bool(lo.bit(0)));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn concat_too_wide() {
        let _ = Bv::new(40, 0).concat(Bv::new(40, 0));
    }

    #[test]
    fn extensions() {
        assert_eq!(Bv::new(4, 0x9).zext(8), Bv::new(8, 0x09));
        assert_eq!(Bv::new(4, 0x9).sext(8), Bv::new(8, 0xF9));
        assert_eq!(Bv::new(4, 0x9).zext(4), Bv::new(4, 0x9));
        assert_eq!(
            Bv::new(32, 0x8000_0000).sext(64).to_i64(),
            i64::from(i32::MIN)
        );
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn zext_shrink_panics() {
        let _ = Bv::new(8, 0).zext(4);
    }
}
