//! Property test of monitor soundness: on *healthy* accelerators, no
//! random stimulus — including arbitrary `is_orig`/`is_dup` labelings —
//! may ever trip an A-QED bad signal in concrete simulation. (The BMC
//! side proves this symbolically up to a bound; this covers long, deep
//! random runs cheaply.)

use aqed_bitvec::Bv;
use aqed_core::{AqedHarness, FcConfig, RbConfig};
use aqed_expr::ExprPool;
use aqed_hls::{synthesize, AccelSpec, SynthOptions};
use aqed_tsys::Simulator;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Stim {
    send: bool,
    data: u64,
    rdh: bool,
    ce: bool,
    orig: bool,
    dup: bool,
}

fn stim_strategy() -> impl Strategy<Value = Stim> {
    (
        any::<bool>(),
        0u64..64,
        any::<bool>(),
        prop::bool::weighted(0.8),
        prop::bool::weighted(0.2),
        prop::bool::weighted(0.2),
    )
        .prop_map(|(send, data, rdh, ce, orig, dup)| Stim {
            send,
            data,
            rdh,
            ce,
            orig,
            dup,
        })
}

fn run_healthy(latency: usize, fifo_depth: usize, clock_enable: bool, stimulus: &[Stim]) {
    let mut pool = ExprPool::new();
    let mut spec = AccelSpec::new("prop_mon", 2, 6, 6)
        .with_latency(latency)
        .with_fifo_depth(fifo_depth);
    if clock_enable {
        spec = spec.with_clock_enable();
    }
    let lca = synthesize(&spec, &mut pool, SynthOptions::default(), |p, _a, d| {
        let c = p.lit(6, 0x15);
        let x = p.xor(d, c);
        let one = p.lit(6, 1);
        p.add(x, one)
    });
    let tau = (latency + fifo_depth + 2) as u64;
    let harness = AqedHarness::new(&lca)
        .with_fc(FcConfig::default())
        .with_rb(RbConfig {
            tau,
            in_min: 1,
            rdin_bound: (fifo_depth + latency + 4) as u64,
            counter_width: 8,
        });
    let (composed, handles) = harness.build(&mut pool);
    let mut sim = Simulator::new(&composed, &pool);
    for (cycle, s) in stimulus.iter().enumerate() {
        let mut inputs = vec![
            (lca.action, Bv::new(2, u64::from(s.send))),
            (lca.data, Bv::new(6, s.data)),
            (lca.rdh, Bv::from_bool(s.rdh)),
            (handles.is_orig, Bv::from_bool(s.orig)),
            (handles.is_dup, Bv::from_bool(s.dup)),
        ];
        if let Some(ce) = lca.clock_enable {
            inputs.push((ce, Bv::from_bool(s.ce)));
        }
        let rec = sim.step_with(&composed, &pool, &inputs);
        assert!(
            rec.violated_bads.is_empty(),
            "healthy design tripped {:?} at cycle {cycle}",
            rec.violated_bads
                .iter()
                .map(|&b| composed.bads()[b].0.clone())
                .collect::<Vec<_>>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn healthy_pipelined_design_never_trips(
        stimulus in prop::collection::vec(stim_strategy(), 1..120),
        latency in 1usize..4,
        fifo_depth in 1usize..4,
    ) {
        run_healthy(latency, fifo_depth, false, &stimulus);
    }

    #[test]
    fn healthy_clock_gated_design_never_trips(
        stimulus in prop::collection::vec(stim_strategy(), 1..120),
    ) {
        run_healthy(2, 2, true, &stimulus);
    }
}
