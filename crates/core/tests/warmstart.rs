//! Warm-start soundness: reusing cone-keyed verdicts and learnt-clause
//! packs across design edits must never change a verdict. The tests
//! inject paper-style bugs with [`aqed_tsys::enumerate_mutants`] and
//! check that a warm-started run of the edited design is verdict-
//! identical to a cold run — including the case where the edit lands
//! inside the cone of a previously-clean obligation, which must be
//! re-solved rather than served stale.

use aqed_bmc::BmcOptions;
use aqed_core::{
    verify_obligations_governed, AqedHarness, ArtifactStore, CheckOutcome, FcConfig,
    ParallelVerifyReport, RunContext, ScheduleOptions,
};
use aqed_designs::all_cases;
use aqed_expr::ExprPool;
use aqed_hls::{synthesize, AccelSpec, SynthOptions};
use aqed_sat::Solver;
use aqed_tsys::{enumerate_mutants, Mutant, Mutator, TransitionSystem};
use proptest::prelude::*;
use std::sync::Arc;

/// Comparable summary of one obligation verdict: (rank, label, depth, bound).
type VerdictKey = (u8, Option<String>, Option<usize>, Option<usize>);

fn verdict_key(outcome: &CheckOutcome) -> VerdictKey {
    match outcome {
        CheckOutcome::Clean { bound } => (0, None, None, Some(*bound)),
        CheckOutcome::Bug { counterexample, .. } => (
            1,
            Some(counterexample.bad_name.clone()),
            Some(counterexample.depth),
            None,
        ),
        CheckOutcome::Inconclusive { bound, reason } => {
            (2, Some(reason.to_string()), None, Some(*bound))
        }
        CheckOutcome::Errored { message } => (3, Some(message.clone()), None, None),
    }
}

fn keys(report: &ParallelVerifyReport) -> Vec<(String, VerdictKey)> {
    report
        .obligations
        .iter()
        .map(|r| (r.obligation.bad_name.clone(), verdict_key(&r.outcome)))
        .collect()
}

/// Governed run of an already-composed system, optionally through a
/// shared store (warm-start is on by default in [`ScheduleOptions`]).
fn run_composed(
    composed: &TransitionSystem,
    pool: &ExprPool,
    bound: usize,
    store: Option<&Arc<ArtifactStore>>,
) -> ParallelVerifyReport {
    let options = BmcOptions::default().with_max_bound(bound);
    let sched = ScheduleOptions::default().with_jobs(2);
    let ctx = match store {
        Some(s) => RunContext::with_artifacts(Arc::clone(s)),
        None => RunContext::default(),
    };
    verify_obligations_governed::<Solver>(composed, pool, &options, &sched, &ctx)
}

/// The first applicable mutant of `ts`, preferring the one-constant
/// edit the CI-mode workflow is built around.
fn first_mutant(ts: &TransitionSystem, pool: &mut ExprPool) -> Option<Mutant> {
    for mutator in [
        Mutator::OffByOneConstant,
        Mutator::OperandSwap,
        Mutator::DroppedLatchUpdate,
    ] {
        if let Some(m) = enumerate_mutants(ts, pool, mutator).into_iter().next() {
            return Some(m);
        }
    }
    None
}

/// Every catalogued design, seeded with a one-site edit: a warm-started
/// run of the mutant against a store populated by the *original* design
/// must be verdict-identical to a cold run of the mutant. Obligations
/// whose cones the edit missed are served from the store; obligations
/// whose cones it hit are re-solved — either way the verdicts match.
#[test]
fn catalog_warm_start_after_edit_matches_cold() {
    let mut total_reused = 0u64;
    for case in all_cases() {
        // Cap the bound: soundness of reuse is about cone keys, not
        // depth, and the full catalog runs three times in this test.
        let bound = case.bmc_bound.min(6);
        let mut pool = ExprPool::new();
        let lca = (case.build_buggy)(&mut pool);
        let mut harness = AqedHarness::new(&lca);
        if let Some(fc) = &case.fc {
            harness = harness.with_fc(fc.clone());
        }
        if let Some(rb) = &case.rb {
            harness = harness.with_rb(*rb);
        }
        let (composed, _) = harness.build(&mut pool);
        let Some(mutant) = first_mutant(&composed, &mut pool) else {
            continue;
        };
        let store = Arc::new(ArtifactStore::new());
        let _seed = run_composed(&composed, &pool, bound, Some(&store));
        let cold = run_composed(&mutant.ts, &pool, bound, None);
        let warm = run_composed(&mutant.ts, &pool, bound, Some(&store));
        assert_eq!(
            keys(&cold),
            keys(&warm),
            "case {}: warm-start after '{}' changed a verdict",
            case.id,
            mutant.description
        );
        assert_eq!(cold.exit_code(), warm.exit_code(), "case {}", case.id);
        total_reused += warm.aggregate.verdicts_reused
            + warm.obligations.iter().filter(|r| r.cache_hit).count() as u64;
    }
    // Any single edit may land in every cone of a small design, but
    // across the whole catalog warm-start must pay off somewhere.
    assert!(
        total_reused > 0,
        "no obligation in the entire catalog was reused after a one-site edit"
    );
}

/// The negative case the cone key exists for: an obligation that was
/// clean on the healthy design must NOT reuse that verdict once the
/// edit lands inside its cone — the warm run must re-find the bug.
#[test]
fn edited_cone_is_resolved_not_served_stale() {
    let build = |bug: bool, pool: &mut ExprPool| {
        let spec = AccelSpec::new("warm_neg", 2, 6, 6)
            .with_latency(2)
            .with_fifo_depth(2);
        let lca = synthesize(
            &spec,
            pool,
            SynthOptions {
                forwarding_bug: bug,
                ..SynthOptions::default()
            },
            |p, _a, d| {
                let c = p.lit(6, 0x2a);
                p.xor(d, c)
            },
        );
        AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .build(pool)
            .0
    };
    let store = Arc::new(ArtifactStore::new());
    let mut pool = ExprPool::new();
    let healthy = build(false, &mut pool);
    let clean = run_composed(&healthy, &pool, 6, Some(&store));
    assert!(
        matches!(clean.outcome, CheckOutcome::Clean { .. }),
        "healthy design must be clean: {:?}",
        clean.outcome
    );
    // The forwarding bug rewires the datapath, so the affected cones
    // hash differently; their clean facts must not transfer.
    let mut pool = ExprPool::new();
    let buggy = build(true, &mut pool);
    let cold = run_composed(&buggy, &pool, 6, None);
    assert!(
        matches!(cold.outcome, CheckOutcome::Bug { .. }),
        "buggy design must produce a counterexample: {:?}",
        cold.outcome
    );
    let warm = run_composed(&buggy, &pool, 6, Some(&store));
    assert_eq!(
        keys(&cold),
        keys(&warm),
        "warm-start must re-find the bug, not serve the stale clean"
    );
    assert_eq!(warm.exit_code(), 1);
}

/// Deepening a clean run reuses the proven prefix: clean@6 in the store
/// lets the bound-8 re-run skip frames 0..=5 (counted in
/// `verdicts_reused`) instead of re-proving them.
#[test]
fn deepening_a_clean_run_skips_the_proven_prefix() {
    let store = Arc::new(ArtifactStore::new());
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("warm_deepen", 2, 6, 6).with_latency(2);
    let lca = synthesize(&spec, &mut pool, SynthOptions::default(), |p, _a, d| {
        let one = p.lit(6, 1);
        p.add(d, one)
    });
    let (composed, _) = AqedHarness::new(&lca)
        .with_fc(FcConfig::default())
        .build(&mut pool);
    let shallow = run_composed(&composed, &pool, 6, Some(&store));
    assert!(matches!(shallow.outcome, CheckOutcome::Clean { .. }));
    let cold = run_composed(&composed, &pool, 8, None);
    let deep = run_composed(&composed, &pool, 8, Some(&store));
    assert_eq!(keys(&cold), keys(&deep), "deepened verdicts must match");
    assert!(
        deep.aggregate.verdicts_reused > 0,
        "the bound-8 run must skip frames proven clean at bound 6: {:?}",
        deep.aggregate
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized edits: for a random synthesized accelerator and a
    /// random injection site, warm-start after the edit is verdict-
    /// identical to cold. The store is populated by the *original*
    /// design, so reuse decisions are made entirely by the cone keys
    /// and the counterexample replay gate.
    #[test]
    fn warm_start_after_random_edit_matches_cold(
        latency in 1usize..4,
        bug in any::<bool>(),
        mutator_idx in 0usize..3,
        site in 0usize..16,
        bound in 4usize..8,
    ) {
        let mut pool = ExprPool::new();
        let spec = AccelSpec::new("warm_prop", 2, 6, 6).with_latency(latency);
        let lca = synthesize(
            &spec,
            &mut pool,
            SynthOptions { forwarding_bug: bug, ..SynthOptions::default() },
            |p, _a, d| {
                let c = p.lit(6, 0x0d);
                let x = p.xor(d, c);
                let one = p.lit(6, 1);
                p.add(x, one)
            },
        );
        let (composed, _) = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .build(&mut pool);
        let mutator = [
            Mutator::OffByOneConstant,
            Mutator::OperandSwap,
            Mutator::DroppedLatchUpdate,
        ][mutator_idx];
        let mutants = enumerate_mutants(&composed, &mut pool, mutator);
        prop_assume!(!mutants.is_empty());
        let mutant = &mutants[site % mutants.len()];
        let store = Arc::new(ArtifactStore::new());
        let _seed = run_composed(&composed, &pool, bound, Some(&store));
        let cold = run_composed(&mutant.ts, &pool, bound, None);
        let warm = run_composed(&mutant.ts, &pool, bound, Some(&store));
        prop_assert_eq!(
            keys(&cold),
            keys(&warm),
            "warm-start after '{}' drifted",
            mutant.description
        );
        prop_assert_eq!(cold.exit_code(), warm.exit_code());
    }
}
