//! Property test of the cross-request artifact cache: over randomized
//! synthesized accelerators (latency, FIFO depth, bug on/off, bound),
//! a run backed by an [`ArtifactStore`] — cold or warm — must produce
//! exactly the per-obligation verdicts of a cache-off run, and a fully
//! warm run must be served without solving.

use aqed_bmc::BmcOptions;
use aqed_core::{
    verify_obligations_governed, AqedHarness, ArtifactStore, CheckOutcome, FcConfig,
    ParallelVerifyReport, RunContext, ScheduleOptions,
};
use aqed_expr::ExprPool;
use aqed_hls::{synthesize, AccelSpec, SynthOptions};
use aqed_sat::Solver;
use proptest::prelude::*;
use std::sync::Arc;

/// Comparable summary of one obligation verdict: (rank, label, depth, bound).
type VerdictKey = (u8, Option<String>, Option<usize>, Option<usize>);

fn verdict_key(outcome: &CheckOutcome) -> VerdictKey {
    match outcome {
        CheckOutcome::Clean { bound } => (0, None, None, Some(*bound)),
        CheckOutcome::Bug { counterexample, .. } => (
            1,
            Some(counterexample.bad_name.clone()),
            Some(counterexample.depth),
            None,
        ),
        CheckOutcome::Inconclusive { bound, reason } => {
            (2, Some(reason.to_string()), None, Some(*bound))
        }
        CheckOutcome::Errored { message } => (3, Some(message.clone()), None, None),
    }
}

fn keys(report: &ParallelVerifyReport) -> Vec<(String, VerdictKey)> {
    report
        .obligations
        .iter()
        .map(|r| (r.obligation.bad_name.clone(), verdict_key(&r.outcome)))
        .collect()
}

/// One full run of a synthesized accelerator, optionally through a
/// shared store. The design construction is deterministic, so repeat
/// calls hash to the same artifact key.
fn run_once(
    latency: usize,
    fifo_depth: usize,
    bug: bool,
    bound: usize,
    store: Option<&Arc<ArtifactStore>>,
) -> ParallelVerifyReport {
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("prop_cache", 2, 6, 6)
        .with_latency(latency)
        .with_fifo_depth(fifo_depth);
    let lca = synthesize(
        &spec,
        &mut pool,
        SynthOptions {
            forwarding_bug: bug,
            ..SynthOptions::default()
        },
        |p, _a, d| {
            let c = p.lit(6, 0x15);
            let x = p.xor(d, c);
            let one = p.lit(6, 1);
            p.add(x, one)
        },
    );
    let (composed, _) = AqedHarness::new(&lca)
        .with_fc(FcConfig::default())
        .build(&mut pool);
    let options = BmcOptions::default().with_max_bound(bound);
    let sched = ScheduleOptions::default().with_jobs(2);
    let ctx = match store {
        Some(s) => RunContext::with_artifacts(Arc::clone(s)),
        None => RunContext::default(),
    };
    verify_obligations_governed::<Solver>(&composed, &pool, &options, &sched, &ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn a_cache_hit_never_changes_an_obligations_verdict(
        latency in 1usize..4,
        fifo_depth in 1usize..3,
        bug in any::<bool>(),
        bound in 4usize..9,
    ) {
        let baseline = run_once(latency, fifo_depth, bug, bound, None);
        let store = Arc::new(ArtifactStore::new());
        let cold = run_once(latency, fifo_depth, bug, bound, Some(&store));
        let warm = run_once(latency, fifo_depth, bug, bound, Some(&store));
        let expected = keys(&baseline);
        prop_assert_eq!(&expected, &keys(&cold), "cold store run drifted");
        prop_assert_eq!(&expected, &keys(&warm), "warm store run drifted");
        prop_assert_eq!(baseline.exit_code(), warm.exit_code());
        // Unlimited budgets make every verdict definitive, so the warm
        // run must be answered entirely from the store.
        prop_assert_eq!(warm.cache_hits, warm.obligations.len() as u64);
        prop_assert_eq!(warm.aggregate.solver_calls, 0);
    }
}
