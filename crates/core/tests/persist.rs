//! Integration tests of the durable [`ArtifactStore`]: verdicts and
//! cones written by one "process" (store instance) must warm the next
//! one byte-for-byte; corruption must degrade to a partial cache, never
//! to a wrong verdict or a crash; compaction must preserve every fact.

use aqed_bmc::BmcOptions;
use aqed_core::{
    verify_obligations_governed, AqedHarness, ArtifactStore, CheckOutcome, FcConfig,
    ParallelVerifyReport, RunContext, ScheduleOptions, StoreOptions, JOURNAL_FILE, SNAPSHOT_FILE,
};
use aqed_expr::ExprPool;
use aqed_hls::{synthesize, AccelSpec, SynthOptions};
use aqed_sat::Solver;
use std::path::PathBuf;
use std::sync::Arc;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aqed-persist-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One deterministic accelerator run (so repeat calls hash to the same
/// artifact key), optionally through a store.
fn run_once(bug: bool, store: Option<&Arc<ArtifactStore>>) -> ParallelVerifyReport {
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("persist_case", 2, 6, 6)
        .with_latency(2)
        .with_fifo_depth(2);
    let lca = synthesize(
        &spec,
        &mut pool,
        SynthOptions {
            forwarding_bug: bug,
            ..SynthOptions::default()
        },
        |p, _a, d| {
            let c = p.lit(6, 0x2a);
            p.xor(d, c)
        },
    );
    let (composed, _) = AqedHarness::new(&lca)
        .with_fc(FcConfig::default())
        .build(&mut pool);
    let options = BmcOptions::default().with_max_bound(6);
    let sched = ScheduleOptions::default().with_jobs(2);
    let ctx = match store {
        Some(s) => RunContext::with_artifacts(Arc::clone(s)),
        None => RunContext::default(),
    };
    verify_obligations_governed::<Solver>(&composed, &pool, &options, &sched, &ctx)
}

/// Comparable per-obligation verdict summary.
fn keys(report: &ParallelVerifyReport) -> Vec<(String, String)> {
    report
        .obligations
        .iter()
        .map(|r| {
            let key = match &r.outcome {
                CheckOutcome::Clean { bound } => format!("clean@{bound}"),
                CheckOutcome::Bug { counterexample, .. } => {
                    format!("bug:{}@{}", counterexample.bad_name, counterexample.depth)
                }
                CheckOutcome::Inconclusive { bound, reason } => {
                    format!("inconclusive@{bound}:{reason}")
                }
                CheckOutcome::Errored { message } => format!("errored:{message}"),
            };
            (r.obligation.bad_name.clone(), key)
        })
        .collect()
}

fn assert_fully_warm(report: &ParallelVerifyReport, what: &str) {
    assert_eq!(
        report.cache_hits,
        report.obligations.len() as u64,
        "{what}: every obligation must be served from the store"
    );
    assert_eq!(report.aggregate.solver_calls, 0, "{what}: no solving");
}

#[test]
fn verdicts_and_cones_survive_a_process_boundary() {
    let dir = store_dir("boundary");
    let baseline = run_once(true, None);
    assert!(
        matches!(baseline.outcome, CheckOutcome::Bug { .. }),
        "the buggy variant must produce a counterexample to persist"
    );
    {
        // "Process one": cold run; Drop flushes the journal.
        let store = Arc::new(ArtifactStore::open(&dir).expect("open fresh store"));
        let cold = run_once(true, Some(&store));
        assert_eq!(keys(&baseline), keys(&cold));
    }
    assert!(dir.join(JOURNAL_FILE).exists());
    // "Process two": a brand-new store on the same directory starts
    // warm — including the counterexample, which is decoded and
    // replay-validated before being served.
    let store = Arc::new(ArtifactStore::open(&dir).expect("reopen store"));
    assert!(store.recovered_records() > 0, "recovery must see records");
    assert_eq!(store.truncated_records(), 0, "clean store, no damage");
    let warm = run_once(true, Some(&store));
    assert_eq!(keys(&baseline), keys(&warm));
    assert_fully_warm(&warm, "warm-from-disk");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_journal_degrades_to_a_partial_cache() {
    let dir = store_dir("corrupt");
    let baseline = run_once(true, None);
    {
        let store = Arc::new(ArtifactStore::open(&dir).expect("open fresh store"));
        let _ = run_once(true, Some(&store));
    }
    // Flip one bit in the middle of the journal: everything from the
    // damaged record on is discarded at the next open.
    let journal = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&journal).expect("read journal");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&journal, &bytes).expect("write damage");
    let store = Arc::new(ArtifactStore::open(&dir).expect("corrupted open must not fail"));
    assert!(
        store.truncated_records() > 0,
        "the damaged tail must be counted"
    );
    // The surviving prefix may or may not cover every obligation, but
    // the verdicts must be identical to a cold run either way: missing
    // facts are re-solved, never guessed.
    let after = run_once(true, Some(&store));
    assert_eq!(keys(&baseline), keys(&after));
    // The journal was physically truncated at the last good record, so
    // appends after recovery produce a clean file again.
    store.flush().expect("flush after recovery");
    drop(store);
    let reopened = ArtifactStore::open(&dir).expect("second reopen");
    assert_eq!(
        reopened.truncated_records(),
        0,
        "damage must not survive a recover-truncate-append cycle"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_learnt_record_falls_back_to_cold() {
    let dir = store_dir("learnt-corrupt");
    let baseline = run_once(true, None);
    {
        let store = Arc::new(ArtifactStore::open(&dir).expect("open fresh store"));
        let _ = run_once(true, Some(&store));
    }
    // Corrupt the first learnt-pack record specifically: the checksum
    // mismatch truncates the journal there, so the learnt hints (and any
    // facts after them) are lost — but never served corrupted.
    let journal = dir.join(JOURNAL_FILE);
    let text = std::fs::read_to_string(&journal).expect("read journal");
    let pos = text
        .find("\"k\":\"learnts\"")
        .expect("a cold run at this bound must journal at least one learnt pack");
    let mut bytes = text.into_bytes();
    bytes[pos + 6] = b'X';
    std::fs::write(&journal, &bytes).expect("write damage");
    let store = Arc::new(ArtifactStore::open(&dir).expect("corrupted open must not fail"));
    assert!(
        store.truncated_records() > 0,
        "the damaged learnt record must be counted as truncated"
    );
    // Graceful fallback: whatever the store lost is re-solved cold, and
    // the verdicts are exactly the cold run's.
    let after = run_once(true, Some(&store));
    assert_eq!(keys(&baseline), keys(&after));
    assert!(!after.degraded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_folds_the_journal_into_a_snapshot_losslessly() {
    let dir = store_dir("compact");
    let baseline = run_once(false, None);
    {
        let opts = StoreOptions {
            compact_threshold: 2,
            fsync: false,
        };
        let store = Arc::new(ArtifactStore::open_with(&dir, opts).expect("open fresh store"));
        let _ = run_once(false, Some(&store));
        store.flush().expect("flush");
        // The journal now exceeds the tiny threshold; the next flush
        // with pending work compacts.
        store.flush().expect("compacting flush");
        assert!(store.compactions() > 0, "threshold 2 must force compaction");
    }
    assert!(dir.join(SNAPSHOT_FILE).exists(), "snapshot must exist");
    let store = Arc::new(ArtifactStore::open(&dir).expect("reopen store"));
    assert!(store.recovered_records() > 0);
    assert_eq!(store.truncated_records(), 0);
    let warm = run_once(false, Some(&store));
    assert_eq!(keys(&baseline), keys(&warm));
    assert_fully_warm(&warm, "warm-from-snapshot");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leftover_compaction_scratch_is_discarded_on_open() {
    let dir = store_dir("scratch");
    {
        let store = Arc::new(ArtifactStore::open(&dir).expect("open fresh store"));
        let _ = run_once(false, Some(&store));
    }
    // Simulate a kill mid-compaction: a stale tmp snapshot on disk.
    let tmp = dir.join("snapshot.aqed.tmp");
    std::fs::write(&tmp, "half-written garbage").expect("plant scratch");
    let store = ArtifactStore::open(&dir).expect("open with scratch present");
    assert!(!tmp.exists(), "scratch must be deleted, not recovered");
    assert!(store.recovered_records() > 0);
    assert_eq!(store.truncated_records(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
