//! Concrete (simulation-level) checks of the generated A-QED monitor:
//! the monitor's registers and bad signals behave per Fig. 4 when driven
//! cycle by cycle, independent of any SAT solving.

use aqed_bitvec::Bv;
use aqed_core::{AqedHarness, FcConfig, RbConfig};
use aqed_expr::{ExprPool, VarId};
use aqed_hls::{synthesize, AccelSpec, SynthOptions};
use aqed_tsys::Simulator;

struct Driver {
    action: VarId,
    data: VarId,
    rdh: VarId,
    is_orig: VarId,
    is_dup: VarId,
}

fn setup(bug: SynthOptions) -> (ExprPool, aqed_tsys::TransitionSystem, Driver, Vec<String>) {
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("mon_test", 2, 8, 8).with_latency(1);
    let lca = synthesize(&spec, &mut pool, bug, |p, _a, d| {
        let k = p.lit(8, 0x0F);
        p.xor(d, k)
    });
    let harness = AqedHarness::new(&lca)
        .with_fc(FcConfig::default())
        .with_rb(RbConfig {
            tau: 6,
            in_min: 1,
            rdin_bound: 8,
            counter_width: 8,
        });
    let (composed, handles) = harness.build(&mut pool);
    composed.validate(&pool).expect("valid");
    let driver = Driver {
        action: lca.action,
        data: lca.data,
        rdh: lca.rdh,
        is_orig: handles.is_orig,
        is_dup: handles.is_dup,
    };
    (pool, composed, driver, handles.bad_names)
}

// A flat per-cycle stimulus signature keeps the test call sites readable.
#[allow(clippy::too_many_arguments)]
fn step(
    sim: &mut Simulator,
    ts: &aqed_tsys::TransitionSystem,
    pool: &ExprPool,
    d: &Driver,
    action: u64,
    data: u64,
    rdh: bool,
    orig: bool,
    dup: bool,
) -> Vec<usize> {
    let inputs = [
        (d.action, Bv::new(2, action)),
        (d.data, Bv::new(8, data)),
        (d.rdh, Bv::from_bool(rdh)),
        (d.is_orig, Bv::from_bool(orig)),
        (d.is_dup, Bv::from_bool(dup)),
    ];
    sim.step_with(ts, pool, &inputs).violated_bads
}

#[test]
fn healthy_design_never_trips_monitor_under_duplication() {
    let (pool, ts, d, _) = setup(SynthOptions::default());
    let mut sim = Simulator::new(&ts, &pool);
    // op A (original), op B, duplicate of A; host always ready.
    let script: &[(u64, u64, bool, bool)] = &[
        (1, 0x42, true, false), // original
        (1, 0x17, false, false),
        (1, 0x42, false, true), // duplicate
        (0, 0, false, false),
        (0, 0, false, false),
        (0, 0, false, false),
        (0, 0, false, false),
        (0, 0, false, false),
    ];
    for &(a, data, orig, dup) in script {
        let bads = step(&mut sim, &ts, &pool, &d, a, data, true, orig, dup);
        assert!(bads.is_empty(), "healthy design tripped monitor: {bads:?}");
    }
}

#[test]
fn forwarding_bug_trips_fc_bad_concretely() {
    let (pool, ts, d, names) = setup(SynthOptions {
        forwarding_bug: true,
        ..SynthOptions::default()
    });
    let mut sim = Simulator::new(&ts, &pool);
    // Space captures so a later capture lands exactly on the original's
    // delivery cycle (the forwarding clash corrupts the original's
    // output); a clean duplicate afterwards exposes the mismatch.
    let script: &[(u64, u64, bool, bool)] = &[
        (1, 0x42, true, false), // original
        (0, 0, false, false),
        (1, 0x11, false, false), // clashes with the original's delivery
        (0, 0, false, false),
        (1, 0x42, false, true), // duplicate (clean)
        (0, 0, false, false),
        (0, 0, false, false),
        (0, 0, false, false),
    ];
    let mut fired = Vec::new();
    for &(a, data, orig, dup) in script {
        let bads = step(&mut sim, &ts, &pool, &d, a, data, true, orig, dup);
        fired.extend(bads);
    }
    assert!(
        fired
            .iter()
            .any(|&b| names.iter().any(|n| n == "aqed_fc_violation")
                && ts.bads()[b].0 == "aqed_fc_violation"),
        "FC bad must fire concretely, got {fired:?}"
    );
}

#[test]
fn rb_fires_when_outputs_never_drain() {
    // Credit-skipping design with a 1-deep FIFO drops outputs; drive it
    // concretely with the host ready and watch RB fire.
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("rb_test", 2, 8, 8)
        .with_latency(2)
        .with_fifo_depth(1);
    let lca = synthesize(
        &spec,
        &mut pool,
        SynthOptions {
            skip_credit_check: true,
            ..SynthOptions::default()
        },
        |p, _a, d| p.not(d),
    );
    let harness = AqedHarness::new(&lca).with_rb(RbConfig {
        tau: 4,
        in_min: 1,
        rdin_bound: 16,
        counter_width: 8,
    });
    let (composed, handles) = harness.build(&mut pool);
    let mut sim = Simulator::new(&composed, &pool);
    // Stuff three ops with the host stalled (overflow drops results),
    // then mark the last as original and wait with the host ready.
    let mut fired = false;
    for k in 0..20 {
        let send = k < 3;
        let orig = k == 2;
        let rdh = k >= 3;
        let inputs = [
            (lca.action, Bv::new(2, u64::from(send))),
            (lca.data, Bv::new(8, 0x30 + k as u64)),
            (lca.rdh, Bv::from_bool(rdh)),
            (handles.is_orig, Bv::from_bool(orig)),
            (handles.is_dup, Bv::from_bool(false)),
        ];
        let rec = sim.step_with(&composed, &pool, &inputs);
        if rec
            .violated_bads
            .iter()
            .any(|&b| composed.bads()[b].0 == "aqed_rb_missing_output")
        {
            fired = true;
            break;
        }
    }
    assert!(fired, "RB must fire concretely on the dropped output");
}

#[test]
fn monitor_counters_saturate_not_wrap() {
    // With 2-bit monitor counters, more than 3 operations must not wrap
    // the counters back to 0 (which would re-pair outputs incorrectly).
    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("sat_test", 2, 4, 4)
        .with_latency(1)
        .with_fifo_depth(2);
    let lca = synthesize(&spec, &mut pool, SynthOptions::default(), |_p, _a, d| d);
    let fc = FcConfig {
        counter_width: 2,
        ..FcConfig::default()
    };
    let harness = AqedHarness::new(&lca).with_fc(fc);
    let (composed, handles) = harness.build(&mut pool);
    let mut sim = Simulator::new(&composed, &pool);
    for k in 0..24 {
        let inputs = [
            (lca.action, Bv::new(2, 1)),
            (lca.data, Bv::new(4, k % 16)),
            (lca.rdh, Bv::from_bool(true)),
            (handles.is_orig, Bv::from_bool(false)),
            (handles.is_dup, Bv::from_bool(false)),
        ];
        let rec = sim.step_with(&composed, &pool, &inputs);
        assert!(
            rec.violated_bads.is_empty(),
            "saturating counters must not produce spurious violations at cycle {k}"
        );
    }
}
