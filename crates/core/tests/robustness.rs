//! Acceptance tests for resource-governed verification:
//!
//! * a deliberately hard obligation (SAT-factoring a 62-bit semiprime
//!   through a 32×32 multiplier) under a tiny deadline returns
//!   `Inconclusive {reason: Deadline}` promptly, while its trivial
//!   sibling obligation still completes clean;
//! * a worker whose SAT backend panics degrades only its own obligation
//!   to `Errored` — the other obligations and the process survive.

use aqed_bmc::BmcOptions;
use aqed_core::{
    verify_obligations_scheduled, Budget, CheckOutcome, ScheduleOptions, StopReason, BAD_FC,
    BAD_RB_STARVATION,
};
use aqed_expr::ExprPool;
use aqed_sat::{ArmedBudget, Lit, SatBackend, SolveResult, Solver, SolverStats, Var};
use aqed_tsys::TransitionSystem;
use std::time::{Duration, Instant};

/// Two 31-bit primes whose product the SAT solver would have to factor.
const P: u64 = 2_147_483_647; // 2^31 - 1 (Mersenne)
const Q: u64 = 2_147_483_629;

/// Builds a system with one computationally hard bad (find x, y > 1 with
/// x·y = P·Q — i.e. factor a semiprime) and one trivially clean bad.
/// The bads carry A-QED monitor names so the scheduler can classify
/// them; the hardness is what matters here, not the monitor semantics.
fn factoring_system(pool: &mut ExprPool) -> TransitionSystem {
    let mut ts = TransitionSystem::new("factoring");
    let x = ts.add_input(pool, "x", 32);
    let y = ts.add_input(pool, "y", 32);
    let xe = pool.var_expr(x);
    let ye = pool.var_expr(y);
    let xw = pool.zext(xe, 64);
    let yw = pool.zext(ye, 64);
    let prod = pool.mul(xw, yw);
    let semiprime = pool.lit(64, P * Q);
    let hit = pool.eq(prod, semiprime);
    let one32 = pool.lit(32, 1);
    let x_nontrivial = pool.ugt(xe, one32);
    let y_nontrivial = pool.ugt(ye, one32);
    let nontrivial = pool.and(x_nontrivial, y_nontrivial);
    let factored = pool.and(hit, nontrivial);
    ts.add_bad(BAD_FC, factored);
    let never = pool.false_();
    ts.add_bad(BAD_RB_STARVATION, never);
    ts.validate(pool).expect("factoring system must validate");
    ts
}

#[test]
fn deadline_bounds_hard_obligation_while_sibling_completes() {
    let mut pool = ExprPool::new();
    let ts = factoring_system(&mut pool);
    let deadline = Duration::from_millis(300);
    // Preprocessing off: bounded variable elimination exposes enough of
    // this semiprime's structure (both factors are near-all-ones Mersenne
    // patterns) that the solver factors it inside the deadline, and the
    // test needs an instance that genuinely exhausts the budget.
    let options = BmcOptions::default()
        .with_max_bound(30)
        .with_preprocess(false)
        .with_budget(Budget::unlimited().with_timeout(deadline));
    let sched = ScheduleOptions::default().with_jobs(2);
    let start = Instant::now();
    let report = verify_obligations_scheduled::<Solver>(&ts, &pool, &options, &sched);
    let elapsed = start.elapsed();

    // The factoring obligation must give up on the deadline, not hang:
    // the whole run finishes well within a small multiple of the
    // requested timeout (generous slack for debug builds and CI noise).
    assert!(
        elapsed < deadline * 2 + Duration::from_millis(700),
        "run took {elapsed:?} against a {deadline:?} deadline"
    );
    let hard = &report.obligations[0];
    assert_eq!(hard.obligation.bad_name, BAD_FC);
    match hard.outcome {
        CheckOutcome::Inconclusive { reason, .. } => {
            assert_eq!(reason, StopReason::Deadline, "{report}")
        }
        ref other => panic!("hard obligation should be deadline-bounded, got {other:?}"),
    }
    // The trivial sibling is unaffected by its neighbour's struggle.
    let sibling = &report.obligations[1];
    assert_eq!(sibling.obligation.bad_name, BAD_RB_STARVATION);
    assert!(
        matches!(sibling.outcome, CheckOutcome::Clean { bound: 30 }),
        "sibling should complete clean, got {:?}",
        sibling.outcome
    );
    assert!(!report.degraded);
    // Merged verdict surfaces the inconclusive, never a fake clean.
    assert!(
        matches!(
            report.outcome,
            CheckOutcome::Inconclusive {
                reason: StopReason::Deadline,
                ..
            }
        ),
        "{report}"
    );
}

/// A backend whose first-constructed instance in this process panics on
/// every solve; later instances behave like the real solver.
struct PanickyBackend {
    inner: Solver,
    poisoned: bool,
}

impl Default for PanickyBackend {
    fn default() -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static INSTANCES: AtomicUsize = AtomicUsize::new(0);
        PanickyBackend {
            inner: Solver::new(),
            poisoned: INSTANCES.fetch_add(1, Ordering::Relaxed) == 0,
        }
    }
}

impl SatBackend for PanickyBackend {
    fn name(&self) -> &'static str {
        "panicky"
    }
    fn new_var(&mut self) -> Var {
        self.inner.new_var()
    }
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.inner.add_clause(lits.iter().copied())
    }
    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.poisoned {
            panic!("injected backend fault");
        }
        self.inner.solve_with(assumptions)
    }
    fn value(&self, l: Lit) -> Option<bool> {
        self.inner.value(l)
    }
    fn stats(&self) -> SolverStats {
        self.inner.stats()
    }
    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }
    fn num_clauses(&self) -> usize {
        self.inner.num_clauses()
    }
    fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.inner.set_conflict_budget(budget);
    }
    fn set_budget(&mut self, budget: ArmedBudget) {
        self.inner.set_budget(budget);
    }
    fn stop_reason(&self) -> Option<StopReason> {
        self.inner.stop_reason()
    }
}

#[test]
fn panicking_backend_degrades_only_its_own_obligation() {
    use aqed_core::{AqedHarness, FcConfig, RbConfig};
    use aqed_hls::{synthesize, AccelSpec, SynthOptions};

    let mut pool = ExprPool::new();
    let spec = AccelSpec::new("ident", 2, 6, 6).with_latency(2);
    let lca = synthesize(&spec, &mut pool, SynthOptions::default(), |_pool, _a, d| d);
    // jobs = 1 makes the claim order deterministic: obligation 0 gets the
    // first PanickyBackend instance — the one that panics.
    let sched = ScheduleOptions::default();
    let report = AqedHarness::new(&lca)
        .with_fc(FcConfig::default())
        .with_rb(RbConfig::default())
        .verify_parallel_scheduled::<PanickyBackend>(&mut pool, 6, &sched);

    assert!(report.degraded, "{report}");
    let errored: Vec<usize> = report
        .obligations
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.outcome, CheckOutcome::Errored { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(errored, vec![0], "exactly the first obligation degrades");
    match &report.obligations[0].outcome {
        CheckOutcome::Errored { message } => {
            assert!(
                message.contains("injected backend fault"),
                "panic payload must be preserved: {message}"
            );
        }
        other => unreachable!("{other:?}"),
    }
    // Siblings ran on healthy backend instances and decided normally.
    for r in &report.obligations[1..] {
        assert!(
            matches!(r.outcome, CheckOutcome::Clean { .. }),
            "sibling must stay decided: {:?}",
            r.outcome
        );
    }
    // The merged verdict reports the degradation loudly instead of
    // claiming a clean design.
    assert!(
        matches!(report.outcome, CheckOutcome::Errored { .. }),
        "{report}"
    );
}
