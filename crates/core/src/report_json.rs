//! JSON serialization of verification reports.
//!
//! Hand-rolled over [`aqed_obs::json::Json`] (the workspace carries no
//! serde); the schema is stable and consumed by `verify --report-json`
//! and downstream tooling. Every duration is reported in milliseconds as
//! a float to keep the numbers human-scaled.

use crate::parallel::{ObligationReport, ParallelVerifyReport};
use crate::verify::CheckOutcome;
use aqed_bmc::BmcStats;
use aqed_obs::json::Json;
use aqed_sat::SolverStats;
use std::time::Duration;

fn ms(d: Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e3)
}

fn solver_stats_json(s: &SolverStats) -> Json {
    Json::obj(vec![
        ("decisions", Json::num(s.decisions)),
        ("propagations", Json::num(s.propagations)),
        ("conflicts", Json::num(s.conflicts)),
        ("restarts", Json::num(s.restarts)),
        ("learnts", Json::num(s.learnts)),
        ("deleted", Json::num(s.deleted)),
        ("binary_props", Json::num(s.binary_props)),
        ("gc_runs", Json::num(s.gc_runs)),
        ("arena_bytes", Json::num(s.arena_bytes)),
        ("subsumed", Json::num(s.subsumed)),
        ("eliminated_vars", Json::num(s.eliminated_vars)),
        ("preprocess_micros", Json::num(s.preprocess_micros)),
        ("learnt_imported", Json::num(s.learnt_imported)),
        ("learnt_discarded", Json::num(s.learnt_discarded)),
    ])
}

fn bmc_stats_json(s: &BmcStats) -> Json {
    Json::obj(vec![
        ("frames_encoded", Json::num(s.frames_encoded as u64)),
        ("solver_calls", Json::num(s.solver_calls)),
        ("clauses", Json::num(s.clauses as u64)),
        ("variables", Json::num(s.variables as u64)),
        ("elapsed_ms", ms(s.elapsed)),
        ("coi_latches_kept", Json::num(s.coi_latches_kept as u64)),
        (
            "coi_latches_dropped",
            Json::num(s.coi_latches_dropped as u64),
        ),
        ("verdicts_reused", Json::num(s.verdicts_reused)),
        ("coi_micros", Json::num(s.coi_micros)),
        ("encode_micros", Json::num(s.encode_micros)),
        ("solve_micros", Json::num(s.solve_micros)),
        ("solver", solver_stats_json(&s.solver)),
    ])
}

fn outcome_json(outcome: &CheckOutcome) -> Json {
    match outcome {
        CheckOutcome::Clean { bound } => Json::obj(vec![
            ("verdict", Json::Str("clean".into())),
            ("bound", Json::num(*bound as u64)),
        ]),
        CheckOutcome::Bug {
            property,
            counterexample,
        } => Json::obj(vec![
            ("verdict", Json::Str("bug".into())),
            ("property", Json::Str(property.to_string())),
            ("bad_name", Json::Str(counterexample.bad_name.clone())),
            ("bad_index", Json::num(counterexample.bad_index as u64)),
            ("depth", Json::num(counterexample.depth as u64)),
            ("cycles", Json::num(counterexample.cycles() as u64)),
        ]),
        CheckOutcome::Inconclusive { bound, reason } => Json::obj(vec![
            ("verdict", Json::Str("inconclusive".into())),
            ("bound", Json::num(*bound as u64)),
            ("reason", Json::Str(reason.to_string())),
        ]),
        CheckOutcome::Errored { message } => Json::obj(vec![
            ("verdict", Json::Str("errored".into())),
            ("message", Json::Str(message.clone())),
        ]),
    }
}

fn obligation_json(r: &ObligationReport) -> Json {
    Json::obj(vec![
        ("bad_index", Json::num(r.obligation.bad_index as u64)),
        ("bad_name", Json::Str(r.obligation.bad_name.clone())),
        ("property", Json::Str(r.obligation.property.to_string())),
        ("outcome", outcome_json(&r.outcome)),
        ("attempts", Json::num(u64::from(r.attempts))),
        ("wall_ms", ms(r.wall)),
        ("cache_hit", Json::Bool(r.cache_hit)),
        ("stats", bmc_stats_json(&r.stats)),
    ])
}

impl ParallelVerifyReport {
    /// Serializes the full report — merged verdict, every per-obligation
    /// report with its statistics, and the aggregate — as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("outcome", outcome_json(&self.outcome)),
            (
                "obligations",
                Json::Arr(self.obligations.iter().map(obligation_json).collect()),
            ),
            ("aggregate", bmc_stats_json(&self.aggregate)),
            ("jobs", Json::num(self.jobs as u64)),
            ("runtime_ms", ms(self.runtime)),
            ("degraded", Json::Bool(self.degraded)),
            ("watchdog_trips", Json::num(self.watchdog_trips)),
            ("cache_hits", Json::num(self.cache_hits)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::FcConfig;
    use crate::AqedHarness;
    use aqed_expr::ExprPool;
    use aqed_hls::{synthesize, AccelSpec, SynthOptions};

    #[test]
    fn report_json_round_trips_and_matches_the_report() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("ident", 2, 6, 6).with_latency(2);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify_parallel(&mut p, 6, 2);
        let rendered = report.to_json().to_string();
        let parsed = aqed_obs::json::parse(&rendered).expect("report JSON must parse");
        assert_eq!(
            parsed
                .get("outcome")
                .and_then(|o| o.get("verdict"))
                .and_then(Json::as_str),
            Some("clean")
        );
        let obs = parsed
            .get("obligations")
            .and_then(Json::as_arr)
            .expect("obligations array");
        assert_eq!(obs.len(), report.obligations.len());
        for (j, r) in obs.iter().zip(&report.obligations) {
            assert_eq!(
                j.get("bad_name").and_then(Json::as_str),
                Some(r.obligation.bad_name.as_str())
            );
            assert_eq!(
                j.get("stats")
                    .and_then(|s| s.get("solver_calls"))
                    .and_then(Json::as_u64),
                Some(r.stats.solver_calls)
            );
        }
        assert_eq!(
            parsed
                .get("aggregate")
                .and_then(|s| s.get("solver"))
                .and_then(|s| s.get("conflicts"))
                .and_then(Json::as_u64),
            Some(report.aggregate.solver.conflicts)
        );
        // The warm-start counters are part of the stable schema even on
        // a cold run (they report zero).
        let aggregate = parsed.get("aggregate").expect("aggregate");
        assert_eq!(
            aggregate.get("verdicts_reused").and_then(Json::as_u64),
            Some(report.aggregate.verdicts_reused)
        );
        let solver = aggregate.get("solver").expect("solver");
        assert_eq!(
            solver.get("learnt_imported").and_then(Json::as_u64),
            Some(report.aggregate.solver.learnt_imported)
        );
        assert_eq!(
            solver.get("learnt_discarded").and_then(Json::as_u64),
            Some(report.aggregate.solver.learnt_discarded)
        );
    }

    #[test]
    fn bug_outcome_serializes_the_witness_summary() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("inc", 2, 6, 6);
        let lca = synthesize(
            &spec,
            &mut p,
            SynthOptions {
                forwarding_bug: true,
                ..SynthOptions::default()
            },
            |pool, _a, d| {
                let one = pool.lit(6, 1);
                pool.add(d, one)
            },
        );
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify_parallel(&mut p, 8, 2);
        assert!(report.found_bug());
        let parsed = aqed_obs::json::parse(&report.to_json().to_string()).unwrap();
        let outcome = parsed.get("outcome").unwrap();
        assert_eq!(outcome.get("verdict").and_then(Json::as_str), Some("bug"));
        assert_eq!(
            outcome.get("cycles").and_then(Json::as_u64),
            report.cex_cycles().map(|c| c as u64)
        );
    }
}
