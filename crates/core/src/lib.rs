//! A-QED (Accelerator Quick Error Detection): specification-free formal
//! verification of stand-alone hardware accelerators.
//!
//! This crate is the Rust realisation of the DAC 2020 paper's
//! contribution. Given a loosely-coupled accelerator
//! ([`Lca`](aqed_hls::Lca)) it automatically constructs the **A-QED
//! module** — a monitor transition system composed with the design — and
//! checks universal properties with bounded model checking:
//!
//! * **Functional Consistency (FC)**, Def. 2: the BMC engine
//!   nondeterministically labels one captured input as the *original* and
//!   a later equal `(action, data)` input as the *duplicate*; the outputs
//!   delivered at the corresponding positions must match
//!   (`dup_done → fc_check` in the paper's Fig. 4). The strengthened form
//!   also flags any output delivered before its input was captured.
//! * **Response Bound (RB)**, Def. 3: `rdin` must recur within a bound,
//!   and once an input is captured its output must arrive within `τ`
//!   host-ready cycles (`cnt_rdh ≥ τ ∧ cnt_in ≥ in_min → rdy_out`).
//! * **Single-Action Correctness (SAC)**, Def. 7 (optional, needs a
//!   [`SpecFn`]): the original input's output must equal `Spec(a, d)`.
//!
//! Together (Prop. 1) these imply total correctness for strongly
//! connected accelerators — without ever writing a design-specific
//! property for FC/RB.
//!
//! # Examples
//!
//! A healthy incrementer passes FC; injecting a forwarding bug makes
//! A-QED produce a short counterexample:
//!
//! ```
//! use aqed_core::{AqedHarness, CheckOutcome, FcConfig, PropertyKind};
//! use aqed_hls::{synthesize, AccelSpec, SynthOptions};
//! use aqed_expr::ExprPool;
//!
//! let mut p = ExprPool::new();
//! let spec = AccelSpec::new("inc", 2, 4, 4);
//! let buggy = SynthOptions { forwarding_bug: true, ..SynthOptions::default() };
//! let lca = synthesize(&spec, &mut p, buggy, |pool, _a, d| {
//!     let one = pool.lit(4, 1);
//!     pool.add(d, one)
//! });
//! let report = AqedHarness::new(&lca)
//!     .with_fc(FcConfig::default())
//!     .verify(&mut p, 8);
//! match report.outcome {
//!     CheckOutcome::Bug { property, counterexample } => {
//!         assert_eq!(property, PropertyKind::Fc);
//!         assert!(counterexample.cycles() <= 8); // short CEX, as the paper reports
//!     }
//!     other => panic!("expected a bug, got {other:?}"),
//! }
//! ```

mod artifact;
mod hybrid;
mod monitor;
mod parallel;
mod persist;
mod report_json;
mod verify;

pub use artifact::{cone_hash, design_hash, ArtifactStore};
pub use hybrid::{run_hybrid, HybridConfig, HybridOutcome};
pub use monitor::{
    FcConfig, MonitorHandles, RbConfig, SacConfig, BAD_FC, BAD_FC_EARLY, BAD_RB_NO_OUTPUT,
    BAD_RB_STARVATION, BAD_SAC,
};
pub use parallel::{
    verify_obligations, verify_obligations_governed, verify_obligations_scheduled,
    verify_obligations_with, Obligation, ObligationReport, ParallelVerifyReport, RunContext,
    ScheduleOptions,
};
pub use persist::{StoreOptions, JOURNAL_FILE, SNAPSHOT_FILE};
pub use verify::{AqedHarness, CheckOutcome, PropertyKind, VerifyReport};

pub use aqed_sat::{ArmedBudget, Budget, StopHandle, StopReason};

use aqed_expr::{ExprPool, ExprRef};

/// A symbolic specification function `Spec: A × D → O` (paper Def. 4),
/// given as an expression builder over the action and data inputs.
///
/// Used only for optional SAC checking — FC and RB need no specification,
/// which is the point of A-QED.
pub type SpecFn<'a> = &'a dyn Fn(&mut ExprPool, ExprRef, ExprRef) -> ExprRef;
