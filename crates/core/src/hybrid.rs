//! Hybrid QED: running the A-QED monitor in *simulation* instead of BMC.
//!
//! The paper contrasts A-QED with simulation-based QED flows such as
//! Hybrid Quick Error Detection [Campbell 19]: the same self-consistency
//! monitor, but driven by concrete (random) stimulus rather than a
//! symbolic search. This module provides that mode — useful when a
//! design is too large to bit-blast, and as an ablation showing *why*
//! BMC finds bugs that random duplication misses.
//!
//! The driver submits random operations, remembers one as the
//! "original" (asserting `is_orig`), later re-submits the same
//! `(action, data)` as the "duplicate" (asserting `is_dup`), and watches
//! the monitor's bad signals in the cycle-accurate simulator.

use crate::monitor::{attach_monitor, FcConfig, RbConfig};
use aqed_bitvec::Bv;
use aqed_expr::{ExprPool, VarId};
use aqed_hls::Lca;
use aqed_tsys::Simulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of a hybrid-QED run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridConfig {
    /// Cycle budget per seed.
    pub cycles_per_seed: u64,
    /// Number of random seeds.
    pub seeds: u64,
    /// Probability (in percent) of submitting an operation each cycle.
    pub send_percent: u8,
    /// Probability (in percent) of the host being ready each cycle.
    pub rdh_percent: u8,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            cycles_per_seed: 2_000,
            seeds: 3,
            send_percent: 60,
            rdh_percent: 70,
        }
    }
}

/// Result of a hybrid-QED run.
#[derive(Debug, Clone)]
pub struct HybridOutcome {
    /// Name of the violated monitor property, if any.
    pub violated: Option<String>,
    /// Cycle (within the failing seed) of the detection.
    pub trace_cycles: Option<u64>,
    /// Total cycles simulated.
    pub total_cycles: u64,
    /// Wall-clock time.
    pub runtime: Duration,
}

impl HybridOutcome {
    /// Whether a violation was observed.
    #[must_use]
    pub fn detected(&self) -> bool {
        self.violated.is_some()
    }
}

/// Runs hybrid QED on a design: the A-QED FC (and optionally RB) monitor
/// composed with the design, driven by concrete random stimulus with
/// deliberate duplicate re-submission.
#[must_use]
pub fn run_hybrid(
    lca: &Lca,
    pool: &mut ExprPool,
    fc: &FcConfig,
    rb: Option<&RbConfig>,
    config: &HybridConfig,
) -> HybridOutcome {
    let start = Instant::now();
    let (composed, handles) = attach_monitor(lca, pool, Some(fc), rb, None);
    composed
        .validate(pool)
        .expect("composed system well-formed");
    let data_w = pool.var_width(lca.data);
    let action_w = pool.var_width(lca.action);
    let mut total_cycles = 0u64;

    for seed in 0..config.seeds {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let mut sim = Simulator::new(&composed, pool);
        // The concrete duplication strategy: pick one op as original,
        // then re-submit the same payload a little later.
        let mut orig_payload: Option<u64> = None;
        let mut orig_sent = false;
        let mut dup_scheduled_in: Option<u64> = None;

        for cycle in 0..config.cycles_per_seed {
            total_cycles += 1;
            let send = rng.gen_range(0..100) < config.send_percent;
            let rdh = rng.gen_range(0..100) < config.rdh_percent;
            let mut data_val = rng.gen::<u64>() & Bv::mask(data_w);
            // Honour the common-field (shared key) constraint if set.
            if let Some((hi, lo)) = fc.common_field {
                let field_mask = Bv::mask(hi - lo + 1) << lo;
                data_val &= !field_mask; // fixed common field = 0
            }
            let mut is_orig = false;
            let mut is_dup = false;
            if send {
                match (&orig_payload, &mut dup_scheduled_in) {
                    (None, _) => {
                        // First submissions become original candidates.
                        is_orig = true;
                    }
                    (Some(payload), Some(0)) => {
                        data_val = *payload;
                        is_dup = true;
                    }
                    _ => {}
                }
            }
            let mut inputs: Vec<(VarId, Bv)> = vec![
                (lca.action, Bv::new(action_w, u64::from(send))),
                (lca.data, Bv::new(data_w, data_val)),
                (lca.rdh, Bv::from_bool(rdh)),
                (handles.is_orig, Bv::from_bool(is_orig)),
                (handles.is_dup, Bv::from_bool(is_dup)),
            ];
            if let Some(ce) = lca.clock_enable {
                inputs.push((ce, Bv::from_bool(rng.gen_range(0..100) < 85)));
            }
            let cap = sim.peek(pool, lca.captured, &inputs).is_true();
            let rec = sim.step_with(&composed, pool, &inputs);
            if let Some(&bad) = rec.violated_bads.first() {
                return HybridOutcome {
                    violated: Some(composed.bads()[bad].0.clone()),
                    trace_cycles: Some(cycle + 1),
                    total_cycles,
                    runtime: start.elapsed(),
                };
            }
            if cap && is_orig && !orig_sent {
                orig_payload = Some(data_val);
                orig_sent = true;
                dup_scheduled_in = Some(rng.gen_range(1..8));
            } else if cap {
                if let Some(d) = &mut dup_scheduled_in {
                    *d = d.saturating_sub(1);
                }
            }
        }
    }
    HybridOutcome {
        violated: None,
        trace_cycles: None,
        total_cycles,
        runtime: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_hls::{synthesize, AccelSpec, SynthOptions};

    #[test]
    fn hybrid_passes_healthy_design() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("h_ok", 2, 6, 6).with_latency(2);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |pool, _a, d| {
            pool.not(d)
        });
        let outcome = run_hybrid(
            &lca,
            &mut p,
            &FcConfig::default(),
            None,
            &HybridConfig {
                cycles_per_seed: 500,
                seeds: 2,
                ..HybridConfig::default()
            },
        );
        assert!(!outcome.detected(), "{outcome:?}");
        assert!(outcome.total_cycles >= 1000);
    }

    #[test]
    fn hybrid_catches_forwarding_bug_eventually() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("h_bug", 2, 6, 6).with_latency(1);
        let lca = synthesize(
            &spec,
            &mut p,
            SynthOptions {
                forwarding_bug: true,
                ..SynthOptions::default()
            },
            |pool, _a, d| pool.not(d),
        );
        let outcome = run_hybrid(
            &lca,
            &mut p,
            &FcConfig::default(),
            None,
            &HybridConfig {
                cycles_per_seed: 4_000,
                seeds: 16,
                send_percent: 90,
                rdh_percent: 90,
            },
        );
        // With heavy traffic the duplicate eventually lands on a
        // capture/delivery collision; the monitor's FC bad fires in
        // concrete simulation — no BMC involved.
        assert!(outcome.detected(), "{outcome:?}");
        assert!(outcome.trace_cycles.unwrap() > 0);
    }
}
