//! Construction of the A-QED monitor transition system (the paper's
//! Fig. 4 `aqed_in` / `aqed_out` logic plus the RB counters), composed
//! with the design under verification.

use crate::SpecFn;
use aqed_expr::{ExprPool, ExprRef, VarId};
use aqed_hls::Lca;
use aqed_tsys::TransitionSystem;

/// Configuration of the Functional Consistency monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcConfig {
    /// Width of the capture/delivery counters (bounds the observable
    /// trace length to `2^counter_width − 1`; 8 is ample for BMC).
    pub counter_width: u32,
    /// Optional bit range `(hi, lo)` of the data input that must be equal
    /// across *all* captured inputs — the paper's "common key across a
    /// batch" customization used for the AES case study. Enforced as an
    /// environment constraint.
    pub common_field: Option<(u32, u32)>,
    /// Also check the strengthened property that no output is delivered
    /// before its corresponding input was captured (footnote 1 in the
    /// paper). Enabled by default.
    pub check_early_output: bool,
}

impl Default for FcConfig {
    fn default() -> Self {
        FcConfig {
            counter_width: 8,
            common_field: None,
            check_early_output: true,
        }
    }
}

/// Configuration of the Response Bound monitor (paper Sec. IV.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbConfig {
    /// `τ`: the design-specific maximum number of host-ready cycles the
    /// accelerator may take to produce the output for a captured input.
    pub tau: u64,
    /// `in_min`: number of captured inputs the accelerator legitimately
    /// needs before it produces any output (designs that batch internally).
    pub in_min: u64,
    /// Bound for part (1) of Def. 3: `rdin` may not stay low for this
    /// many consecutive cycles.
    pub rdin_bound: u64,
    /// Counter width for the RB counters.
    pub counter_width: u32,
}

impl Default for RbConfig {
    fn default() -> Self {
        RbConfig {
            tau: 8,
            in_min: 1,
            rdin_bound: 8,
            counter_width: 8,
        }
    }
}

/// Configuration of the Single-Action Correctness check.
pub struct SacConfig<'a> {
    /// The specification function `Spec(a, d)`.
    pub spec: SpecFn<'a>,
}

impl std::fmt::Debug for SacConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SacConfig { spec: <fn> }")
    }
}

/// Handles into the composed (design + monitor) system: the fresh monitor
/// inputs and the names of the generated bad properties.
#[derive(Debug, Clone)]
pub struct MonitorHandles {
    /// BMC-controlled label: "this captured input is the original".
    pub is_orig: VarId,
    /// BMC-controlled label: "this captured input is the duplicate".
    pub is_dup: VarId,
    /// Names of the bad properties added to the composed system.
    pub bad_names: Vec<String>,
    /// The monitor's `orig_done` expression (the paper's `rdy_out`).
    pub orig_done: ExprRef,
    /// The monitor's `dup_done` register expression.
    pub dup_done: ExprRef,
}

/// Name of the Functional Consistency violation property (Def. 2).
pub const BAD_FC: &str = "aqed_fc_violation";
/// Name of the strengthened "output before input captured" FC property.
pub const BAD_FC_EARLY: &str = "aqed_fc_output_before_input";
/// Name of the Response Bound `rdin`-starvation property (Def. 3, part 1).
pub const BAD_RB_STARVATION: &str = "aqed_rb_rdin_starvation";
/// Name of the Response Bound missing-output property (Def. 3, part 2).
pub const BAD_RB_NO_OUTPUT: &str = "aqed_rb_missing_output";
/// Name of the Single-Action Correctness mismatch property (Def. 7).
pub const BAD_SAC: &str = "aqed_sac_mismatch";

/// Builds the composed system `design ∥ A-QED monitor` with the selected
/// checks. Called through [`AqedHarness`](crate::AqedHarness); exposed for
/// tests and custom flows.
///
/// # Panics
///
/// Panics if `common_field` is out of range for the data width, or if the
/// SAC spec returns the wrong width.
pub fn attach_monitor(
    lca: &Lca,
    pool: &mut ExprPool,
    fc: Option<&FcConfig>,
    rb: Option<&RbConfig>,
    sac: Option<&SacConfig<'_>>,
) -> (TransitionSystem, MonitorHandles) {
    let mut composed = lca.ts.clone();
    let mut mon = TransitionSystem::new(format!("{}_aqed", lca.ts.name()));

    let cw = fc
        .map(|c| c.counter_width)
        .unwrap_or(8)
        .max(rb.map(|c| c.counter_width).unwrap_or(1));

    let action_e = pool.var_expr(lca.action);
    let data_e = pool.var_expr(lca.data);
    let rdh_e = pool.var_expr(lca.rdh);
    let cap = lca.captured;
    let del = lca.delivered;
    let out = lca.out;
    let rdin = lca.rdin;

    // --- BMC-controlled labels --------------------------------------
    let is_orig = mon.add_input(pool, "aqed_is_orig", 1);
    let is_dup = mon.add_input(pool, "aqed_is_dup", 1);
    let is_orig_e = pool.var_expr(is_orig);
    let is_dup_e = pool.var_expr(is_dup);

    // --- Shared orig/dup labeling state (paper aqed_in) ---------------
    let aw = pool.var_width(lca.action);
    let dw = pool.var_width(lca.data);
    let ow = pool.width(out);

    let orig_labeled = mon.add_register(pool, "aqed_orig_labeled", 1, 0);
    let dup_labeled = mon.add_register(pool, "aqed_dup_labeled", 1, 0);
    let orig_action = mon.add_register(pool, "aqed_orig_action", aw, 0);
    let orig_data = mon.add_register(pool, "aqed_orig_data", dw, 0);
    let orig_out = mon.add_register(pool, "aqed_orig_out", ow, 0);
    let orig_done = mon.add_register(pool, "aqed_orig_done", 1, 0);
    let dup_done = mon.add_register(pool, "aqed_dup_done", 1, 0);
    let in_ct = mon.add_register(pool, "aqed_in_ct", cw, 0);
    let out_ct = mon.add_register(pool, "aqed_out_ct", cw, 0);
    let orig_idx = mon.add_register(pool, "aqed_orig_idx", cw, 0);
    let dup_idx = mon.add_register(pool, "aqed_dup_idx", cw, 0);

    let orig_labeled_e = pool.var_expr(orig_labeled);
    let dup_labeled_e = pool.var_expr(dup_labeled);
    let orig_action_e = pool.var_expr(orig_action);
    let orig_data_e = pool.var_expr(orig_data);
    let orig_out_e = pool.var_expr(orig_out);
    let orig_done_e = pool.var_expr(orig_done);
    let dup_done_e = pool.var_expr(dup_done);
    let in_ct_e = pool.var_expr(in_ct);
    let out_ct_e = pool.var_expr(out_ct);
    let orig_idx_e = pool.var_expr(orig_idx);
    let dup_idx_e = pool.var_expr(dup_idx);

    // label_orig: this capture is marked original.
    let not_orig_labeled = pool.not(orig_labeled_e);
    let label_orig = pool.and_all([cap, is_orig_e, not_orig_labeled]);

    // label_dup: a later capture carrying the same (action, data).
    let same_action = pool.eq(action_e, orig_action_e);
    let same_data = pool.eq(data_e, orig_data_e);
    let same_ad = pool.and(same_action, same_data);
    let not_dup_labeled = pool.not(dup_labeled_e);
    let not_label_orig = pool.not(label_orig);
    let label_dup = pool.and_all([
        cap,
        is_dup_e,
        orig_labeled_e,
        not_dup_labeled,
        same_ad,
        not_label_orig,
    ]);

    // Register updates.
    let next_orig_labeled = pool.or(orig_labeled_e, label_orig);
    mon.set_next(orig_labeled, next_orig_labeled);
    let next_dup_labeled = pool.or(dup_labeled_e, label_dup);
    mon.set_next(dup_labeled, next_dup_labeled);
    let na = pool.ite(label_orig, action_e, orig_action_e);
    mon.set_next(orig_action, na);
    let nd = pool.ite(label_orig, data_e, orig_data_e);
    mon.set_next(orig_data, nd);
    let noi = pool.ite(label_orig, in_ct_e, orig_idx_e);
    mon.set_next(orig_idx, noi);
    let ndi = pool.ite(label_dup, in_ct_e, dup_idx_e);
    mon.set_next(dup_idx, ndi);

    // Saturating counters of captured inputs and delivered outputs.
    let ones_cw = pool.constant(aqed_bitvec::Bv::ones(cw));
    let one_cw = pool.lit(cw, 1);
    let in_sat = pool.eq(in_ct_e, ones_cw);
    let in_inc = pool.add(in_ct_e, one_cw);
    let in_bump = pool.ite(in_sat, in_ct_e, in_inc);
    let next_in_ct = pool.ite(cap, in_bump, in_ct_e);
    mon.set_next(in_ct, next_in_ct);
    let out_sat = pool.eq(out_ct_e, ones_cw);
    let out_inc = pool.add(out_ct_e, one_cw);
    let out_bump = pool.ite(out_sat, out_ct_e, out_inc);
    let next_out_ct = pool.ite(del, out_bump, out_ct_e);
    mon.set_next(out_ct, next_out_ct);

    // The orig's output is the ORIG_IDX-th delivered output (outputs are
    // delivered in capture order for this accelerator class).
    let at_orig_out = pool.eq(out_ct_e, orig_idx_e);
    let orig_out_now = pool.and_all([del, orig_labeled_e, at_orig_out]);
    let latch_orig_out = {
        let nod = pool.not(orig_done_e);
        pool.and(orig_out_now, nod)
    };
    let noo = pool.ite(latch_orig_out, out, orig_out_e);
    mon.set_next(orig_out, noo);
    let next_orig_done = pool.or(orig_done_e, orig_out_now);
    mon.set_next(orig_done, next_orig_done);

    // The duplicate's output arrives at DUP_IDX.
    let at_dup_out = pool.eq(out_ct_e, dup_idx_e);
    let dup_out_now = pool.and_all([del, dup_labeled_e, at_dup_out, orig_done_e]);
    let next_dup_done = pool.or(dup_done_e, dup_out_now);
    mon.set_next(dup_done, next_dup_done);

    let mut bad_names = Vec::new();

    // --- FC property --------------------------------------------------
    if let Some(fc_cfg) = fc {
        // Combinational check at the duplicate's delivery: matches the
        // paper's `dup_done → fc_check` but fires in the delivery cycle
        // for a minimal counterexample.
        let outputs_differ = pool.ne(out, orig_out_e);
        let fc_bad = pool.and(dup_out_now, outputs_differ);
        composed_bad(&mut mon, BAD_FC, fc_bad, &mut bad_names);

        if fc_cfg.check_early_output {
            // Strengthened FC (paper footnote 1): delivering output #k
            // requires at least k+1 captured inputs. Once the saturating
            // counters peg at their maximum the comparison loses meaning
            // (only relevant to concrete runs far longer than any BMC
            // bound), so the check is gated on non-saturation.
            let early = pool.uge(out_ct_e, in_ct_e);
            let not_saturated = pool.not(in_sat);
            let early_bad = pool.and_all([del, early, not_saturated]);
            composed_bad(&mut mon, BAD_FC_EARLY, early_bad, &mut bad_names);
        }

        if let Some((hi, lo)) = fc_cfg.common_field {
            assert!(
                hi >= lo && hi < dw,
                "common_field ({hi}, {lo}) out of range for data width {dw}"
            );
            // Environment constraint: the common field (e.g. an AES key)
            // is identical across every captured input of the trace.
            let field_w = hi - lo + 1;
            let key_reg = mon.add_register(pool, "aqed_common_key", field_w, 0);
            let key_seen = mon.add_register(pool, "aqed_common_key_seen", 1, 0);
            let key_reg_e = pool.var_expr(key_reg);
            let key_seen_e = pool.var_expr(key_seen);
            let field = pool.extract(data_e, hi, lo);
            let first = {
                let ns = pool.not(key_seen_e);
                pool.and(cap, ns)
            };
            let nk = pool.ite(first, field, key_reg_e);
            mon.set_next(key_reg, nk);
            let nseen = pool.or(key_seen_e, cap);
            mon.set_next(key_seen, nseen);
            // Constraint: a capture after the first must present the key.
            let same_key = pool.eq(field, key_reg_e);
            let relevant = pool.and(cap, key_seen_e);
            let ok = pool.implies(relevant, same_key);
            mon.add_constraint(ok);
        }
    }

    // --- RB properties --------------------------------------------------
    if let Some(rb_cfg) = rb {
        let rcw = rb_cfg.counter_width;
        // Part (1): rdin must not stay low for rdin_bound cycles.
        let no_rdin = mon.add_register(pool, "aqed_no_rdin_ct", rcw, 0);
        let no_rdin_e = pool.var_expr(no_rdin);
        let one_r = pool.lit(rcw, 1);
        let zero_r = pool.lit(rcw, 0);
        let ones_r = pool.constant(aqed_bitvec::Bv::ones(rcw));
        let sat = pool.eq(no_rdin_e, ones_r);
        let inc = pool.add(no_rdin_e, one_r);
        let bumped = pool.ite(sat, no_rdin_e, inc);
        // Only count cycles where the host is ready to drain outputs:
        // backpressure caused by a stalled host is not the accelerator's
        // fault. A cycle with rdin high resets the counter; a host-stall
        // cycle holds it.
        let starving_now = {
            let nr = pool.not(rdin);
            let base = pool.and(nr, rdh_e);
            // Cycles where the environment froze the clock don't count.
            match lca.clock_enable {
                Some(ce) => {
                    let cee = pool.var_expr(ce);
                    pool.and(base, cee)
                }
                None => base,
            }
        };
        let counted = pool.ite(starving_now, bumped, no_rdin_e);
        let nn = pool.ite(rdin, zero_r, counted);
        mon.set_next(no_rdin, nn);
        let bound = pool.lit(rcw, rb_cfg.rdin_bound);
        let starved = pool.uge(no_rdin_e, bound);
        composed_bad(&mut mon, BAD_RB_STARVATION, starved, &mut bad_names);

        // Part (2): once the labeled input is captured, count host-ready
        // cycles (cnt_rdh) and further captured inputs (cnt_in); after
        // cnt_rdh ≥ τ and cnt_in ≥ in_min the output must have arrived.
        let cnt_rdh = mon.add_register(pool, "aqed_cnt_rdh", rcw, 0);
        let cnt_in = mon.add_register(pool, "aqed_cnt_in", rcw, 0);
        let cnt_rdh_e = pool.var_expr(cnt_rdh);
        let cnt_in_e = pool.var_expr(cnt_in);
        let inmin_l = pool.lit(rcw, rb_cfg.in_min);
        // The τ clock only starts once the accelerator has received the
        // inputs it legitimately needs (`cnt_in ≥ in_min`): a slow
        // *producer* must not be blamed on the accelerator.
        let inputs_supplied = pool.uge(cnt_in_e, inmin_l);
        let enabled_now = match lca.clock_enable {
            Some(ce) => pool.var_expr(ce),
            None => pool.true_(),
        };
        let tick_rdh = pool.and_all([orig_labeled_e, rdh_e, inputs_supplied, enabled_now]);
        let rsat = pool.eq(cnt_rdh_e, ones_r);
        let rinc = pool.add(cnt_rdh_e, one_r);
        let rbump = pool.ite(rsat, cnt_rdh_e, rinc);
        let nrdh = pool.ite(tick_rdh, rbump, cnt_rdh_e);
        mon.set_next(cnt_rdh, nrdh);
        let counts_in = pool.or(orig_labeled_e, label_orig);
        let tick_in = pool.and(counts_in, cap);
        let isat = pool.eq(cnt_in_e, ones_r);
        let iinc = pool.add(cnt_in_e, one_r);
        let ibump = pool.ite(isat, cnt_in_e, iinc);
        let nin = pool.ite(tick_in, ibump, cnt_in_e);
        mon.set_next(cnt_in, nin);

        let tau_l = pool.lit(rcw, rb_cfg.tau);
        let enough_rdh = pool.uge(cnt_rdh_e, tau_l);
        let enough_in = inputs_supplied;
        let not_done = pool.not(orig_done_e);
        let unresponsive = pool.and_all([orig_labeled_e, enough_rdh, enough_in, not_done]);
        composed_bad(&mut mon, BAD_RB_NO_OUTPUT, unresponsive, &mut bad_names);
    }

    // --- SAC property --------------------------------------------------
    if let Some(sac_cfg) = sac {
        let expected = (sac_cfg.spec)(pool, orig_action_e, orig_data_e);
        assert!(
            pool.width(expected) == ow,
            "SAC spec returned width {} but output is {} bits",
            pool.width(expected),
            ow
        );
        let differs = pool.ne(out, expected);
        let sac_bad = {
            let nod = pool.not(orig_done_e);
            pool.and_all([del, orig_labeled_e, at_orig_out, nod, differs])
        };
        composed_bad(&mut mon, BAD_SAC, sac_bad, &mut bad_names);
    }

    let handles = MonitorHandles {
        is_orig,
        is_dup,
        bad_names,
        orig_done: orig_done_e,
        dup_done: dup_done_e,
    };
    composed.compose(&mon);
    (composed, handles)
}

fn composed_bad(mon: &mut TransitionSystem, name: &str, expr: ExprRef, names: &mut Vec<String>) {
    mon.add_bad(name, expr);
    names.push(name.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_hls::{synthesize, AccelSpec, SynthOptions};

    #[test]
    fn monitor_composes_and_validates() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("id", 2, 8, 8);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
        let fc = FcConfig::default();
        let rb = RbConfig::default();
        let spec_fn: crate::SpecFn = &|_pool: &mut ExprPool, _a, d| d;
        let sac = SacConfig { spec: spec_fn };
        let (composed, handles) = attach_monitor(&lca, &mut p, Some(&fc), Some(&rb), Some(&sac));
        composed.validate(&p).expect("composed system well-formed");
        assert_eq!(handles.bad_names.len(), 5);
        assert!(composed.bad_index(BAD_FC).is_some());
        assert!(composed.bad_index(BAD_RB_NO_OUTPUT).is_some());
        assert!(composed.bad_index(BAD_SAC).is_some());
    }

    #[test]
    fn common_field_adds_constraint() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("keyed", 2, 16, 8);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |pool, _a, d| {
            pool.extract(d, 7, 0)
        });
        let fc = FcConfig {
            common_field: Some((15, 8)),
            ..FcConfig::default()
        };
        let before = lca.ts.constraints().len();
        let (composed, _) = attach_monitor(&lca, &mut p, Some(&fc), None, None);
        composed.validate(&p).expect("valid");
        assert_eq!(composed.constraints().len(), before + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn common_field_range_checked() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("keyed", 2, 8, 8);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
        let fc = FcConfig {
            common_field: Some((12, 8)),
            ..FcConfig::default()
        };
        let _ = attach_monitor(&lca, &mut p, Some(&fc), None, None);
    }

    #[test]
    #[should_panic(expected = "SAC spec returned width")]
    fn sac_width_checked() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("id", 2, 8, 8);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
        let bad_spec: crate::SpecFn = &|pool: &mut ExprPool, _a, _d| pool.lit(4, 0);
        let sac = SacConfig { spec: bad_spec };
        let _ = attach_monitor(&lca, &mut p, None, None, Some(&sac));
    }
}
