//! Obligation-level orchestration of A-QED checks.
//!
//! The A-QED² observation is that many small independent checks beat one
//! monolithic "any property, any depth" query. This module materializes
//! each bad property of the composed design+monitor system as an
//! [`Obligation`] and runs the obligations as independent BMC jobs on a
//! scoped thread pool ([`std::thread::scope`] — no runtime dependency).
//!
//! The merged verdict is deterministic: it depends only on the
//! per-obligation results, never on thread scheduling, so `jobs = 1` and
//! `jobs = N` always agree (fail-fast mode deliberately trades this for
//! latency — see [`ScheduleOptions::fail_fast`]).
//!
//! Cone-of-influence slicing happens *per obligation* inside
//! `Bmc::check_under` (each job selects one bad, so each gets its own
//! slice of the composed system); the scheduler itself is structurally
//! unchanged by the simplification pipeline and merely aggregates the
//! per-job `coi_latches_kept`/`coi_latches_dropped` counters.
//!
//! # Resource governance and fault tolerance
//!
//! [`verify_obligations_scheduled`] layers a governance regime over the
//! plain pool:
//!
//! * **Shared deadline** — `options.budget` is armed once for the whole
//!   run; every job solves under a child of that armed budget, so the
//!   wall clock keeps running across obligations and a single deadline
//!   bounds the run.
//! * **Cooperative cancellation** — in fail-fast mode the first
//!   validated bug cancels the root budget; running solvers notice at
//!   their next budget poll and drain, queued obligations return
//!   immediately as `Inconclusive {reason: Cancelled}`.
//! * **Watchdog** — a monitor thread escalates jobs that exceed
//!   [`ScheduleOptions::obligation_timeout`] by tripping their private
//!   stop handle, and enforces the global deadline even against backends
//!   that ignore budgets.
//! * **Panic isolation** — each obligation runs under
//!   [`std::panic::catch_unwind`]; a dying worker degrades only its own
//!   obligation to [`CheckOutcome::Errored`] and sets the report's
//!   `degraded` flag instead of aborting the run.
//! * **Retry escalation** — an obligation stopped by its conflict budget
//!   is retried with the budget doubled, up to
//!   [`ScheduleOptions::max_attempts`].
//! * **Witness self-validation** — every SAT verdict is replayed on the
//!   concrete simulator before being reported; a mismatch becomes a loud
//!   `UnsoundWitness` error, never a silently trusted bug report.

use crate::artifact::{cone_hash, design_hash, ArtifactStore};
use crate::verify::{validated_bug, CheckOutcome, PropertyKind};
use aqed_bmc::{
    ArmedBudget, Bmc, BmcOptions, BmcResult, BmcStats, Counterexample, LearntPack, StopReason,
    WarmStart,
};
use aqed_expr::ExprPool;
use aqed_obs::obs_event;
use aqed_sat::{SatBackend, Solver, StopHandle};
use aqed_tsys::{coi_slice_cached, CoiCache, CoiSlice, TransitionSystem};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// One independent proof obligation: a single bad property of the
/// composed design+monitor system, checked in isolation.
#[derive(Debug, Clone)]
pub struct Obligation {
    /// Index of the property in the composed system's bad list.
    pub bad_index: usize,
    /// Name of the bad property.
    pub bad_name: String,
    /// Which universal property the bad belongs to.
    pub property: PropertyKind,
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ({})",
            self.bad_index, self.bad_name, self.property
        )
    }
}

/// Scheduling policy for an obligation-scheduled verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// Maximum worker threads (clamped to the obligation count; minimum 1).
    pub jobs: usize,
    /// Cancel the remaining obligations as soon as one finds a validated
    /// counterexample. Lowers latency to first bug but makes sibling
    /// verdicts scheduling-dependent (cancelled jobs report
    /// `Inconclusive {reason: Cancelled}`).
    pub fail_fast: bool,
    /// Maximum solve attempts per obligation. After an attempt stops on
    /// its conflict budget, the budget is doubled and the obligation
    /// retried, up to this many attempts total.
    pub max_attempts: u32,
    /// Per-obligation wall-clock limit, enforced by the watchdog thread:
    /// a job running longer has its private stop handle tripped and
    /// reports `Inconclusive {reason: Cancelled}`.
    pub obligation_timeout: Option<Duration>,
    /// Warm-start incremental re-verification (default on; inert
    /// without an artifact store or with COI slicing disabled). Each
    /// obligation derives a *cone key* — the content hash of its COI
    /// slice — and (a) reuses a stored definitive verdict under that
    /// key verbatim (bugs replay-validated against the current design
    /// first), (b) skips re-solving frames a stored clean fact already
    /// covers, and (c) injects the stored learnt-clause pack before the
    /// first unsolved frame. Verdicts are identical with and without
    /// warm-start; see `ArtifactStore` for the soundness gates.
    pub warm_start: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            jobs: 1,
            fail_fast: false,
            max_attempts: 3,
            obligation_timeout: None,
            warm_start: true,
        }
    }
}

impl ScheduleOptions {
    /// Returns the options with the given worker count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Returns the options with fail-fast cancellation enabled or
    /// disabled.
    #[must_use]
    pub fn with_fail_fast(mut self, fail_fast: bool) -> Self {
        self.fail_fast = fail_fast;
        self
    }

    /// Returns the options with the given retry cap.
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Returns the options with a per-obligation watchdog timeout.
    #[must_use]
    pub fn with_obligation_timeout(mut self, timeout: Duration) -> Self {
        self.obligation_timeout = Some(timeout);
        self
    }

    /// Returns the options with warm-start reuse enabled or disabled.
    #[must_use]
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }
}

/// Cross-request context for a governed run: what
/// [`verify_obligations_governed`] adds over the per-run
/// [`ScheduleOptions`].
#[derive(Debug, Clone, Default)]
pub struct RunContext {
    /// Cross-request artifact cache. When set, the run seeds its
    /// per-run COI cache from the store, answers obligations with
    /// definitive cached verdicts without solving, and donates new
    /// cones and verdicts back afterwards.
    pub artifacts: Option<Arc<ArtifactStore>>,
    /// External cancellation: the run's budget is armed with a child of
    /// this handle, so tripping it (Ctrl-C, a client cancel request)
    /// drains the run as `Inconclusive {reason: Cancelled}` without
    /// affecting sibling runs under the same parent.
    pub stop: Option<StopHandle>,
    /// Per-job resource attribution. When set, workers fold each
    /// obligation's terminal stats into the meter as they finish, so a
    /// concurrent reader (heartbeat thread, `stats` scrape) sees the
    /// job's phase breakdown and solver totals while it runs.
    pub meter: Option<Arc<aqed_obs::JobMeter>>,
}

impl RunContext {
    /// A context that only attaches an artifact store.
    #[must_use]
    pub fn with_artifacts(store: Arc<ArtifactStore>) -> Self {
        RunContext {
            artifacts: Some(store),
            stop: None,
            meter: None,
        }
    }
}

/// Verdict and statistics of one obligation's BMC run.
#[derive(Debug, Clone)]
pub struct ObligationReport {
    /// The obligation that was checked.
    pub obligation: Obligation,
    /// Verdict for this property alone.
    pub outcome: CheckOutcome,
    /// Solver statistics of this job's run (summed over retries).
    pub stats: BmcStats,
    /// Solve attempts made (> 1 when conflict-budget retries escalated;
    /// 0 when the job was cancelled before it started or answered from
    /// the artifact cache).
    pub attempts: u32,
    /// Wall-clock time this obligation spent on a worker, across all
    /// attempts (zero when it was drained without running).
    pub wall: Duration,
    /// Whether the verdict was served from the cross-request artifact
    /// store instead of being solved.
    pub cache_hit: bool,
}

/// Aggregate report of an obligation-scheduled verification run.
#[derive(Debug, Clone)]
pub struct ParallelVerifyReport {
    /// Merged verdict; identical for every `jobs` value (except under
    /// fail-fast, which is scheduling-dependent by design).
    pub outcome: CheckOutcome,
    /// Per-obligation reports, in bad-index order.
    pub obligations: Vec<ObligationReport>,
    /// Statistics folded over all obligations with [`BmcStats::absorb`]:
    /// counters add up, `elapsed` is total solver time (exceeds
    /// wall-clock when jobs overlap).
    pub aggregate: BmcStats,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Wall-clock time of the whole run.
    pub runtime: Duration,
    /// Whether any obligation degraded to [`CheckOutcome::Errored`]
    /// (worker panic or unsound witness). A degraded run's clean
    /// verdicts still hold, but coverage is incomplete.
    pub degraded: bool,
    /// How many stuck jobs the watchdog cancelled.
    pub watchdog_trips: u64,
    /// Obligations answered from the cross-request artifact store
    /// without solving (always 0 without a [`RunContext`] store).
    pub cache_hits: u64,
}

impl ParallelVerifyReport {
    /// Whether the merged verdict is a bug.
    #[must_use]
    pub fn found_bug(&self) -> bool {
        matches!(self.outcome, CheckOutcome::Bug { .. })
    }

    /// The merged counterexample, if the verdict is a bug.
    #[must_use]
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match &self.outcome {
            CheckOutcome::Bug { counterexample, .. } => Some(counterexample),
            _ => None,
        }
    }

    /// The counterexample length in clock cycles, if a bug was found.
    #[must_use]
    pub fn cex_cycles(&self) -> Option<usize> {
        self.counterexample().map(Counterexample::cycles)
    }

    /// The process exit code the CLI taxonomy assigns this report:
    /// 0 clean, 1 bug, 2 inconclusive / errored / degraded-clean.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match &self.outcome {
            CheckOutcome::Bug { .. } => 1,
            // A degraded run cannot vouch for full coverage even when
            // every surviving obligation came back clean.
            CheckOutcome::Clean { .. } => {
                if self.degraded {
                    2
                } else {
                    0
                }
            }
            CheckOutcome::Inconclusive { .. } | CheckOutcome::Errored { .. } => 2,
        }
    }
}

impl fmt::Display for ParallelVerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            CheckOutcome::Clean { bound } => write!(f, "clean up to bound {bound}")?,
            CheckOutcome::Bug {
                property,
                counterexample,
            } => write!(f, "{property} bug: {counterexample}")?,
            CheckOutcome::Inconclusive { bound, reason } => {
                write!(f, "inconclusive at bound {bound} ({reason})")?;
            }
            CheckOutcome::Errored { message } => write!(f, "errored: {message}")?,
        }
        write!(
            f,
            " ({} obligations, {} jobs, {:?}",
            self.obligations.len(),
            self.jobs,
            self.runtime
        )?;
        if self.degraded {
            write!(f, ", degraded")?;
        }
        write!(f, ")")
    }
}

/// Runs every bad property of `composed` as an independent BMC obligation
/// on up to `jobs` worker threads, using the default CDCL backend.
///
/// See [`verify_obligations_with`] for the backend-generic form and the
/// merge semantics.
#[must_use]
pub fn verify_obligations(
    composed: &TransitionSystem,
    pool: &ExprPool,
    options: &BmcOptions,
    jobs: usize,
) -> ParallelVerifyReport {
    verify_obligations_with::<Solver>(composed, pool, options, jobs)
}

/// Runs every bad property of `composed` as an independent BMC obligation
/// on up to `jobs` worker threads, each job building its own backend `B`.
///
/// Equivalent to [`verify_obligations_scheduled`] with the default
/// [`ScheduleOptions`] at the given worker count: no fail-fast, no
/// per-obligation timeout, conflict-budget retries enabled.
///
/// Each job clones the expression pool (unrolling allocates fresh
/// expressions), but counterexamples only reference the system's original
/// variables, so they remain valid against the caller's pool — e.g. for
/// VCD export or simulator replay.
///
/// Merge semantics, independent of scheduling order: the bug with the
/// smallest `(depth, bad_index)` wins; otherwise the first errored
/// obligation; otherwise the shallowest inconclusive bound; otherwise
/// clean at `options.max_bound`.
///
/// # Panics
///
/// Panics if `composed` has no bad properties or a bad name is not one
/// of the A-QED monitor's. Worker panics do *not* propagate: they
/// degrade their own obligation to [`CheckOutcome::Errored`].
#[must_use]
pub fn verify_obligations_with<B: SatBackend + Default>(
    composed: &TransitionSystem,
    pool: &ExprPool,
    options: &BmcOptions,
    jobs: usize,
) -> ParallelVerifyReport {
    let sched = ScheduleOptions::default().with_jobs(jobs);
    verify_obligations_scheduled::<B>(composed, pool, options, &sched)
}

/// The fully governed obligation scheduler: shared deadline, cooperative
/// cancellation, watchdog escalation, panic isolation, retry escalation,
/// and witness self-validation (detailed at the top of this module's
/// source).
///
/// `options.budget` is armed once when the run starts; its deadline and
/// caps govern every job through child budgets.
///
/// # Panics
///
/// Panics if `composed` has no bad properties or a bad name is not one
/// of the A-QED monitor's. Worker panics degrade their obligation
/// instead of propagating.
#[must_use]
pub fn verify_obligations_scheduled<B: SatBackend + Default>(
    composed: &TransitionSystem,
    pool: &ExprPool,
    options: &BmcOptions,
    sched: &ScheduleOptions,
) -> ParallelVerifyReport {
    verify_obligations_governed::<B>(composed, pool, options, sched, &RunContext::default())
}

/// [`verify_obligations_scheduled`] plus cross-request context: an
/// optional [`ArtifactStore`] (cone reuse + definitive-verdict cache)
/// and an optional external [`StopHandle`] for cancellation from
/// outside the run (signal handlers, a server's per-job cancel).
///
/// With a store, the run computes the composed system's content hash
/// once, seeds its per-run COI cache from the store, serves obligations
/// whose definitive verdict (clean to a covering bound, or a replaying
/// counterexample within bound) is already known — marked `cache_hit`
/// in their reports — and donates new cones and verdicts back when the
/// run completes. Verdicts are identical with and without the store; a
/// stale or colliding entry degrades to a miss via witness replay,
/// never to a wrong verdict.
///
/// # Panics
///
/// Panics if `composed` has no bad properties or a bad name is not one
/// of the A-QED monitor's. Worker panics degrade their obligation
/// instead of propagating.
#[must_use]
pub fn verify_obligations_governed<B: SatBackend + Default>(
    composed: &TransitionSystem,
    pool: &ExprPool,
    options: &BmcOptions,
    sched: &ScheduleOptions,
    ctx: &RunContext,
) -> ParallelVerifyReport {
    let start = Instant::now();
    let obligations: Vec<Obligation> = composed
        .bads()
        .iter()
        .enumerate()
        .map(|(i, (name, _))| Obligation {
            bad_index: i,
            bad_name: name.clone(),
            property: PropertyKind::of_bad(name),
        })
        .collect();
    assert!(
        !obligations.is_empty(),
        "system '{}' has no bad properties to check",
        composed.name()
    );
    let total = obligations.len();
    let workers = sched.jobs.clamp(1, total);
    let mut run_span = aqed_obs::span("verify.run");
    if run_span.is_active() {
        run_span.record("system", composed.name());
        run_span.record("obligations", total as u64);
        run_span.record("jobs", workers as u64);
        for ob in &obligations {
            obs_event!(
                "obligation.queued",
                index = ob.bad_index as u64,
                name = ob.bad_name.as_str(),
                property = ob.property.to_string()
            );
        }
    }
    // One COI cache per run: every obligation slices the same composed
    // system, and the expensive half of the fixpoint (the per-state
    // support index) is identical across all of them. With an artifact
    // store, cones memoized by earlier runs of the same design are
    // transplanted in before any obligation runs.
    let coi_cache = Arc::new(CoiCache::new());
    let store: Option<(&ArtifactStore, u64)> = ctx
        .artifacts
        .as_deref()
        .map(|s| (s, design_hash(composed, pool)));
    if let Some((s, h)) = store {
        let seeded = s.seed_coi_cache(h, composed, &coi_cache);
        if run_span.is_active() {
            run_span.record("cones_seeded", seeded as u64);
        }
    }
    let armed = match &ctx.stop {
        Some(stop) => ArmedBudget::arm_with(&options.budget, stop.child()),
        None => ArmedBudget::arm(&options.budget),
    };
    let meter = ctx.meter.as_deref();
    if let Some(m) = meter {
        m.set_obligations_total(total as u64);
        m.set_phase(aqed_obs::MeterPhase::Running);
    }
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let watchdog_trips = AtomicU64::new(0);
    let results: Mutex<Vec<(usize, ObligationReport)>> = Mutex::new(Vec::with_capacity(total));
    let active: ActiveJobs = Mutex::new(HashMap::new());
    std::thread::scope(|scope| {
        // The watchdog enforces wall-clock limits even against backends
        // that never poll their budget: it trips stop handles, which the
        // CDCL solver honours at its next coarse check, and which the
        // pre-claim poll honours for not-yet-started obligations. Only
        // spawned when some wall-clock limit exists.
        if sched.obligation_timeout.is_some() || options.budget.timeout.is_some() {
            scope.spawn(|| {
                while completed.load(Ordering::Acquire) < total {
                    std::thread::sleep(Duration::from_millis(2));
                    if armed.poll() == Some(StopReason::Deadline) {
                        armed.cancel();
                    }
                    if let Some(limit) = sched.obligation_timeout {
                        let now = Instant::now();
                        for (started, stop) in lock_unpoisoned(&active).values() {
                            if now.duration_since(*started) > limit && !stop.is_requested() {
                                stop.request_stop();
                                watchdog_trips.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        for _ in 0..workers {
            scope.spawn(|| {
                // Route the solver's mid-solve progress samples to this
                // job's meter for live heartbeat attribution.
                aqed_obs::meter::set_thread_meter(ctx.meter.clone());
                worker_loop::<B>(
                    composed,
                    pool,
                    options,
                    sched,
                    &obligations,
                    &next,
                    &completed,
                    &armed,
                    &active,
                    &results,
                    &coi_cache,
                    store,
                    meter,
                );
                // Scoped threads signal completion before their TLS
                // destructors run, so the drop-flush of the trace buffer
                // races against the caller uninstalling the sink. Flush
                // here, while the scope (and thus the sink) is alive.
                aqed_obs::meter::set_thread_meter(None);
                aqed_obs::flush_local();
            });
        }
    });
    let mut ranked = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    ranked.sort_by_key(|&(i, _)| i);
    let reports: Vec<ObligationReport> = ranked.into_iter().map(|(_, r)| r).collect();
    let mut aggregate = BmcStats::default();
    for r in &reports {
        aggregate.absorb(&r.stats);
    }
    let outcome = merge_outcome(&reports, options.max_bound);
    let degraded = reports
        .iter()
        .any(|r| matches!(r.outcome, CheckOutcome::Errored { .. }));
    let cache_hits = reports.iter().filter(|r| r.cache_hit).count() as u64;
    // Donate this run's freshly computed cones to the store so later
    // requests on the same design skip the support fixpoint entirely.
    if let Some((s, h)) = store {
        s.absorb_cones(h, composed, &coi_cache);
    }
    if run_span.is_active() {
        run_span.record("outcome", outcome_code(&outcome));
        run_span.record("degraded", degraded);
        run_span.record("coi_cache_hits", coi_cache.hits());
        run_span.record("coi_cache_misses", coi_cache.misses());
        run_span.record("artifact_cache_hits", cache_hits);
    }
    ParallelVerifyReport {
        outcome,
        obligations: reports,
        aggregate,
        jobs: workers,
        runtime: start.elapsed(),
        degraded,
        watchdog_trips: watchdog_trips.load(Ordering::Relaxed),
        cache_hits,
    }
}

/// Watchdog bookkeeping: when each in-flight job started and the
/// private stop handle to trip if it overstays.
type ActiveJobs = Mutex<HashMap<usize, (Instant, StopHandle)>>;

/// One worker's claim-check-report loop, extracted so the spawn closure
/// can run a trace flush after it returns.
#[allow(clippy::too_many_arguments)]
fn worker_loop<B: SatBackend + Default>(
    composed: &TransitionSystem,
    pool: &ExprPool,
    options: &BmcOptions,
    sched: &ScheduleOptions,
    obligations: &[Obligation],
    next: &AtomicUsize,
    completed: &AtomicUsize,
    armed: &ArmedBudget,
    active: &ActiveJobs,
    results: &Mutex<Vec<(usize, ObligationReport)>>,
    coi_cache: &Arc<CoiCache>,
    store: Option<(&ArtifactStore, u64)>,
    meter: Option<&aqed_obs::JobMeter>,
) {
    loop {
        let idx = next.fetch_add(1, Ordering::Relaxed);
        let Some(ob) = obligations.get(idx) else {
            break;
        };
        let report = if let Some(reason) = armed.poll() {
            // Deadline already passed or the run was cancelled: drain the
            // queue without solving so every obligation still gets a
            // report.
            obs_event!(
                "obligation.cancelled",
                index = ob.bad_index as u64,
                reason = reason.to_string()
            );
            ObligationReport {
                obligation: ob.clone(),
                outcome: CheckOutcome::Inconclusive { bound: 0, reason },
                stats: BmcStats::default(),
                attempts: 0,
                wall: Duration::ZERO,
                cache_hit: false,
            }
        } else if let Some(cached) = store.and_then(|(s, h)| {
            s.lookup_outcome(
                h,
                ob.bad_index,
                &ob.bad_name,
                options.max_bound,
                composed,
                pool,
            )
        }) {
            // A definitive verdict for this (design, bad, bound) is
            // already known; serve it without touching a solver.
            obs_event!(
                "obligation.cached",
                index = ob.bad_index as u64,
                outcome = outcome_code(&cached)
            );
            ObligationReport {
                obligation: ob.clone(),
                outcome: cached,
                stats: BmcStats::default(),
                attempts: 0,
                wall: Duration::ZERO,
                cache_hit: true,
            }
        } else {
            // Warm-start: derive the obligation's cone key (content
            // hash of its COI slice). Facts keyed by the cone survive
            // design edits that leave the cone untouched, which the
            // whole-design key above cannot see past. The slice
            // fixpoint is memoized in the shared per-run cache, so this
            // costs one slice build + BTOR2 print per obligation.
            let warm_info: Option<(&ArtifactStore, u64, CoiSlice)> = if sched.warm_start
                && options.coi
            {
                store.map(|(s, _)| {
                    let slice =
                        coi_slice_cached(composed, pool, &[ob.bad_index], Some(coi_cache.as_ref()));
                    let cone = cone_hash(&slice, pool);
                    (s, cone, slice)
                })
            } else {
                None
            };
            let reused = warm_info.as_ref().and_then(|(s, cone, slice)| {
                s.lookup_cone_outcome(
                    *cone,
                    ob.bad_index,
                    &ob.bad_name,
                    options.max_bound,
                    slice,
                    composed,
                    pool,
                )
            });
            if let Some(outcome) = reused {
                // A cone-keyed verdict applies verbatim (bugs were just
                // replayed against *this* design). Re-file it under the
                // current design hash so the next identical request
                // hits the cheaper whole-design path.
                if let Some((s, h)) = store {
                    s.record_outcome(h, ob.bad_index, &ob.bad_name, &outcome, composed);
                }
                obs_event!(
                    "obligation.reused",
                    index = ob.bad_index as u64,
                    outcome = outcome_code(&outcome)
                );
                let stats = BmcStats {
                    verdicts_reused: 1,
                    ..BmcStats::default()
                };
                ObligationReport {
                    obligation: ob.clone(),
                    outcome,
                    stats,
                    attempts: 0,
                    wall: Duration::ZERO,
                    cache_hit: true,
                }
            } else {
                let warm = warm_info.as_ref().map(|(s, cone, _)| WarmStart {
                    skip_to: s.cone_clean_prefix(*cone, &ob.bad_name),
                    pack: s.lookup_learnt_pack(*cone, &ob.bad_name),
                });
                let job = armed.child();
                let started = Instant::now();
                lock_unpoisoned(active).insert(idx, (started, job.stop_handle().clone()));
                // Async span ("b"/"e" with an id): portfolio worker threads
                // and retries attach to this id, so trace tooling can follow
                // one obligation across threads instead of relying on
                // per-thread begin/end nesting.
                let span_id = aqed_obs::next_span_id();
                let mut sp = aqed_obs::async_span("obligation", span_id, Vec::new());
                aqed_obs::set_current_span_id(Some(span_id));
                if sp.is_active() {
                    sp.record("index", ob.bad_index as u64);
                    sp.record("name", ob.bad_name.as_str());
                    sp.record("property", ob.property.to_string());
                }
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    check_obligation::<B>(composed, pool, options, ob, &job, sched, coi_cache, warm)
                }));
                lock_unpoisoned(active).remove(&idx);
                let (report, export) = match caught {
                    Ok(r) => r,
                    Err(payload) => {
                        obs_event!("obligation.panicked", index = ob.bad_index as u64);
                        let report = ObligationReport {
                            obligation: ob.clone(),
                            outcome: CheckOutcome::Errored {
                                message: format!(
                                    "worker panicked: {}",
                                    panic_message(payload.as_ref())
                                ),
                            },
                            stats: BmcStats::default(),
                            attempts: 1,
                            wall: started.elapsed(),
                            cache_hit: false,
                        };
                        (report, None)
                    }
                };
                // Donate a freshly computed definitive verdict (the store
                // ignores budget-limited outcomes) so repeat requests on
                // this design skip the solve.
                if let Some((s, h)) = store {
                    s.record_outcome(h, ob.bad_index, &ob.bad_name, &report.outcome, composed);
                }
                // Donate the cone-keyed fact and the exported learnt
                // pack, so the *next* edit outside this cone reuses both.
                if let Some((s, cone, slice)) = &warm_info {
                    s.record_cone_outcome(*cone, &ob.bad_name, &report.outcome, slice);
                    if let Some(pack) = export {
                        s.record_learnt_pack(*cone, &ob.bad_name, pack);
                    }
                }
                if sp.is_active() {
                    sp.record("outcome", outcome_code(&report.outcome));
                    sp.record("attempts", u64::from(report.attempts));
                }
                drop(sp);
                aqed_obs::set_current_span_id(None);
                report
            }
        };
        if sched.fail_fast && matches!(report.outcome, CheckOutcome::Bug { .. }) {
            armed.cancel();
        }
        if let Some(m) = meter {
            absorb_into_meter(m, &report);
        }
        lock_unpoisoned(results).push((idx, report));
        completed.fetch_add(1, Ordering::Release);
    }
}

/// Folds one terminal obligation report into the job's shared meter.
/// Called once per obligation on whichever path ended it (solved,
/// cached, reused, cancelled, panicked), so the meter's view converges
/// on the final report's aggregate.
fn absorb_into_meter(m: &aqed_obs::JobMeter, r: &ObligationReport) {
    if r.cache_hit {
        m.note_cache_hit();
    }
    m.add_verdicts_reused(r.stats.verdicts_reused);
    m.add_solver(
        r.stats.solver_calls,
        r.stats.solver.conflicts,
        r.stats.solver.propagations,
    );
    m.add_learnts(
        r.stats.solver.learnt_imported,
        r.stats.solver.learnt_discarded,
    );
    m.note_arena_bytes(r.stats.solver.arena_bytes);
    m.add_phase_ns(
        r.stats.coi_micros.saturating_mul(1_000),
        r.stats.solver.preprocess_micros.saturating_mul(1_000),
        r.stats.encode_micros.saturating_mul(1_000),
        r.stats.solve_micros.saturating_mul(1_000),
    );
    m.note_obligation_done();
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Sink pushes and map inserts are single complete operations, so the
/// data is never half-written; one dead worker must not take down the
/// merge.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    }
}

/// A budget-exhausted attempt whose sampled conflict rate reached this
/// many conflicts per second graduates the obligation to the next
/// escalation level — on the portfolio backend, from a single inline
/// solver to the full diversified race. Below it the search is
/// propagation- or memory-bound, where racing N copies of a similar
/// search mostly divides throughput; such obligations retry on one
/// solver with the doubled budget instead.
const PORTFOLIO_ESCALATION_RATE: f64 = 500.0;

/// Runs one obligation to completion on its own pool clone and backend,
/// retrying with doubled conflict budgets while the schedule allows.
/// `warm` seeds the first attempt's frame skipping and learnt-clause
/// injection; retries re-warm themselves from the previous attempt
/// (its proven-clean prefix and exported learnts), since every attempt
/// encodes the identical CNF. Returns the report plus the final
/// attempt's learnt-clause export for donation to the artifact store.
#[allow(clippy::too_many_arguments)]
fn check_obligation<B: SatBackend + Default>(
    composed: &TransitionSystem,
    pool: &ExprPool,
    options: &BmcOptions,
    ob: &Obligation,
    armed: &ArmedBudget,
    sched: &ScheduleOptions,
    coi_cache: &Arc<CoiCache>,
    mut warm: Option<WarmStart>,
) -> (ObligationReport, Option<LearntPack>) {
    let started = Instant::now();
    let mut local_pool = pool.clone();
    let mut stats = BmcStats::default();
    let mut attempts = 0u32;
    let mut conflict_budget = options.conflict_budget;
    let mut escalation = 0u32;
    loop {
        attempts += 1;
        let mut attempt_options = options.clone();
        attempt_options.conflict_budget = conflict_budget;
        // Only steer backend escalation when the retry ladder is live:
        // without a conflict budget there is nothing to exhaust, so a
        // portfolio backend should apply its own default (race at full
        // width immediately) rather than being pinned to one solver.
        if conflict_budget.is_some() && sched.max_attempts > 1 {
            attempt_options.escalation_level = Some(escalation);
        }
        if attempt_options.metrics_scope.is_none() {
            attempt_options.metrics_scope = Some(format!("prop={}", ob.property));
        }
        let attempt_started = Instant::now();
        let conflicts_before = stats.solver.conflicts;
        let mut bmc: Bmc<B> = Bmc::with_backend(composed, attempt_options);
        bmc.set_coi_cache(Arc::clone(coi_cache));
        bmc.select_bad_indices(composed, &[ob.bad_index]);
        if let Some(w) = warm.take() {
            bmc.set_warm_start(w);
        }
        let result = bmc.check_under(composed, &mut local_pool, armed);
        stats.absorb(&bmc.stats());
        let export = bmc.take_learnt_export();
        let outcome = match result {
            BmcResult::Counterexample(cex) => {
                validated_bug(composed, &local_pool, ob.property, cex)
            }
            BmcResult::NoCounterexample { bound } => CheckOutcome::Clean { bound },
            BmcResult::Unknown { bound, reason } => {
                // Escalate: a conflict-budgeted stop is worth retrying
                // with doubled effort, as long as the global budget is
                // still alive and attempts remain.
                if reason == StopReason::Conflicts
                    && conflict_budget.is_some()
                    && attempts < sched.max_attempts
                    && armed.poll().is_none()
                {
                    conflict_budget = conflict_budget.map(|b| b.saturating_mul(2));
                    // Self-warm the retry: frames below the stall point
                    // are proven clean, and the identical re-encoding
                    // can absorb the learnts this attempt derived.
                    warm = Some(WarmStart {
                        skip_to: bound.checked_sub(1),
                        pack: export.clone().filter(|p| !p.is_empty()),
                    });
                    let delta = stats.solver.conflicts.saturating_sub(conflicts_before);
                    #[allow(clippy::cast_precision_loss)]
                    let rate = delta as f64 / attempt_started.elapsed().as_secs_f64().max(1e-6);
                    if rate >= PORTFOLIO_ESCALATION_RATE {
                        escalation += 1;
                        obs_event!(
                            "obligation.escalated",
                            index = ob.bad_index as u64,
                            level = u64::from(escalation),
                            conflict_rate = rate
                        );
                    }
                    obs_event!(
                        "obligation.retry",
                        index = ob.bad_index as u64,
                        attempt = u64::from(attempts),
                        conflict_budget = conflict_budget.unwrap_or(0)
                    );
                    continue;
                }
                CheckOutcome::Inconclusive { bound, reason }
            }
        };
        obs_event!(
            "obligation.done",
            index = ob.bad_index as u64,
            outcome = outcome_code(&outcome),
            reason = match &outcome {
                CheckOutcome::Inconclusive { reason, .. } => reason.to_string(),
                _ => String::new(),
            },
            attempts = u64::from(attempts)
        );
        let report = ObligationReport {
            obligation: ob.clone(),
            outcome,
            stats,
            attempts,
            wall: started.elapsed(),
            cache_hit: false,
        };
        return (report, export.filter(|p| !p.is_empty()));
    }
}

/// Short machine-readable tag for an outcome, used in trace events.
fn outcome_code(outcome: &CheckOutcome) -> &'static str {
    match outcome {
        CheckOutcome::Clean { .. } => "clean",
        CheckOutcome::Bug { .. } => "bug",
        CheckOutcome::Inconclusive { .. } => "inconclusive",
        CheckOutcome::Errored { .. } => "errored",
    }
}

/// Deterministic verdict merge: bug with minimal `(depth, bad_index)`,
/// else the first errored obligation (degradation is louder than a mere
/// budget stop), else the shallowest inconclusive bound, else clean at
/// the full bound.
fn merge_outcome(reports: &[ObligationReport], max_bound: usize) -> CheckOutcome {
    let mut bug: Option<(usize, usize)> = None; // (depth, report index)
    for (i, r) in reports.iter().enumerate() {
        if let CheckOutcome::Bug { counterexample, .. } = &r.outcome {
            let key = (counterexample.depth, i);
            if bug.is_none_or(|b| key < b) {
                bug = Some(key);
            }
        }
    }
    if let Some((_, i)) = bug {
        return reports[i].outcome.clone();
    }
    if let Some(errored) = reports
        .iter()
        .find(|r| matches!(r.outcome, CheckOutcome::Errored { .. }))
    {
        return errored.outcome.clone();
    }
    let mut inconclusive: Option<(usize, usize)> = None; // (bound, report index)
    for (i, r) in reports.iter().enumerate() {
        if let CheckOutcome::Inconclusive { bound, .. } = r.outcome {
            let key = (bound, i);
            if inconclusive.is_none_or(|b| key < b) {
                inconclusive = Some(key);
            }
        }
    }
    match inconclusive {
        Some((_, i)) => reports[i].outcome.clone(),
        None => CheckOutcome::Clean { bound: max_bound },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{FcConfig, RbConfig};
    use crate::AqedHarness;
    use aqed_hls::{synthesize, AccelSpec, SynthOptions};
    use aqed_sat::DimacsBackend;

    fn buggy_harness_report(jobs: usize) -> ParallelVerifyReport {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("inc", 2, 6, 6);
        let lca = synthesize(
            &spec,
            &mut p,
            SynthOptions {
                forwarding_bug: true,
                ..SynthOptions::default()
            },
            |pool, _a, d| {
                let one = pool.lit(6, 1);
                pool.add(d, one)
            },
        );
        AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .with_rb(RbConfig::default())
            .verify_parallel(&mut p, 8, jobs)
    }

    #[test]
    fn jobs_one_and_four_agree() {
        let seq = buggy_harness_report(1);
        let par = buggy_harness_report(4);
        assert!(seq.found_bug() && par.found_bug());
        let (s, p) = (seq.counterexample().unwrap(), par.counterexample().unwrap());
        assert_eq!(s.bad_name, p.bad_name);
        assert_eq!(s.depth, p.depth);
        assert_eq!(seq.obligations.len(), par.obligations.len());
        assert!(!seq.degraded && !par.degraded);
    }

    #[test]
    fn aggregate_sums_per_obligation_stats() {
        let report = buggy_harness_report(2);
        assert!(report.obligations.len() > 1);
        let call_sum: u64 = report
            .obligations
            .iter()
            .map(|r| r.stats.solver_calls)
            .sum();
        assert_eq!(report.aggregate.solver_calls, call_sum);
        let conflict_sum: u64 = report
            .obligations
            .iter()
            .map(|r| r.stats.solver.conflicts)
            .sum();
        assert_eq!(report.aggregate.solver.conflicts, conflict_sum);
        assert!(report.to_string().contains("obligations"));
        // Every completed obligation records at least one attempt.
        assert!(report.obligations.iter().all(|r| r.attempts >= 1));
    }

    #[test]
    fn clean_design_clean_under_parallel_dimacs_backend() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("ident", 2, 6, 6).with_latency(2);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify_parallel_with::<DimacsBackend>(&mut p, 6, 3);
        assert!(
            matches!(report.outcome, CheckOutcome::Clean { bound: 6 }),
            "{report}"
        );
        for r in &report.obligations {
            assert!(matches!(r.outcome, CheckOutcome::Clean { .. }));
        }
        assert!(!report.degraded);
        assert_eq!(report.watchdog_trips, 0);
    }

    #[test]
    fn fail_fast_still_reports_every_obligation() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("inc", 2, 6, 6);
        let lca = synthesize(
            &spec,
            &mut p,
            SynthOptions {
                forwarding_bug: true,
                ..SynthOptions::default()
            },
            |pool, _a, d| {
                let one = pool.lit(6, 1);
                pool.add(d, one)
            },
        );
        let sched = ScheduleOptions::default().with_jobs(4).with_fail_fast(true);
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .with_rb(RbConfig::default())
            .verify_parallel_scheduled::<Solver>(&mut p, 8, &sched);
        // The bug is found and validated; siblings either finished or
        // were cancelled, but every obligation has a report.
        assert!(report.found_bug(), "{report}");
        assert!(!report.degraded);
        assert_eq!(report.obligations.len(), 4);
        for r in &report.obligations {
            assert!(
                !matches!(r.outcome, CheckOutcome::Errored { .. }),
                "fail-fast must not degrade obligations: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn merge_prefers_shallowest_bug() {
        // Synthetic reports: a deep bug on obligation 0, shallow on 1.
        let mut deep = buggy_harness_report(1);
        assert!(deep.obligations.len() >= 2);
        let cex = deep.counterexample().unwrap().clone();
        let mut shallow_cex = cex.clone();
        shallow_cex.depth = 0;
        deep.obligations[0].outcome = CheckOutcome::Bug {
            property: PropertyKind::Fc,
            counterexample: cex,
        };
        deep.obligations[1].outcome = CheckOutcome::Bug {
            property: PropertyKind::Fc,
            counterexample: shallow_cex,
        };
        let merged = merge_outcome(&deep.obligations, 8);
        match merged {
            CheckOutcome::Bug { counterexample, .. } => assert_eq!(counterexample.depth, 0),
            other => panic!("expected bug, got {other:?}"),
        }
    }

    #[test]
    fn merge_ranks_errored_above_inconclusive() {
        let mut report = buggy_harness_report(1);
        for r in &mut report.obligations {
            r.outcome = CheckOutcome::Clean { bound: 8 };
        }
        report.obligations[0].outcome = CheckOutcome::Inconclusive {
            bound: 3,
            reason: StopReason::Conflicts,
        };
        report.obligations[1].outcome = CheckOutcome::Errored {
            message: "worker panicked: test".into(),
        };
        let merged = merge_outcome(&report.obligations, 8);
        assert!(matches!(merged, CheckOutcome::Errored { .. }), "{merged:?}");
        // Without the errored entry, the inconclusive (with its reason)
        // surfaces instead.
        report.obligations[1].outcome = CheckOutcome::Clean { bound: 8 };
        let merged = merge_outcome(&report.obligations, 8);
        match merged {
            CheckOutcome::Inconclusive { bound, reason } => {
                assert_eq!(bound, 3);
                assert_eq!(reason, StopReason::Conflicts);
            }
            other => panic!("expected inconclusive, got {other:?}"),
        }
    }
}
