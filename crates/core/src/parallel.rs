//! Obligation-level orchestration of A-QED checks.
//!
//! The A-QED² observation is that many small independent checks beat one
//! monolithic "any property, any depth" query. This module materializes
//! each bad property of the composed design+monitor system as an
//! [`Obligation`] and runs the obligations as independent BMC jobs on a
//! scoped thread pool ([`std::thread::scope`] — no runtime dependency).
//!
//! The merged verdict is deterministic: it depends only on the
//! per-obligation results, never on thread scheduling, so `jobs = 1` and
//! `jobs = N` always agree.

use crate::verify::{CheckOutcome, PropertyKind};
use aqed_bmc::{Bmc, BmcOptions, BmcResult, BmcStats, Counterexample};
use aqed_expr::ExprPool;
use aqed_sat::{SatBackend, Solver};
use aqed_tsys::TransitionSystem;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One independent proof obligation: a single bad property of the
/// composed design+monitor system, checked in isolation.
#[derive(Debug, Clone)]
pub struct Obligation {
    /// Index of the property in the composed system's bad list.
    pub bad_index: usize,
    /// Name of the bad property.
    pub bad_name: String,
    /// Which universal property the bad belongs to.
    pub property: PropertyKind,
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ({})",
            self.bad_index, self.bad_name, self.property
        )
    }
}

/// Verdict and statistics of one obligation's BMC run.
#[derive(Debug, Clone)]
pub struct ObligationReport {
    /// The obligation that was checked.
    pub obligation: Obligation,
    /// Verdict for this property alone.
    pub outcome: CheckOutcome,
    /// Solver statistics of this job's run.
    pub stats: BmcStats,
}

/// Aggregate report of an obligation-scheduled verification run.
#[derive(Debug, Clone)]
pub struct ParallelVerifyReport {
    /// Merged verdict; identical for every `jobs` value.
    pub outcome: CheckOutcome,
    /// Per-obligation reports, in bad-index order.
    pub obligations: Vec<ObligationReport>,
    /// Statistics folded over all obligations with [`BmcStats::absorb`]:
    /// counters add up, `elapsed` is total solver time (exceeds
    /// wall-clock when jobs overlap).
    pub aggregate: BmcStats,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Wall-clock time of the whole run.
    pub runtime: Duration,
}

impl ParallelVerifyReport {
    /// Whether the merged verdict is a bug.
    #[must_use]
    pub fn found_bug(&self) -> bool {
        matches!(self.outcome, CheckOutcome::Bug { .. })
    }

    /// The merged counterexample, if the verdict is a bug.
    #[must_use]
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match &self.outcome {
            CheckOutcome::Bug { counterexample, .. } => Some(counterexample),
            _ => None,
        }
    }

    /// The counterexample length in clock cycles, if a bug was found.
    #[must_use]
    pub fn cex_cycles(&self) -> Option<usize> {
        self.counterexample().map(Counterexample::cycles)
    }
}

impl fmt::Display for ParallelVerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            CheckOutcome::Clean { bound } => write!(f, "clean up to bound {bound}")?,
            CheckOutcome::Bug {
                property,
                counterexample,
            } => write!(f, "{property} bug: {counterexample}")?,
            CheckOutcome::Inconclusive { bound } => write!(f, "inconclusive at bound {bound}")?,
        }
        write!(
            f,
            " ({} obligations, {} jobs, {:?})",
            self.obligations.len(),
            self.jobs,
            self.runtime
        )
    }
}

/// Runs every bad property of `composed` as an independent BMC obligation
/// on up to `jobs` worker threads, using the default CDCL backend.
///
/// See [`verify_obligations_with`] for the backend-generic form and the
/// merge semantics.
#[must_use]
pub fn verify_obligations(
    composed: &TransitionSystem,
    pool: &ExprPool,
    options: &BmcOptions,
    jobs: usize,
) -> ParallelVerifyReport {
    verify_obligations_with::<Solver>(composed, pool, options, jobs)
}

/// Runs every bad property of `composed` as an independent BMC obligation
/// on up to `jobs` worker threads, each job building its own backend `B`.
///
/// Each job clones the expression pool (unrolling allocates fresh
/// expressions), but counterexamples only reference the system's original
/// variables, so they remain valid against the caller's pool — e.g. for
/// VCD export or simulator replay.
///
/// Merge semantics, independent of scheduling order: the bug with the
/// smallest `(depth, bad_index)` wins; otherwise the shallowest
/// inconclusive bound; otherwise clean at `options.max_bound`.
///
/// # Panics
///
/// Panics if `composed` has no bad properties, a bad name is not one of
/// the A-QED monitor's, or a worker thread panics.
#[must_use]
pub fn verify_obligations_with<B: SatBackend + Default>(
    composed: &TransitionSystem,
    pool: &ExprPool,
    options: &BmcOptions,
    jobs: usize,
) -> ParallelVerifyReport {
    let start = Instant::now();
    let obligations: Vec<Obligation> = composed
        .bads()
        .iter()
        .enumerate()
        .map(|(i, (name, _))| Obligation {
            bad_index: i,
            bad_name: name.clone(),
            property: PropertyKind::of_bad(name),
        })
        .collect();
    assert!(
        !obligations.is_empty(),
        "system '{}' has no bad properties to check",
        composed.name()
    );
    let workers = jobs.clamp(1, obligations.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, ObligationReport)>> =
        Mutex::new(Vec::with_capacity(obligations.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(ob) = obligations.get(idx) else {
                    break;
                };
                let report = check_obligation::<B>(composed, pool, options, ob);
                results
                    .lock()
                    .expect("result sink poisoned")
                    .push((idx, report));
            });
        }
    });
    let mut ranked = results.into_inner().expect("result sink poisoned");
    ranked.sort_by_key(|&(i, _)| i);
    let reports: Vec<ObligationReport> = ranked.into_iter().map(|(_, r)| r).collect();
    let mut aggregate = BmcStats::default();
    for r in &reports {
        aggregate.absorb(&r.stats);
    }
    let outcome = merge_outcome(&reports, options.max_bound);
    ParallelVerifyReport {
        outcome,
        obligations: reports,
        aggregate,
        jobs: workers,
        runtime: start.elapsed(),
    }
}

/// Runs one obligation to completion on its own pool clone and backend.
fn check_obligation<B: SatBackend + Default>(
    composed: &TransitionSystem,
    pool: &ExprPool,
    options: &BmcOptions,
    ob: &Obligation,
) -> ObligationReport {
    let mut local_pool = pool.clone();
    let mut bmc: Bmc<B> = Bmc::with_backend(composed, options.clone());
    bmc.select_bad_indices(composed, &[ob.bad_index]);
    let result = bmc.check(composed, &mut local_pool);
    let stats = bmc.stats();
    let outcome = match result {
        BmcResult::Counterexample(cex) => {
            debug_assert!(
                cex.replay(composed, &local_pool),
                "BMC counterexample must replay on the simulator"
            );
            CheckOutcome::Bug {
                property: ob.property,
                counterexample: cex,
            }
        }
        BmcResult::NoCounterexample { bound } => CheckOutcome::Clean { bound },
        BmcResult::Unknown { bound } => CheckOutcome::Inconclusive { bound },
    };
    ObligationReport {
        obligation: ob.clone(),
        outcome,
        stats,
    }
}

/// Deterministic verdict merge: bug with minimal `(depth, bad_index)`,
/// else shallowest inconclusive bound, else clean at the full bound.
fn merge_outcome(reports: &[ObligationReport], max_bound: usize) -> CheckOutcome {
    let mut bug: Option<(usize, usize)> = None; // (depth, report index)
    for (i, r) in reports.iter().enumerate() {
        if let CheckOutcome::Bug { counterexample, .. } = &r.outcome {
            let key = (counterexample.depth, i);
            if bug.is_none_or(|b| key < b) {
                bug = Some(key);
            }
        }
    }
    if let Some((_, i)) = bug {
        return reports[i].outcome.clone();
    }
    let mut inconclusive: Option<usize> = None;
    for r in reports {
        if let CheckOutcome::Inconclusive { bound } = r.outcome {
            inconclusive = Some(inconclusive.map_or(bound, |b| b.min(bound)));
        }
    }
    match inconclusive {
        Some(bound) => CheckOutcome::Inconclusive { bound },
        None => CheckOutcome::Clean { bound: max_bound },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{FcConfig, RbConfig};
    use crate::AqedHarness;
    use aqed_hls::{synthesize, AccelSpec, SynthOptions};
    use aqed_sat::DimacsBackend;

    fn buggy_harness_report(jobs: usize) -> ParallelVerifyReport {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("inc", 2, 6, 6);
        let lca = synthesize(
            &spec,
            &mut p,
            SynthOptions {
                forwarding_bug: true,
                ..SynthOptions::default()
            },
            |pool, _a, d| {
                let one = pool.lit(6, 1);
                pool.add(d, one)
            },
        );
        AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .with_rb(RbConfig::default())
            .verify_parallel(&mut p, 8, jobs)
    }

    #[test]
    fn jobs_one_and_four_agree() {
        let seq = buggy_harness_report(1);
        let par = buggy_harness_report(4);
        assert!(seq.found_bug() && par.found_bug());
        let (s, p) = (seq.counterexample().unwrap(), par.counterexample().unwrap());
        assert_eq!(s.bad_name, p.bad_name);
        assert_eq!(s.depth, p.depth);
        assert_eq!(seq.obligations.len(), par.obligations.len());
    }

    #[test]
    fn aggregate_sums_per_obligation_stats() {
        let report = buggy_harness_report(2);
        assert!(report.obligations.len() > 1);
        let call_sum: u64 = report
            .obligations
            .iter()
            .map(|r| r.stats.solver_calls)
            .sum();
        assert_eq!(report.aggregate.solver_calls, call_sum);
        let conflict_sum: u64 = report
            .obligations
            .iter()
            .map(|r| r.stats.solver.conflicts)
            .sum();
        assert_eq!(report.aggregate.solver.conflicts, conflict_sum);
        assert!(report.to_string().contains("obligations"));
    }

    #[test]
    fn clean_design_clean_under_parallel_dimacs_backend() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("ident", 2, 6, 6).with_latency(2);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify_parallel_with::<DimacsBackend>(&mut p, 6, 3);
        assert!(
            matches!(report.outcome, CheckOutcome::Clean { bound: 6 }),
            "{report}"
        );
        for r in &report.obligations {
            assert!(matches!(r.outcome, CheckOutcome::Clean { .. }));
        }
    }

    #[test]
    fn merge_prefers_shallowest_bug() {
        // Synthetic reports: a deep bug on obligation 0, shallow on 1.
        let mut deep = buggy_harness_report(1);
        assert!(deep.obligations.len() >= 2);
        let cex = deep.counterexample().unwrap().clone();
        let mut shallow_cex = cex.clone();
        shallow_cex.depth = 0;
        deep.obligations[0].outcome = CheckOutcome::Bug {
            property: PropertyKind::Fc,
            counterexample: cex,
        };
        deep.obligations[1].outcome = CheckOutcome::Bug {
            property: PropertyKind::Fc,
            counterexample: shallow_cex,
        };
        let merged = merge_outcome(&deep.obligations, 8);
        match merged {
            CheckOutcome::Bug { counterexample, .. } => assert_eq!(counterexample.depth, 0),
            other => panic!("expected bug, got {other:?}"),
        }
    }
}
