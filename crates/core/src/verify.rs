//! The one-call A-QED verification harness.

use crate::monitor::{
    attach_monitor, FcConfig, MonitorHandles, RbConfig, SacConfig, BAD_FC, BAD_FC_EARLY,
    BAD_RB_NO_OUTPUT, BAD_RB_STARVATION, BAD_SAC,
};
use aqed_bmc::{Bmc, BmcOptions, BmcResult, Counterexample, StopReason};
use aqed_expr::ExprPool;
use aqed_hls::Lca;
use aqed_tsys::TransitionSystem;
use std::fmt;
use std::time::Duration;

/// Which universal property a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyKind {
    /// Functional Consistency (Def. 2), including its strengthened
    /// no-early-output form.
    Fc,
    /// Response Bound (Def. 3).
    Rb,
    /// Single-Action Correctness (Def. 7).
    Sac,
}

impl PropertyKind {
    /// Maps a generated bad-property name (see the `BAD_*` constants
    /// such as [`crate::BAD_FC`]) to its universal property, or `None`
    /// for names the A-QED monitor did not generate.
    #[must_use]
    pub fn of_bad_name(name: &str) -> Option<PropertyKind> {
        match name {
            BAD_FC | BAD_FC_EARLY => Some(PropertyKind::Fc),
            BAD_RB_STARVATION | BAD_RB_NO_OUTPUT => Some(PropertyKind::Rb),
            BAD_SAC => Some(PropertyKind::Sac),
            _ => None,
        }
    }

    pub(crate) fn of_bad(name: &str) -> PropertyKind {
        PropertyKind::of_bad_name(name).unwrap_or_else(|| panic!("unknown A-QED property '{name}'"))
    }
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PropertyKind::Fc => "FC",
            PropertyKind::Rb => "RB",
            PropertyKind::Sac => "SAC",
        })
    }
}

/// The verdict of an A-QED run.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// No property violated within the explored bound.
    Clean {
        /// Deepest bound fully explored.
        bound: usize,
    },
    /// A property was violated; the witness replays on the simulator.
    Bug {
        /// Which universal property caught it.
        property: PropertyKind,
        /// The concrete witness.
        counterexample: Counterexample,
    },
    /// A resource limit stopped the run before a verdict.
    Inconclusive {
        /// Depth being explored when the budget ran out.
        bound: usize,
        /// Which limit stopped the run.
        reason: StopReason,
    },
    /// The check itself failed: the worker died or the backend produced
    /// an unsound witness. The result says nothing about the design.
    Errored {
        /// Human-readable failure description.
        message: String,
    },
}

/// The loud error message for a witness that fails simulator replay —
/// shared by the sequential and scheduled verification paths so the
/// failure is recognisable wherever it surfaces.
pub(crate) fn unsound_witness_message(cex: &Counterexample) -> String {
    format!(
        "UnsoundWitness: counterexample for '{}' at depth {} does not replay on the \
         concrete simulator",
        cex.bad_name, cex.depth
    )
}

/// Validates a BMC witness by replaying it on the concrete simulator:
/// a genuine counterexample becomes a [`CheckOutcome::Bug`], a bogus
/// model becomes a loud [`CheckOutcome::Errored`] instead of a silently
/// trusted bug report.
pub(crate) fn validated_bug(
    composed: &TransitionSystem,
    pool: &ExprPool,
    property: PropertyKind,
    cex: Counterexample,
) -> CheckOutcome {
    if cex.replay(composed, pool) {
        CheckOutcome::Bug {
            property,
            counterexample: cex,
        }
    } else {
        CheckOutcome::Errored {
            message: unsound_witness_message(&cex),
        }
    }
}

/// The full report of one A-QED verification run.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Verdict.
    pub outcome: CheckOutcome,
    /// Wall-clock runtime of the BMC run.
    pub runtime: Duration,
    /// CNF clauses at the end of the run (scale indicator).
    pub clauses: usize,
    /// SAT solver calls made.
    pub solver_calls: u64,
}

impl VerifyReport {
    /// The counterexample length in clock cycles, if a bug was found
    /// (the paper's "CEX length" metric).
    #[must_use]
    pub fn cex_cycles(&self) -> Option<usize> {
        match &self.outcome {
            CheckOutcome::Bug { counterexample, .. } => Some(counterexample.cycles()),
            _ => None,
        }
    }

    /// Whether a bug was found.
    #[must_use]
    pub fn found_bug(&self) -> bool {
        matches!(self.outcome, CheckOutcome::Bug { .. })
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            CheckOutcome::Clean { bound } => {
                write!(f, "clean up to bound {bound} ({:?})", self.runtime)
            }
            CheckOutcome::Bug {
                property,
                counterexample,
            } => write!(f, "{property} bug: {counterexample} ({:?})", self.runtime),
            CheckOutcome::Inconclusive { bound, reason } => {
                write!(
                    f,
                    "inconclusive at bound {bound} ({reason}) ({:?})",
                    self.runtime
                )
            }
            CheckOutcome::Errored { message } => {
                write!(f, "errored: {message} ({:?})", self.runtime)
            }
        }
    }
}

/// Builder wiring an [`Lca`] to the A-QED monitor and the BMC engine.
///
/// # Examples
///
/// ```
/// use aqed_core::{AqedHarness, FcConfig, RbConfig};
/// use aqed_hls::{synthesize, AccelSpec, SynthOptions};
/// use aqed_expr::ExprPool;
///
/// let mut p = ExprPool::new();
/// let spec = AccelSpec::new("neg", 2, 8, 8);
/// let lca = synthesize(&spec, &mut p, SynthOptions::default(), |pool, _a, d| {
///     pool.neg(d)
/// });
/// let report = AqedHarness::new(&lca)
///     .with_fc(FcConfig::default())
///     .with_rb(RbConfig::default())
///     .verify(&mut p, 6);
/// assert!(!report.found_bug());
/// ```
pub struct AqedHarness<'a> {
    lca: &'a Lca,
    fc: Option<FcConfig>,
    rb: Option<RbConfig>,
    sac: Option<SacConfig<'a>>,
    bmc_options: BmcOptions,
}

impl fmt::Debug for AqedHarness<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AqedHarness")
            .field("design", &self.lca.ts.name())
            .field("fc", &self.fc)
            .field("rb", &self.rb)
            .field("sac", &self.sac.is_some())
            .finish()
    }
}

impl<'a> AqedHarness<'a> {
    /// Creates a harness for the given design with no checks enabled yet.
    #[must_use]
    pub fn new(lca: &'a Lca) -> Self {
        AqedHarness {
            lca,
            fc: None,
            rb: None,
            sac: None,
            bmc_options: BmcOptions::default(),
        }
    }

    /// Enables Functional Consistency checking.
    #[must_use]
    pub fn with_fc(mut self, config: FcConfig) -> Self {
        self.fc = Some(config);
        self
    }

    /// Enables Response Bound checking.
    #[must_use]
    pub fn with_rb(mut self, config: RbConfig) -> Self {
        self.rb = Some(config);
        self
    }

    /// Enables Single-Action Correctness checking against a spec.
    #[must_use]
    pub fn with_sac(mut self, config: SacConfig<'a>) -> Self {
        self.sac = Some(config);
        self
    }

    /// Overrides the BMC options (incrementality, conflict budget). The
    /// maximum bound is still taken from the `verify` argument.
    #[must_use]
    pub fn with_bmc_options(mut self, options: BmcOptions) -> Self {
        self.bmc_options = options;
        self
    }

    /// Builds the composed system without running BMC — for callers that
    /// want to drive the model checker themselves or simulate the
    /// monitored design.
    ///
    /// # Panics
    ///
    /// Panics if no check is enabled.
    #[must_use]
    pub fn build(&self, pool: &mut ExprPool) -> (TransitionSystem, MonitorHandles) {
        assert!(
            self.fc.is_some() || self.rb.is_some() || self.sac.is_some(),
            "enable at least one of FC / RB / SAC before building"
        );
        attach_monitor(
            self.lca,
            pool,
            self.fc.as_ref(),
            self.rb.as_ref(),
            self.sac.as_ref(),
        )
    }

    /// Composes the monitor and runs BMC up to `max_bound` transitions.
    ///
    /// # Panics
    ///
    /// Panics if no check is enabled or the composed system fails
    /// validation (a bug in the design construction, not in the design's
    /// behaviour).
    #[must_use]
    pub fn verify(&self, pool: &mut ExprPool, max_bound: usize) -> VerifyReport {
        let (composed, _handles) = self.build(pool);
        composed
            .validate(pool)
            .expect("composed system must be well-formed");
        let options = self.bmc_options.clone().with_max_bound(max_bound);
        let mut bmc = Bmc::new(&composed, options);
        let result = bmc.check(&composed, pool);
        let stats = bmc.stats();
        let outcome = match result {
            BmcResult::Counterexample(cex) => {
                let property = PropertyKind::of_bad(&cex.bad_name);
                validated_bug(&composed, pool, property, cex)
            }
            BmcResult::NoCounterexample { bound } => CheckOutcome::Clean { bound },
            BmcResult::Unknown { bound, reason } => CheckOutcome::Inconclusive { bound, reason },
        };
        VerifyReport {
            outcome,
            runtime: stats.elapsed,
            clauses: stats.clauses,
            solver_calls: stats.solver_calls,
        }
    }

    /// Composes the monitor and checks each property as an independent
    /// BMC obligation on up to `jobs` worker threads (CDCL backend).
    ///
    /// The merged verdict is deterministic — identical for every `jobs`
    /// value — per the rules of
    /// [`verify_obligations_with`](crate::verify_obligations_with).
    ///
    /// # Panics
    ///
    /// Panics if no check is enabled or the composed system fails
    /// validation.
    #[must_use]
    pub fn verify_parallel(
        &self,
        pool: &mut ExprPool,
        max_bound: usize,
        jobs: usize,
    ) -> crate::ParallelVerifyReport {
        self.verify_parallel_with::<aqed_sat::Solver>(pool, max_bound, jobs)
    }

    /// [`AqedHarness::verify_parallel`] generic over the SAT backend:
    /// every obligation job builds its own `B::default()` instance.
    ///
    /// # Panics
    ///
    /// Panics if no check is enabled or the composed system fails
    /// validation.
    #[must_use]
    pub fn verify_parallel_with<B: aqed_sat::SatBackend + Default>(
        &self,
        pool: &mut ExprPool,
        max_bound: usize,
        jobs: usize,
    ) -> crate::ParallelVerifyReport {
        let (composed, _handles) = self.build(pool);
        composed
            .validate(pool)
            .expect("composed system must be well-formed");
        let options = self.bmc_options.clone().with_max_bound(max_bound);
        crate::parallel::verify_obligations_with::<B>(&composed, pool, &options, jobs)
    }

    /// Obligation-scheduled verification with full resource governance:
    /// fail-fast cancellation, per-obligation watchdog timeouts, panic
    /// isolation, and budget-escalating retries — see
    /// [`ScheduleOptions`](crate::ScheduleOptions).
    ///
    /// # Panics
    ///
    /// Panics if no check is enabled or the composed system fails
    /// validation.
    #[must_use]
    pub fn verify_parallel_scheduled<B: aqed_sat::SatBackend + Default>(
        &self,
        pool: &mut ExprPool,
        max_bound: usize,
        sched: &crate::ScheduleOptions,
    ) -> crate::ParallelVerifyReport {
        let (composed, _handles) = self.build(pool);
        composed
            .validate(pool)
            .expect("composed system must be well-formed");
        let options = self.bmc_options.clone().with_max_bound(max_bound);
        crate::parallel::verify_obligations_scheduled::<B>(&composed, pool, &options, sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_hls::{synthesize, AccelSpec, SynthOptions};

    fn identity_lca(p: &mut ExprPool, opts: SynthOptions) -> Lca {
        let spec = AccelSpec::new("ident", 2, 6, 6).with_latency(2);
        synthesize(&spec, p, opts, |_pool, _a, d| d)
    }

    #[test]
    fn healthy_design_is_clean() {
        let mut p = ExprPool::new();
        let lca = identity_lca(&mut p, SynthOptions::default());
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .with_rb(RbConfig {
                tau: 8,
                in_min: 1,
                rdin_bound: 8,
                counter_width: 8,
            })
            .verify(&mut p, 8);
        assert!(
            matches!(report.outcome, CheckOutcome::Clean { bound: 8 }),
            "got {report}"
        );
    }

    #[test]
    fn forwarding_bug_caught_by_fc() {
        let mut p = ExprPool::new();
        let lca = identity_lca(
            &mut p,
            SynthOptions {
                forwarding_bug: true,
                ..SynthOptions::default()
            },
        );
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify(&mut p, 10);
        match &report.outcome {
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                assert_eq!(*property, PropertyKind::Fc);
                // Short counterexample, as the paper reports (≈6 cycles).
                assert!(
                    counterexample.cycles() <= 8,
                    "cex unexpectedly long: {}",
                    counterexample.cycles()
                );
            }
            other => panic!("expected FC bug, got {other:?}"),
        }
    }

    #[test]
    fn dropped_outputs_caught_by_rb() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("dropper", 2, 6, 6)
            .with_latency(2)
            .with_fifo_depth(1);
        let lca = synthesize(
            &spec,
            &mut p,
            SynthOptions {
                skip_credit_check: true,
                ..SynthOptions::default()
            },
            |_pool, _a, d| d,
        );
        let report = AqedHarness::new(&lca)
            .with_rb(RbConfig {
                tau: 6,
                in_min: 1,
                rdin_bound: 10,
                counter_width: 8,
            })
            .verify(&mut p, 12);
        match &report.outcome {
            CheckOutcome::Bug { property, .. } => assert_eq!(*property, PropertyKind::Rb),
            other => panic!("expected RB bug, got {other:?}"),
        }
    }

    #[test]
    fn sac_catches_consistent_but_wrong_design() {
        // A design that always computes d + 2 instead of d + 1: perfectly
        // functionally consistent (FC passes) but violates the spec —
        // exactly the gap Prop. 1 closes with SAC.
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("off_by_one", 2, 6, 6);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |pool, _a, d| {
            let two = pool.lit(6, 2);
            pool.add(d, two)
        });
        let fc_report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify(&mut p, 6);
        assert!(!fc_report.found_bug(), "FC alone cannot see this bug");

        let spec_fn: crate::SpecFn = &|pool: &mut ExprPool, _a, d| {
            let one = pool.lit(6, 1);
            pool.add(d, one)
        };
        let sac_report = AqedHarness::new(&lca)
            .with_sac(SacConfig { spec: spec_fn })
            .verify(&mut p, 6);
        match &sac_report.outcome {
            CheckOutcome::Bug { property, .. } => assert_eq!(*property, PropertyKind::Sac),
            other => panic!("expected SAC bug, got {other:?}"),
        }
    }

    #[test]
    fn deadline_budget_reports_inconclusive_with_reason() {
        use aqed_bmc::Budget;
        let mut p = ExprPool::new();
        let lca = identity_lca(&mut p, SynthOptions::default());
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .with_bmc_options(
                BmcOptions::default().with_budget(Budget::unlimited().with_timeout(Duration::ZERO)),
            )
            .verify(&mut p, 8);
        match report.outcome {
            CheckOutcome::Inconclusive { reason, .. } => {
                assert_eq!(reason, StopReason::Deadline);
            }
            ref other => panic!("expected Inconclusive, got {other:?}"),
        }
        assert!(report.to_string().contains("deadline"));
    }

    #[test]
    #[should_panic(expected = "enable at least one")]
    fn harness_requires_a_check() {
        let mut p = ExprPool::new();
        let lca = identity_lca(&mut p, SynthOptions::default());
        let _ = AqedHarness::new(&lca).verify(&mut p, 4);
    }

    #[test]
    fn report_accessors() {
        let mut p = ExprPool::new();
        let lca = identity_lca(
            &mut p,
            SynthOptions {
                forwarding_bug: true,
                ..SynthOptions::default()
            },
        );
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify(&mut p, 10);
        assert!(report.found_bug());
        assert!(report.cex_cycles().is_some());
        assert!(report.clauses > 0);
        assert!(report.solver_calls > 0);
        assert!(report.to_string().contains("FC bug"));
    }
}
