//! Crash-safe disk backend for the [`ArtifactStore`](crate::ArtifactStore):
//! an append-only journal plus atomic snapshot compaction.
//!
//! # On-disk layout
//!
//! A store directory holds at most three files:
//!
//! * `journal.aqed` — append-only record log. Every store mutation
//!   (definitive verdict, new COI cone) becomes one record appended
//!   here; a crash loses only records not yet flushed.
//! * `snapshot.aqed` — the store state as of the last compaction, in
//!   the same record format. Loading replays the snapshot first, then
//!   the journal on top (replay is idempotent, so records present in
//!   both are harmless).
//! * `snapshot.aqed.tmp` — transient compaction scratch. A leftover
//!   tmp file means a crash interrupted compaction; it is deleted on
//!   open and the previous snapshot + journal remain authoritative.
//!
//! # Record framing
//!
//! One record per line: sixteen lowercase hex digits of the FNV-1a 64
//! checksum of the payload, one space, the payload as a single-line
//! JSON object. Recovery verifies each line's checksum and parses the
//! payload; the **first** bad line (checksum mismatch, unparseable
//! JSON, missing separator, torn tail without a newline) ends the file:
//! everything before it is recovered, everything from it on is
//! discarded, and for the journal the file is physically truncated at
//! the last good byte so subsequent appends never interleave with
//! garbage. Corruption therefore degrades to a partial cache — never a
//! wrong verdict (verdict soundness is re-established at serve time by
//! the hash/name guards and counterexample replay) and never a crash.
//!
//! # Compaction
//!
//! When the journal accumulates more than
//! [`StoreOptions::compact_threshold`] records, a flush rewrites the
//! whole in-memory state into `snapshot.aqed.tmp`, fsyncs it, renames
//! it over `snapshot.aqed` (atomic on POSIX), fsyncs the directory and
//! only then truncates the journal. A kill at any point leaves either
//! the old snapshot + full journal or the new snapshot (+ a journal
//! whose records the snapshot already contains — idempotent replay).
//!
//! # What is deliberately not persisted
//!
//! `Inconclusive`/`Errored` outcomes (they describe the budget, not
//! the design), preprocessing outcomes (`ElimRecord`s are deterministic
//! consequences of the CNF and cheap to recompute; see DESIGN.md), and
//! raw `VarId`s: counterexamples are stored *positionally* — indices
//! into the system's `inputs ++ states` declaration order — so a record
//! written by one process replays in any process that rebuilds the same
//! design, regardless of pool layout. Learnt-clause cores *are*
//! persisted ([`Record::Learnts`]), but only as redundant warm-start
//! hints gated by cone-content identity plus frame fingerprints; losing
//! one costs a cold solve, never a verdict.
//!
//! Readers older than a record kind stop recovering at its first
//! occurrence (unknown `"k"` values are damage by construction). That
//! trades mixed-version sharing of one store directory — which nothing
//! supports anyway — for a format without version sniffing.

use crate::verify::PropertyKind;
use aqed_bitvec::Bv;
use aqed_bmc::Counterexample;
use aqed_expr::VarId;
use aqed_obs::json::{self, Json};
use aqed_tsys::Trace;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// The append-only record log inside a store directory.
pub const JOURNAL_FILE: &str = "journal.aqed";
/// The last compacted snapshot inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.aqed";
const SNAPSHOT_TMP: &str = "snapshot.aqed.tmp";
const FORMAT_VERSION: u64 = 1;

/// Tuning knobs for a persistent store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreOptions {
    /// Journal records accumulated before a flush triggers snapshot
    /// compaction.
    pub compact_threshold: usize,
    /// Whether flushes fsync the journal (and compaction the snapshot).
    /// Disabling trades durability for latency; tests and benchmarks
    /// may, a production daemon should not.
    pub fsync: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            compact_threshold: 4096,
            fsync: true,
        }
    }
}

/// FNV-1a 64 over raw bytes — the per-record checksum (and the same
/// function [`design_hash`](crate::design_hash) uses for content keys).
#[must_use]
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A counterexample in durable, pool-independent form: every variable
/// is an index into the recording system's `inputs ++ states`
/// declaration order, every value a `(position, width, bits)` triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PersistedCex {
    pub property: PropertyKind,
    pub depth: usize,
    /// Concrete initial register values, sorted by position.
    pub init: Vec<(u32, u32, u64)>,
    /// Per-cycle input assignments in the same coordinates.
    pub trace: Vec<Vec<(u32, u32, u64)>>,
}

fn property_str(p: PropertyKind) -> &'static str {
    match p {
        PropertyKind::Fc => "fc",
        PropertyKind::Rb => "rb",
        PropertyKind::Sac => "sac",
    }
}

fn property_from_str(s: &str) -> Option<PropertyKind> {
    match s {
        "fc" => Some(PropertyKind::Fc),
        "rb" => Some(PropertyKind::Rb),
        "sac" => Some(PropertyKind::Sac),
        _ => None,
    }
}

fn assignment_to_json(&(pos, width, value): &(u32, u32, u64)) -> Json {
    Json::Arr(vec![
        Json::num(u64::from(pos)),
        Json::num(u64::from(width)),
        Json::hex(value),
    ])
}

fn assignment_from_json(v: &Json) -> Option<(u32, u32, u64)> {
    let items = v.as_arr()?;
    if items.len() != 3 {
        return None;
    }
    let pos = u32::try_from(items[0].as_u64()?).ok()?;
    let width = u32::try_from(items[1].as_u64()?).ok()?;
    let value = items[2].as_hex_u64()?;
    Some((pos, width, value))
}

impl PersistedCex {
    /// Encodes a live counterexample positionally, or `None` when some
    /// trace variable is neither an input nor a state of `positions`'
    /// system (such a witness cannot be made pool-independent).
    pub fn encode(
        property: PropertyKind,
        cex: &Counterexample,
        positions: &HashMap<VarId, u32>,
    ) -> Option<PersistedCex> {
        let mut init: Vec<(u32, u32, u64)> = cex
            .initial_state
            .iter()
            .map(|(v, bv)| Some((*positions.get(v)?, bv.width(), bv.to_u64())))
            .collect::<Option<_>>()?;
        init.sort_unstable();
        let trace: Vec<Vec<(u32, u32, u64)>> = (0..cex.trace.len())
            .map(|k| {
                let mut frame: Vec<(u32, u32, u64)> = cex
                    .trace
                    .frame(k)
                    .iter()
                    .map(|(v, bv)| Some((*positions.get(v)?, bv.width(), bv.to_u64())))
                    .collect::<Option<_>>()?;
                frame.sort_unstable();
                Some(frame)
            })
            .collect::<Option<_>>()?;
        Some(PersistedCex {
            property,
            depth: cex.depth,
            init,
            trace,
        })
    }

    /// Decodes back into a live [`Counterexample`] against a system
    /// whose `inputs ++ states` declaration order is `vars`. Returns
    /// `None` when any position is out of range (the record belongs to
    /// a different system). The caller must still replay the result
    /// before trusting it.
    pub fn decode(
        &self,
        bad_name: &str,
        bad_index: usize,
        vars: &[VarId],
    ) -> Option<Counterexample> {
        let var_at = |pos: u32| vars.get(pos as usize).copied();
        let initial_state: HashMap<VarId, Bv> = self
            .init
            .iter()
            .map(|&(pos, width, value)| Some((var_at(pos)?, Bv::new(width, value))))
            .collect::<Option<_>>()?;
        let mut trace = Trace::new();
        for frame in &self.trace {
            let assignments: Vec<(VarId, Bv)> = frame
                .iter()
                .map(|&(pos, width, value)| Some((var_at(pos)?, Bv::new(width, value))))
                .collect::<Option<_>>()?;
            trace.push_frame(assignments);
        }
        Some(Counterexample {
            bad_name: bad_name.to_string(),
            bad_index,
            depth: self.depth,
            trace,
            initial_state,
        })
    }

    fn to_json(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("p", Json::Str(property_str(self.property).into())),
            ("dep", Json::num(self.depth as u64)),
            (
                "init",
                Json::Arr(self.init.iter().map(assignment_to_json).collect()),
            ),
            (
                "tr",
                Json::Arr(
                    self.trace
                        .iter()
                        .map(|f| Json::Arr(f.iter().map(assignment_to_json).collect()))
                        .collect(),
                ),
            ),
        ]
    }

    fn from_json(v: &Json) -> Option<PersistedCex> {
        let property = property_from_str(v.get("p")?.as_str()?)?;
        let depth = v.get("dep")?.as_u64()? as usize;
        let init = v
            .get("init")?
            .as_arr()?
            .iter()
            .map(assignment_from_json)
            .collect::<Option<_>>()?;
        let trace = v
            .get("tr")?
            .as_arr()?
            .iter()
            .map(|f| f.as_arr()?.iter().map(assignment_from_json).collect())
            .collect::<Option<_>>()?;
        Some(PersistedCex {
            property,
            depth,
            init,
            trace,
        })
    }
}

/// One durable store mutation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Record {
    /// Format marker; `v` newer than this build ends parsing.
    Meta { version: u64 },
    /// `(design, bad)` proven clean to `bound`.
    Clean {
        design: u64,
        bad_index: usize,
        bad_name: String,
        bound: usize,
    },
    /// A validated counterexample for `(design, bad)`.
    Bug {
        design: u64,
        bad_index: usize,
        bad_name: String,
        cex: PersistedCex,
    },
    /// A COI cone for `(design, bad-set)`, positionally encoded.
    Cone {
        design: u64,
        bads: Vec<usize>,
        cone: Vec<u32>,
    },
    /// `(cone, bad)` proven clean to `bound` — keyed by the content
    /// hash of the obligation's COI *slice*, not the whole design, so
    /// the fact survives edits outside the cone.
    ConeClean {
        cone: u64,
        bad_name: String,
        bound: usize,
    },
    /// A counterexample for `(cone, bad)`, positionally encoded against
    /// the *slice's* `inputs ++ states` order (a strict subsequence of
    /// the full design's). Serve-time replay against the full design is
    /// still the soundness gate.
    ConeBug {
        cone: u64,
        bad_name: String,
        cex: PersistedCex,
    },
    /// A learnt-clause core exported after solving `(cone, bad)`:
    /// per-frame variable-count fingerprints plus clauses over packed
    /// literal codes (`var << 1 | polarity`). Purely a warm-start hint;
    /// injection re-checks the fingerprints and bounds every variable.
    Learnts {
        cone: u64,
        bad_name: String,
        frame_vars: Vec<u32>,
        clauses: Vec<Vec<u32>>,
    },
}

impl Record {
    fn to_json(&self) -> Json {
        match self {
            Record::Meta { version } => Json::obj(vec![
                ("k", Json::Str("meta".into())),
                ("v", Json::num(*version)),
            ]),
            Record::Clean {
                design,
                bad_index,
                bad_name,
                bound,
            } => Json::obj(vec![
                ("k", Json::Str("clean".into())),
                ("d", Json::hex(*design)),
                ("i", Json::num(*bad_index as u64)),
                ("n", Json::Str(bad_name.clone())),
                ("b", Json::num(*bound as u64)),
            ]),
            Record::Bug {
                design,
                bad_index,
                bad_name,
                cex,
            } => {
                let mut fields = vec![
                    ("k", Json::Str("bug".into())),
                    ("d", Json::hex(*design)),
                    ("i", Json::num(*bad_index as u64)),
                    ("n", Json::Str(bad_name.clone())),
                ];
                fields.extend(cex.to_json());
                Json::obj(fields)
            }
            Record::Cone { design, bads, cone } => Json::obj(vec![
                ("k", Json::Str("cone".into())),
                ("d", Json::hex(*design)),
                (
                    "b",
                    Json::Arr(bads.iter().map(|&b| Json::num(b as u64)).collect()),
                ),
                (
                    "c",
                    Json::Arr(cone.iter().map(|&p| Json::num(u64::from(p))).collect()),
                ),
            ]),
            Record::ConeClean {
                cone,
                bad_name,
                bound,
            } => Json::obj(vec![
                ("k", Json::Str("cclean".into())),
                ("d", Json::hex(*cone)),
                ("n", Json::Str(bad_name.clone())),
                ("b", Json::num(*bound as u64)),
            ]),
            Record::ConeBug {
                cone,
                bad_name,
                cex,
            } => {
                let mut fields = vec![
                    ("k", Json::Str("cbug".into())),
                    ("d", Json::hex(*cone)),
                    ("n", Json::Str(bad_name.clone())),
                ];
                fields.extend(cex.to_json());
                Json::obj(fields)
            }
            Record::Learnts {
                cone,
                bad_name,
                frame_vars,
                clauses,
            } => Json::obj(vec![
                ("k", Json::Str("learnts".into())),
                ("d", Json::hex(*cone)),
                ("n", Json::Str(bad_name.clone())),
                (
                    "fv",
                    Json::Arr(
                        frame_vars
                            .iter()
                            .map(|&v| Json::num(u64::from(v)))
                            .collect(),
                    ),
                ),
                (
                    "cl",
                    Json::Arr(
                        clauses
                            .iter()
                            .map(|c| {
                                Json::Arr(c.iter().map(|&l| Json::num(u64::from(l))).collect())
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    fn from_json(v: &Json) -> Option<Record> {
        match v.get("k")?.as_str()? {
            "meta" => Some(Record::Meta {
                version: v.get("v")?.as_u64()?,
            }),
            "clean" => Some(Record::Clean {
                design: v.get("d")?.as_hex_u64()?,
                bad_index: v.get("i")?.as_u64()? as usize,
                bad_name: v.get("n")?.as_str()?.to_string(),
                bound: v.get("b")?.as_u64()? as usize,
            }),
            "bug" => Some(Record::Bug {
                design: v.get("d")?.as_hex_u64()?,
                bad_index: v.get("i")?.as_u64()? as usize,
                bad_name: v.get("n")?.as_str()?.to_string(),
                cex: PersistedCex::from_json(v)?,
            }),
            "cone" => Some(Record::Cone {
                design: v.get("d")?.as_hex_u64()?,
                bads: v
                    .get("b")?
                    .as_arr()?
                    .iter()
                    .map(|b| Some(b.as_u64()? as usize))
                    .collect::<Option<_>>()?,
                cone: v
                    .get("c")?
                    .as_arr()?
                    .iter()
                    .map(|p| u32::try_from(p.as_u64()?).ok())
                    .collect::<Option<_>>()?,
            }),
            "cclean" => Some(Record::ConeClean {
                cone: v.get("d")?.as_hex_u64()?,
                bad_name: v.get("n")?.as_str()?.to_string(),
                bound: v.get("b")?.as_u64()? as usize,
            }),
            "cbug" => Some(Record::ConeBug {
                cone: v.get("d")?.as_hex_u64()?,
                bad_name: v.get("n")?.as_str()?.to_string(),
                cex: PersistedCex::from_json(v)?,
            }),
            "learnts" => Some(Record::Learnts {
                cone: v.get("d")?.as_hex_u64()?,
                bad_name: v.get("n")?.as_str()?.to_string(),
                frame_vars: v
                    .get("fv")?
                    .as_arr()?
                    .iter()
                    .map(|p| u32::try_from(p.as_u64()?).ok())
                    .collect::<Option<_>>()?,
                clauses: v
                    .get("cl")?
                    .as_arr()?
                    .iter()
                    .map(|c| {
                        c.as_arr()?
                            .iter()
                            .map(|l| u32::try_from(l.as_u64()?).ok())
                            .collect::<Option<_>>()
                    })
                    .collect::<Option<_>>()?,
            }),
            _ => None,
        }
    }

    /// Serializes the record as one framed journal line (with trailing
    /// newline).
    pub fn to_line(&self) -> String {
        let payload = self.to_json().to_string();
        format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()))
    }
}

/// Parses one framed line; `None` on any damage.
fn parse_line(line: &str) -> Option<Record> {
    let (sum, payload) = line.split_once(' ')?;
    if sum.len() != 16 {
        return None;
    }
    let expected = u64::from_str_radix(sum, 16).ok()?;
    if fnv1a(payload.as_bytes()) != expected {
        return None;
    }
    Record::from_json(&json::parse(payload).ok()?)
}

/// What recovering one file yielded.
#[derive(Debug, Default)]
struct FileRecovery {
    records: Vec<Record>,
    /// Lines discarded from the first bad record on (0 = clean file).
    truncated: u64,
    /// Byte offset of the end of the last good record.
    good_len: u64,
}

/// Parses a record file leniently: stops at the first damaged line.
fn recover_file(text: &[u8]) -> FileRecovery {
    let mut out = FileRecovery::default();
    let mut offset: u64 = 0;
    let mut rest = text;
    loop {
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            // A torn tail (bytes without a terminating newline) is the
            // normal shape of a mid-write kill; anything left is damage.
            if !rest.is_empty() {
                out.truncated += 1;
            }
            break;
        };
        let line = &rest[..nl];
        let parsed = std::str::from_utf8(line).ok().and_then(parse_line);
        let discarded_after = |tail: &[u8]| {
            tail.split(|&b| b == b'\n')
                .filter(|s| !s.is_empty())
                .count() as u64
        };
        let Some(record) = parsed else {
            // First bad record: count it plus every remaining line.
            out.truncated += 1 + discarded_after(&rest[nl + 1..]);
            break;
        };
        if let Record::Meta { version } = record {
            if version > FORMAT_VERSION {
                // A future format: nothing after this marker is ours.
                out.truncated += discarded_after(&rest[nl + 1..]).max(1);
                break;
            }
        } else {
            out.records.push(record);
        }
        offset += nl as u64 + 1;
        out.good_len = offset;
        rest = &rest[nl + 1..];
    }
    out
}

/// What [`DiskJournal::open`] recovered from the store directory.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct RecoveryStats {
    /// Records successfully replayed (snapshot + journal).
    pub recovered: u64,
    /// Damaged records/lines discarded across both files.
    pub truncated: u64,
}

/// The open, append-only journal of a persistent store, plus the
/// compaction machinery. All methods are called under the store's disk
/// mutex; none take the store's map locks (the store orders disk lock
/// outside map locks during compaction, and map locks are never held
/// while waiting for the disk lock).
#[derive(Debug)]
pub(crate) struct DiskJournal {
    dir: PathBuf,
    journal: File,
    /// Records currently in the journal file (loaded + appended).
    journal_records: usize,
    /// Framed lines appended but not yet written out.
    pending: String,
    pending_records: usize,
    opts: StoreOptions,
}

impl DiskJournal {
    /// Opens (creating if needed) the store directory, recovers the
    /// snapshot and journal, truncates journal damage, and returns the
    /// journal handle plus every recovered record in replay order.
    pub fn open(
        dir: &Path,
        opts: StoreOptions,
    ) -> io::Result<(DiskJournal, Vec<Record>, RecoveryStats)> {
        fs::create_dir_all(dir)?;
        // A leftover tmp snapshot is an interrupted compaction: the real
        // snapshot + journal are authoritative, the scratch is garbage.
        let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));
        let mut records = Vec::new();
        let mut stats = RecoveryStats::default();
        match fs::read(dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => {
                let rec = recover_file(&bytes);
                stats.recovered += rec.records.len() as u64;
                stats.truncated += rec.truncated;
                records.extend(rec.records);
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let journal_path = dir.join(JOURNAL_FILE);
        let mut journal = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&journal_path)?;
        let mut bytes = Vec::new();
        journal.read_to_end(&mut bytes)?;
        let rec = recover_file(&bytes);
        if rec.truncated > 0 {
            // Physically drop the damaged tail so appends never
            // interleave with garbage.
            journal.set_len(rec.good_len)?;
            journal.seek(SeekFrom::End(0))?;
        }
        stats.recovered += rec.records.len() as u64;
        stats.truncated += rec.truncated;
        let journal_records = rec.records.len();
        records.extend(rec.records);
        let mut disk = DiskJournal {
            dir: dir.to_path_buf(),
            journal,
            journal_records,
            pending: String::new(),
            pending_records: 0,
            opts,
        };
        if bytes.is_empty() {
            disk.append(&Record::Meta {
                version: FORMAT_VERSION,
            });
        }
        Ok((disk, records, stats))
    }

    /// Queues one record for the next flush.
    pub fn append(&mut self, record: &Record) {
        self.pending.push_str(&record.to_line());
        self.pending_records += 1;
    }

    /// Whether a flush would write anything.
    pub fn dirty(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Writes every pending record to the journal and (optionally)
    /// fsyncs. A no-op when clean.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.journal.write_all(self.pending.as_bytes())?;
        if self.opts.fsync {
            self.journal.sync_data()?;
        }
        self.journal_records += self.pending_records;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Whether the journal has grown enough that the next flush should
    /// compact.
    pub fn wants_compaction(&self) -> bool {
        self.journal_records >= self.opts.compact_threshold.max(1)
    }

    /// Atomically replaces the snapshot with `records` (the full live
    /// state) and empties the journal: write tmp → fsync → rename →
    /// fsync dir → truncate journal. Any crash leaves a loadable store.
    pub fn compact(&mut self, records: &[Record]) -> io::Result<()> {
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            let mut f = File::create(&tmp)?;
            let mut text = Record::Meta {
                version: FORMAT_VERSION,
            }
            .to_line();
            for r in records {
                text.push_str(&r.to_line());
            }
            f.write_all(text.as_bytes())?;
            if self.opts.fsync {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        if self.opts.fsync {
            // Make the rename itself durable.
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        self.journal.set_len(0)?;
        self.journal.seek(SeekFrom::Start(0))?;
        self.journal_records = 0;
        self.append(&Record::Meta {
            version: FORMAT_VERSION,
        });
        let pending = std::mem::take(&mut self.pending);
        self.pending_records = 0;
        self.journal.write_all(pending.as_bytes())?;
        if self.opts.fsync {
            self.journal.sync_data()?;
        }
        Ok(())
    }

    /// Current on-disk size of the store. Bytes queued but not yet
    /// flushed count toward the journal (they are bytes the store owes
    /// the disk).
    pub fn footprint(&self) -> DiskFootprint {
        let journal_bytes = self.journal.metadata().map_or(0, |m| m.len());
        let snapshot_bytes = fs::metadata(self.dir.join(SNAPSHOT_FILE)).map_or(0, |m| m.len());
        DiskFootprint {
            journal_bytes: journal_bytes + self.pending.len() as u64,
            snapshot_bytes,
            journal_records: (self.journal_records + self.pending_records) as u64,
        }
    }
}

/// On-disk size of a persistent store, for health reporting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DiskFootprint {
    /// Bytes in `journal.aqed`, including records queued for the next
    /// flush.
    pub journal_bytes: u64,
    /// Bytes in `snapshot.aqed` (0 before the first compaction).
    pub snapshot_bytes: u64,
    /// Records in the journal (loaded + appended + queued).
    pub journal_records: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bug_record() -> Record {
        Record::Bug {
            design: 0xdead_beef_0000_0001,
            bad_index: 2,
            bad_name: "aqed_fc".into(),
            cex: PersistedCex {
                property: PropertyKind::Fc,
                depth: 3,
                init: vec![(4, 8, 0xff)],
                trace: vec![vec![(0, 1, 1)], vec![(0, 1, 0), (1, 64, u64::MAX)]],
            },
        }
    }

    #[test]
    fn records_round_trip_through_framed_lines() {
        let records = [
            Record::Meta { version: 1 },
            Record::Clean {
                design: u64::MAX,
                bad_index: 0,
                bad_name: "aqed_rb".into(),
                bound: 12,
            },
            bug_record(),
            Record::Cone {
                design: 7,
                bads: vec![0, 3],
                cone: vec![1, 2, 9],
            },
            Record::ConeClean {
                cone: 0x0123_4567_89ab_cdef,
                bad_name: "BAD_RB_STARVATION".into(),
                bound: 9,
            },
            Record::ConeBug {
                cone: 11,
                bad_name: "BAD_FC".into(),
                cex: PersistedCex {
                    property: PropertyKind::Fc,
                    depth: 1,
                    init: vec![],
                    trace: vec![vec![(2, 4, 0xa)]],
                },
            },
            Record::Learnts {
                cone: u64::MAX,
                bad_name: "BAD_SAC".into(),
                frame_vars: vec![10, 25, 41],
                clauses: vec![vec![0, 3, 5], vec![7]],
            },
        ];
        for r in &records {
            let line = r.to_line();
            assert!(line.ends_with('\n'));
            let back = parse_line(line.trim_end_matches('\n')).expect("parse back");
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn recovery_stops_at_the_first_damaged_line() {
        let good = bug_record();
        let mut text = good.to_line();
        text.push_str(&good.to_line());
        let clean = recover_file(text.as_bytes());
        assert_eq!(clean.records.len(), 2);
        assert_eq!(clean.truncated, 0);
        assert_eq!(clean.good_len, text.len() as u64);
        // Flip one payload byte of the second record.
        let mut damaged = text.clone().into_bytes();
        let mid = text.len() - 10;
        damaged[mid] ^= 0x01;
        let rec = recover_file(&damaged);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncated, 1);
        assert_eq!(rec.good_len, good.to_line().len() as u64);
        // A torn tail (no newline) is tolerated the same way.
        let torn = &text.as_bytes()[..text.len() - 5];
        let rec = recover_file(torn);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncated, 1);
    }

    #[test]
    fn future_format_versions_are_not_misread() {
        let mut text = Record::Meta {
            version: FORMAT_VERSION + 1,
        }
        .to_line();
        text.push_str(&bug_record().to_line());
        let rec = recover_file(text.as_bytes());
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncated, 1);
    }
}
