//! Cross-request artifact cache for verification runs.
//!
//! A long-lived process (the `aqed-serve` daemon, a warm CI loop) sees
//! the same composed design over and over. [`ArtifactStore`] is the
//! content-addressed memory shared by those runs: artifacts are keyed by
//! a 64-bit hash of the composed system's canonical BTOR2 export (see
//! [`design_hash`]), so "the same design" means *textually the same
//! model*, independent of which request built it.
//!
//! Two artifact kinds are stored:
//!
//! * **COI cones** — the per-(design, bad-set) support fixpoints that
//!   the per-run [`CoiCache`] memoizes. Cones are encoded positionally
//!   (indices into the system's `inputs ++ states` declaration order,
//!   never raw `VarId`s) so they stay valid across requests that rebuild
//!   the design in a fresh [`ExprPool`]. A run seeds its `CoiCache` from
//!   the store before solving and donates new cones back afterwards.
//! * **Obligation verdicts** — per-(design, bad) facts merged across
//!   runs: the deepest bound known clean and the shallowest known
//!   counterexample. Only *definitive* outcomes are recorded (`Clean`,
//!   validated `Bug`); `Inconclusive`/`Errored` depend on budgets and
//!   are never cached. Because BMC explores depth by depth, a stored
//!   bug's depth is minimal, so a warm hit reproduces exactly the
//!   verdict a cold run would compute — a bug at depth `d` answers any
//!   request with bound ≥ `d`, and a design clean to bound `k` answers
//!   any request with bound ≤ `k`.
//!
//! Soundness guards: a 64-bit content hash plus a bad-name check gate
//! every lookup, and a cached counterexample is **replayed on the
//! concrete simulator against the requesting run's system** before
//! being served — a hash collision or stale entry degrades to a cache
//! miss, never to a wrong verdict.

use crate::verify::CheckOutcome;
use aqed_bmc::Counterexample;
use aqed_expr::{ExprPool, VarId};
use aqed_obs::metrics;
use aqed_tsys::{to_btor2, CoiCache, TransitionSystem};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Content hash of a composed system: FNV-1a 64 over its canonical
/// BTOR2 export. Two requests share artifacts exactly when their
/// composed design+monitor systems print identically.
#[must_use]
pub fn design_hash(ts: &TransitionSystem, pool: &ExprPool) -> u64 {
    let text = to_btor2(ts, pool);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything known about one (design, bad-index) obligation, merged
/// over every run that touched it.
#[derive(Debug, Clone)]
struct ObligationFact {
    /// Bad-property name, checked on lookup (hash-collision guard).
    bad_name: String,
    /// No counterexample exists at any depth `<= clean_to`.
    clean_to: Option<usize>,
    /// The shallowest known counterexample, with the property it
    /// violates. BMC's depth-by-depth search makes this depth minimal.
    bug: Option<(crate::verify::PropertyKind, Counterexample)>,
}

/// Cone table key: (design hash, sorted bad-index set).
type ConeKey = (u64, Vec<usize>);

/// Thread-safe, content-hash-keyed artifact cache shared across
/// verification requests (see the module docs for keying and soundness).
#[derive(Debug, Default)]
pub struct ArtifactStore {
    /// Cone key → positional cone encoding.
    cones: Mutex<HashMap<ConeKey, Vec<u32>>>,
    /// (design hash, bad index) → merged obligation facts.
    outcomes: Mutex<HashMap<(u64, usize), ObligationFact>>,
    outcome_hits: AtomicU64,
    outcome_misses: AtomicU64,
    cones_seeded: AtomicU64,
    cones_absorbed: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Position of every input and state variable in declaration order —
/// the `VarId`-independent coordinate system cones are stored in.
fn var_positions(ts: &TransitionSystem) -> HashMap<VarId, u32> {
    ts.inputs()
        .iter()
        .copied()
        .chain(ts.states().iter().map(|s| s.var))
        .enumerate()
        .map(|(i, v)| (v, u32::try_from(i).expect("system with > u32::MAX vars")))
        .collect()
}

fn position_vars(ts: &TransitionSystem) -> Vec<VarId> {
    ts.inputs()
        .iter()
        .copied()
        .chain(ts.states().iter().map(|s| s.var))
        .collect()
}

impl ArtifactStore {
    #[must_use]
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// Obligation lookups answered from the store.
    #[must_use]
    pub fn outcome_hits(&self) -> u64 {
        self.outcome_hits.load(Ordering::Relaxed)
    }

    /// Obligation lookups that had to solve.
    #[must_use]
    pub fn outcome_misses(&self) -> u64 {
        self.outcome_misses.load(Ordering::Relaxed)
    }

    /// Cones transplanted into per-run caches so far.
    #[must_use]
    pub fn cones_seeded(&self) -> u64 {
        self.cones_seeded.load(Ordering::Relaxed)
    }

    /// Cones harvested from per-run caches so far.
    #[must_use]
    pub fn cones_absorbed(&self) -> u64 {
        self.cones_absorbed.load(Ordering::Relaxed)
    }

    /// Transplants every stored cone for `design` into a fresh per-run
    /// [`CoiCache`], translating positions back to the run's `VarId`s.
    /// Returns how many cones were seeded.
    pub fn seed_coi_cache(&self, design: u64, ts: &TransitionSystem, cache: &CoiCache) -> usize {
        let vars = position_vars(ts);
        let mut seeded = 0usize;
        for ((_, bads), positions) in lock(&self.cones).iter().filter(|((d, _), _)| *d == design) {
            let cone: Option<HashSet<VarId>> = positions
                .iter()
                .map(|&p| vars.get(p as usize).copied())
                .collect();
            // An out-of-range position means the entry does not belong
            // to this system (hash collision); skip it.
            let Some(cone) = cone else { continue };
            cache.seed_cone(bads, cone);
            seeded += 1;
        }
        if seeded > 0 {
            self.cones_seeded
                .fetch_add(seeded as u64, Ordering::Relaxed);
            if aqed_obs::enabled() {
                metrics::global()
                    .counter("artifact.cone.seeded")
                    .add(seeded as u64);
            }
        }
        seeded
    }

    /// Harvests every cone a finished run memoized into the store,
    /// encoded positionally. Returns how many entries were new.
    pub fn absorb_cones(&self, design: u64, ts: &TransitionSystem, cache: &CoiCache) -> usize {
        let positions = var_positions(ts);
        let mut added = 0usize;
        let mut cones = lock(&self.cones);
        for (bads, cone) in cache.cones() {
            cones.entry((design, bads)).or_insert_with(|| {
                added += 1;
                let mut enc: Vec<u32> = cone
                    .iter()
                    // Cone sets may mention vars that are neither inputs
                    // nor states; slicing only ever tests membership of
                    // input/state vars, so dropping the rest is safe.
                    .filter_map(|v| positions.get(v).copied())
                    .collect();
                enc.sort_unstable();
                enc
            });
        }
        drop(cones);
        if added > 0 {
            self.cones_absorbed
                .fetch_add(added as u64, Ordering::Relaxed);
            if aqed_obs::enabled() {
                metrics::global()
                    .counter("artifact.cone.absorbed")
                    .add(added as u64);
            }
        }
        added
    }

    /// Answers one obligation from the store if a definitive fact
    /// covers the requested bound, else `None`. A served bug has been
    /// replayed against `ts`/`pool`; a served clean relies on the
    /// content hash plus the bad-name check.
    #[must_use]
    pub fn lookup_outcome(
        &self,
        design: u64,
        bad_index: usize,
        bad_name: &str,
        bound: usize,
        ts: &TransitionSystem,
        pool: &ExprPool,
    ) -> Option<CheckOutcome> {
        let served = self.try_serve(design, bad_index, bad_name, bound, ts, pool);
        if aqed_obs::enabled() {
            let name = if served.is_some() {
                "artifact.outcome.hits"
            } else {
                "artifact.outcome.misses"
            };
            metrics::global().counter(name).inc();
        }
        match &served {
            Some(_) => self.outcome_hits.fetch_add(1, Ordering::Relaxed),
            None => self.outcome_misses.fetch_add(1, Ordering::Relaxed),
        };
        served
    }

    fn try_serve(
        &self,
        design: u64,
        bad_index: usize,
        bad_name: &str,
        bound: usize,
        ts: &TransitionSystem,
        pool: &ExprPool,
    ) -> Option<CheckOutcome> {
        let key = (design, bad_index);
        let fact = lock(&self.outcomes).get(&key).cloned()?;
        if fact.bad_name != bad_name {
            return None;
        }
        if let Some((property, cex)) = &fact.bug {
            if cex.depth > bound {
                // The known bug is deeper than this request's horizon,
                // and BMC found nothing shallower — the request's
                // answer is clean at its own bound.
                return Some(CheckOutcome::Clean { bound });
            }
            if cex.replay(ts, pool) {
                return Some(CheckOutcome::Bug {
                    property: *property,
                    counterexample: cex.clone(),
                });
            }
            // The witness does not replay on this run's system: the
            // entry is stale or collided. Drop it so it cannot keep
            // degrading every lookup.
            lock(&self.outcomes).remove(&key);
            return None;
        }
        match fact.clean_to {
            Some(k) if k >= bound => Some(CheckOutcome::Clean { bound }),
            _ => None,
        }
    }

    /// Merges one freshly computed obligation outcome into the store.
    /// Non-definitive outcomes (`Inconclusive`, `Errored`) are ignored:
    /// they describe the budget, not the design.
    pub fn record_outcome(
        &self,
        design: u64,
        bad_index: usize,
        bad_name: &str,
        outcome: &CheckOutcome,
    ) {
        let mut outcomes = lock(&self.outcomes);
        let fact = outcomes
            .entry((design, bad_index))
            .or_insert_with(|| ObligationFact {
                bad_name: bad_name.to_string(),
                clean_to: None,
                bug: None,
            });
        if fact.bad_name != bad_name {
            // Collision between two designs with the same hash but
            // different monitors; keep the first owner.
            return;
        }
        match outcome {
            CheckOutcome::Clean { bound } => {
                fact.clean_to = Some(fact.clean_to.map_or(*bound, |k| k.max(*bound)));
            }
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                let shallower = fact
                    .bug
                    .as_ref()
                    .is_none_or(|(_, old)| counterexample.depth < old.depth);
                if shallower {
                    fact.bug = Some((*property, counterexample.clone()));
                }
                // Depth-by-depth search: a cex at depth d proves depths
                // < d clean.
                if counterexample.depth > 0 {
                    let below = counterexample.depth - 1;
                    fact.clean_to = Some(fact.clean_to.map_or(below, |k| k.max(below)));
                }
            }
            CheckOutcome::Inconclusive { .. } | CheckOutcome::Errored { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_sat::StopReason;

    fn toy_system(pool: &mut ExprPool, bug_at: u64) -> TransitionSystem {
        let mut ts = TransitionSystem::new("toy");
        let en = ts.add_input(pool, "en", 1);
        let c = ts.add_register(pool, "c", 4, 0);
        let ce = pool.var_expr(c);
        let one = pool.lit(4, 1);
        let inc = pool.add(ce, one);
        let ene = pool.var_expr(en);
        let next = pool.ite(ene, inc, ce);
        ts.set_next(c, next);
        let tgt = pool.lit(4, bug_at);
        let hit = pool.eq(ce, tgt);
        ts.add_bad("counter_hits_target", hit);
        ts
    }

    #[test]
    fn hashes_separate_different_designs() {
        let mut p = ExprPool::new();
        let a = toy_system(&mut p, 5);
        let b = toy_system(&mut p, 6);
        assert_ne!(design_hash(&a, &p), design_hash(&b, &p));
        assert_eq!(design_hash(&a, &p), design_hash(&a, &p));
    }

    #[test]
    fn clean_facts_cover_smaller_bounds_only() {
        let mut p = ExprPool::new();
        let ts = toy_system(&mut p, 9);
        let h = design_hash(&ts, &p);
        let store = ArtifactStore::new();
        let name = "counter_hits_target";
        assert!(store.lookup_outcome(h, 0, name, 4, &ts, &p).is_none());
        store.record_outcome(h, 0, name, &CheckOutcome::Clean { bound: 6 });
        // Covered bound: served, re-bounded to the request.
        assert!(matches!(
            store.lookup_outcome(h, 0, name, 4, &ts, &p),
            Some(CheckOutcome::Clean { bound: 4 })
        ));
        // Deeper than anything known: miss.
        assert!(store.lookup_outcome(h, 0, name, 8, &ts, &p).is_none());
        // Wrong bad name (collision guard): miss.
        assert!(store.lookup_outcome(h, 0, "other", 4, &ts, &p).is_none());
        assert_eq!(store.outcome_hits(), 1);
        assert_eq!(store.outcome_misses(), 3);
    }

    #[test]
    fn budget_limited_outcomes_are_never_recorded() {
        let mut p = ExprPool::new();
        let ts = toy_system(&mut p, 9);
        let h = design_hash(&ts, &p);
        let store = ArtifactStore::new();
        store.record_outcome(
            h,
            0,
            "counter_hits_target",
            &CheckOutcome::Inconclusive {
                bound: 3,
                reason: StopReason::Conflicts,
            },
        );
        store.record_outcome(
            h,
            0,
            "counter_hits_target",
            &CheckOutcome::Errored {
                message: "worker panicked".into(),
            },
        );
        assert!(store
            .lookup_outcome(h, 0, "counter_hits_target", 1, &ts, &p)
            .is_none());
    }

    #[test]
    fn cones_round_trip_through_positional_encoding() {
        let mut p = ExprPool::new();
        let ts = toy_system(&mut p, 5);
        let h = design_hash(&ts, &p);
        let store = ArtifactStore::new();
        // Run one cached slice, donate its cone...
        let donor = CoiCache::new();
        let _ = aqed_tsys::coi_slice_cached(&ts, &p, &[0], Some(&donor));
        assert_eq!(store.absorb_cones(h, &ts, &donor), 1);
        // Absorbing the same cones again adds nothing.
        assert_eq!(store.absorb_cones(h, &ts, &donor), 0);
        // ...and a "second request" (fresh pool, same construction)
        // gets it back as a pure memo hit with an identical slice.
        let mut p2 = ExprPool::new();
        let ts2 = toy_system(&mut p2, 5);
        assert_eq!(design_hash(&ts2, &p2), h);
        let warm = CoiCache::new();
        assert_eq!(store.seed_coi_cache(h, &ts2, &warm), 1);
        let cold = aqed_tsys::coi_slice(&ts2, &p2, &[0]);
        let cached = aqed_tsys::coi_slice_cached(&ts2, &p2, &[0], Some(&warm));
        assert_eq!(warm.hits(), 1);
        assert_eq!(warm.misses(), 0);
        assert_eq!(cold.system.inputs(), cached.system.inputs());
        assert_eq!(cold.latches_kept, cached.latches_kept);
        // A different design's hash sees nothing.
        let other = CoiCache::new();
        assert_eq!(store.seed_coi_cache(h ^ 1, &ts2, &other), 0);
    }
}
