//! Cross-request artifact cache for verification runs.
//!
//! A long-lived process (the `aqed-serve` daemon, a warm CI loop) sees
//! the same composed design over and over. [`ArtifactStore`] is the
//! content-addressed memory shared by those runs: artifacts are keyed by
//! a 64-bit hash of the composed system's canonical BTOR2 export (see
//! [`design_hash`]), so "the same design" means *textually the same
//! model*, independent of which request built it.
//!
//! Four artifact kinds are stored:
//!
//! * **COI cones** — the per-(design, bad-set) support fixpoints that
//!   the per-run [`CoiCache`] memoizes. Cones are encoded positionally
//!   (indices into the system's `inputs ++ states` declaration order,
//!   never raw `VarId`s) so they stay valid across requests that rebuild
//!   the design in a fresh [`ExprPool`]. A run seeds its `CoiCache` from
//!   the store before solving and donates new cones back afterwards.
//! * **Obligation verdicts** — per-(design, bad) facts merged across
//!   runs: the deepest bound known clean and the shallowest known
//!   counterexample. Only *definitive* outcomes are recorded (`Clean`,
//!   validated `Bug`); `Inconclusive`/`Errored` depend on budgets and
//!   are never cached. Because BMC explores depth by depth, a stored
//!   bug's depth is minimal, so a warm hit reproduces exactly the
//!   verdict a cold run would compute — a bug at depth `d` answers any
//!   request with bound ≥ `d`, and a design clean to bound `k` answers
//!   any request with bound ≤ `k`.
//! * **Cone-keyed verdicts** — the same facts keyed by
//!   [`cone_hash`]: the content hash of the obligation's COI *slice*
//!   rather than the whole design. Because the slice keeps every
//!   constraint and is exactly what BMC solves, an obligation's verdict
//!   is fully determined by its slice — so after an edit that leaves a
//!   cone untouched, the cone-keyed fact still applies even though the
//!   whole-design hash changed. This is what makes warm-start
//!   re-verification ("CI mode") skip untouched obligations entirely.
//! * **Learnt-clause packs** — per-(cone, bad) clause cores exported
//!   from a finished BMC run, re-injected on the next run over the
//!   identical slice. Packs are hints, never facts: injection re-checks
//!   per-frame variable fingerprints and discards on any mismatch, and
//!   an injected clause is redundant with respect to the (identical)
//!   CNF, so a wrong pack can cost time but not a verdict.
//!
//! Soundness guards: a 64-bit content hash plus a bad-name check gate
//! every lookup, and a cached counterexample is **replayed on the
//! concrete simulator against the requesting run's system** before
//! being served — a hash collision or stale entry degrades to a cache
//! miss, never to a wrong verdict.
//!
//! # Durability
//!
//! A store opened with [`ArtifactStore::open`] additionally journals
//! every definitive verdict and cone to disk (append-only, checksummed,
//! snapshot-compacted — see [`crate::persist`]) and recovers them on
//! the next open, so a daemon restart — graceful or SIGKILL — starts
//! warm. Counterexamples are persisted positionally and re-validated by
//! simulator replay before being served, exactly like in-memory
//! entries: recovery can only lose records (corruption truncates at the
//! first bad record), never serve a wrong verdict.

use crate::persist::{DiskJournal, PersistedCex, Record, StoreOptions};
use crate::verify::{CheckOutcome, PropertyKind};
use aqed_bitvec::Bv;
use aqed_bmc::{Counterexample, LearntPack};
use aqed_expr::{ExprPool, VarId};
use aqed_obs::json::Json;
use aqed_obs::metrics;
use aqed_tsys::{to_btor2, CoiCache, CoiSlice, Trace, TransitionSystem};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Content hash of a composed system: FNV-1a 64 over its canonical
/// BTOR2 export. Two requests share artifacts exactly when their
/// composed design+monitor systems print identically.
#[must_use]
pub fn design_hash(ts: &TransitionSystem, pool: &ExprPool) -> u64 {
    crate::persist::fnv1a(to_btor2(ts, pool).as_bytes())
}

/// Derived warm-start key for one obligation: the content hash of its
/// COI slice's canonical BTOR2 export. Obligations whose cone a design
/// edit does not touch keep their cone hash even though the
/// whole-design hash changed — this, plus the bad-name guard, is the
/// primary soundness gate for every cone-keyed artifact (two
/// obligations share a key exactly when BMC would solve the same
/// sliced model).
#[must_use]
pub fn cone_hash(slice: &CoiSlice, pool: &ExprPool) -> u64 {
    design_hash(&slice.system, pool)
}

/// A known counterexample for one obligation, in whichever forms are
/// available: `decoded` (live `VarId`s, from this process) and/or
/// `encoded` (positional, from disk or ready for disk). Either form is
/// replay-validated before being served.
#[derive(Debug, Clone)]
struct BugFact {
    property: PropertyKind,
    /// The witness depth — minimal, because BMC searches depth by depth.
    depth: usize,
    /// Positional, pool-independent form (present whenever encodable;
    /// always present for disk-recovered facts).
    encoded: Option<PersistedCex>,
    /// Live form; filled lazily for recovered facts on first
    /// successful replay.
    decoded: Option<Counterexample>,
}

/// Everything known about one (design, bad-index) obligation, merged
/// over every run that touched it.
#[derive(Debug, Clone)]
struct ObligationFact {
    /// Bad-property name, checked on lookup (hash-collision guard).
    bad_name: String,
    /// No counterexample exists at any depth `<= clean_to`.
    clean_to: Option<usize>,
    /// The shallowest known counterexample.
    bug: Option<BugFact>,
}

/// Cone table key: (design hash, sorted bad-index set).
type ConeKey = (u64, Vec<usize>);

/// Thread-safe, content-hash-keyed artifact cache shared across
/// verification requests (see the module docs for keying, soundness and
/// durability).
#[derive(Debug, Default)]
pub struct ArtifactStore {
    /// Cone key → positional cone encoding.
    cones: Mutex<HashMap<ConeKey, Vec<u32>>>,
    /// (design hash, bad index) → merged obligation facts.
    outcomes: Mutex<HashMap<(u64, usize), ObligationFact>>,
    /// (cone hash, bad name) → merged obligation facts, keyed by the
    /// obligation's slice content instead of the whole design.
    /// Counterexamples here are positional against the *slice's*
    /// `inputs ++ states` order.
    cone_outcomes: Mutex<HashMap<(u64, String), ObligationFact>>,
    /// (cone hash, bad name) → exported learnt-clause core.
    packs: Mutex<HashMap<(u64, String), LearntPack>>,
    /// Disk journal for persistent stores. Lock ordering: this lock is
    /// never acquired while holding a map lock *except* transiently
    /// inside [`ArtifactStore::flush`], which takes it first — so map
    /// locks are never held while waiting on it.
    disk: Option<Mutex<DiskJournal>>,
    outcome_hits: AtomicU64,
    outcome_misses: AtomicU64,
    cone_hits: AtomicU64,
    cone_misses: AtomicU64,
    packs_served: AtomicU64,
    packs_recorded: AtomicU64,
    cones_seeded: AtomicU64,
    cones_absorbed: AtomicU64,
    recovered: AtomicU64,
    truncated: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Position of every input and state variable in declaration order —
/// the `VarId`-independent coordinate system cones and persisted
/// counterexamples are stored in.
fn var_positions(ts: &TransitionSystem) -> HashMap<VarId, u32> {
    ts.inputs()
        .iter()
        .copied()
        .chain(ts.states().iter().map(|s| s.var))
        .enumerate()
        .map(|(i, v)| (v, u32::try_from(i).expect("system with > u32::MAX vars")))
        .collect()
}

fn position_vars(ts: &TransitionSystem) -> Vec<VarId> {
    ts.inputs()
        .iter()
        .copied()
        .chain(ts.states().iter().map(|s| s.var))
        .collect()
}

/// Merges "clean to `bound`" into one fact; returns whether it grew.
fn fact_merge_clean(fact: &mut ObligationFact, bound: usize) -> bool {
    let grew = fact.clean_to.is_none_or(|k| bound > k);
    if grew {
        fact.clean_to = Some(bound);
    }
    grew
}

/// Merges a bug into one fact; returns whether it replaced a deeper
/// (or absent) witness.
fn fact_merge_bug(fact: &mut ObligationFact, bug: BugFact) -> bool {
    // Depth-by-depth search: a cex at depth d proves depths < d clean.
    if bug.depth > 0 {
        let below = bug.depth - 1;
        if fact.clean_to.is_none_or(|k| below > k) {
            fact.clean_to = Some(below);
        }
    }
    let shallower = fact.bug.as_ref().is_none_or(|old| bug.depth < old.depth);
    if shallower {
        fact.bug = Some(bug);
    }
    shallower
}

impl ArtifactStore {
    /// An in-memory store: warm within the process, gone with it.
    #[must_use]
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// Opens (creating if needed) a persistent store rooted at `dir`
    /// with default [`StoreOptions`], recovering every record the
    /// previous process managed to flush. Corruption — a torn tail
    /// from a mid-write kill, a flipped bit — truncates recovery at the
    /// first bad record and is reported through
    /// [`ArtifactStore::truncated_records`]; it never fails the open.
    ///
    /// # Errors
    ///
    /// Real I/O failures (permissions, full disk, `dir` is a file) are
    /// propagated.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<ArtifactStore> {
        ArtifactStore::open_with(dir, StoreOptions::default())
    }

    /// [`ArtifactStore::open`] with explicit tuning knobs.
    ///
    /// # Errors
    ///
    /// Real I/O failures are propagated; corruption is not an error.
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> io::Result<ArtifactStore> {
        let (disk, records, stats) = DiskJournal::open(dir.as_ref(), opts)?;
        let mut store = ArtifactStore::default();
        store.disk = Some(Mutex::new(disk));
        for record in &records {
            store.apply_record(record);
        }
        store.recovered.store(stats.recovered, Ordering::Relaxed);
        store.truncated.store(stats.truncated, Ordering::Relaxed);
        if aqed_obs::enabled() {
            metrics::global()
                .counter("artifact.recovered")
                .add(stats.recovered);
            metrics::global()
                .counter("artifact.truncated")
                .add(stats.truncated);
        }
        Ok(store)
    }

    /// Whether this store journals to disk.
    #[must_use]
    pub fn is_persistent(&self) -> bool {
        self.disk.is_some()
    }

    /// Replays one recovered record into the in-memory maps (no
    /// re-journaling). Shared by recovery and nothing else; merging is
    /// idempotent, so a record present in both snapshot and journal is
    /// harmless.
    fn apply_record(&self, record: &Record) {
        match record {
            Record::Meta { .. } => {}
            Record::Clean {
                design,
                bad_index,
                bad_name,
                bound,
            } => {
                self.merge_clean(*design, *bad_index, bad_name, *bound);
            }
            Record::Bug {
                design,
                bad_index,
                bad_name,
                cex,
            } => {
                self.merge_bug(
                    *design,
                    *bad_index,
                    bad_name,
                    BugFact {
                        property: cex.property,
                        depth: cex.depth,
                        encoded: Some(cex.clone()),
                        decoded: None,
                    },
                );
            }
            Record::Cone { design, bads, cone } => {
                lock(&self.cones)
                    .entry((*design, bads.clone()))
                    .or_insert_with(|| cone.clone());
            }
            Record::ConeClean {
                cone,
                bad_name,
                bound,
            } => {
                self.merge_cone_clean(*cone, bad_name, *bound);
            }
            Record::ConeBug {
                cone,
                bad_name,
                cex,
            } => {
                self.merge_cone_bug(
                    *cone,
                    bad_name,
                    BugFact {
                        property: cex.property,
                        depth: cex.depth,
                        encoded: Some(cex.clone()),
                        decoded: None,
                    },
                );
            }
            Record::Learnts {
                cone,
                bad_name,
                frame_vars,
                clauses,
            } => {
                self.merge_pack(
                    *cone,
                    bad_name,
                    LearntPack {
                        frame_vars: frame_vars.clone(),
                        clauses: clauses.clone(),
                    },
                );
            }
        }
    }

    /// Obligation lookups answered from the store.
    #[must_use]
    pub fn outcome_hits(&self) -> u64 {
        self.outcome_hits.load(Ordering::Relaxed)
    }

    /// Obligation lookups that had to solve.
    #[must_use]
    pub fn outcome_misses(&self) -> u64 {
        self.outcome_misses.load(Ordering::Relaxed)
    }

    /// Cone-keyed obligation lookups answered from the store (verdicts
    /// reused across a design edit).
    #[must_use]
    pub fn cone_hits(&self) -> u64 {
        self.cone_hits.load(Ordering::Relaxed)
    }

    /// Cone-keyed obligation lookups that found nothing reusable.
    #[must_use]
    pub fn cone_misses(&self) -> u64 {
        self.cone_misses.load(Ordering::Relaxed)
    }

    /// Learnt-clause packs handed to warm-starting runs so far.
    #[must_use]
    pub fn packs_served(&self) -> u64 {
        self.packs_served.load(Ordering::Relaxed)
    }

    /// Learnt-clause packs donated by finished runs so far.
    #[must_use]
    pub fn packs_recorded(&self) -> u64 {
        self.packs_recorded.load(Ordering::Relaxed)
    }

    /// Cones transplanted into per-run caches so far.
    #[must_use]
    pub fn cones_seeded(&self) -> u64 {
        self.cones_seeded.load(Ordering::Relaxed)
    }

    /// Cones harvested from per-run caches so far.
    #[must_use]
    pub fn cones_absorbed(&self) -> u64 {
        self.cones_absorbed.load(Ordering::Relaxed)
    }

    /// Records recovered from disk at open (0 for in-memory stores).
    #[must_use]
    pub fn recovered_records(&self) -> u64 {
        self.recovered.load(Ordering::Relaxed)
    }

    /// Damaged records discarded during recovery (0 = clean store).
    #[must_use]
    pub fn truncated_records(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    /// Journal flushes that actually wrote data.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Snapshot compactions performed.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Obligation facts currently held.
    #[must_use]
    pub fn outcome_count(&self) -> usize {
        lock(&self.outcomes).len()
    }

    /// COI cones currently held.
    #[must_use]
    pub fn cone_count(&self) -> usize {
        lock(&self.cones).len()
    }

    /// Cone-keyed obligation facts currently held.
    #[must_use]
    pub fn cone_outcome_count(&self) -> usize {
        lock(&self.cone_outcomes).len()
    }

    /// Learnt-clause packs currently held.
    #[must_use]
    pub fn pack_count(&self) -> usize {
        lock(&self.packs).len()
    }

    /// A point-in-time JSON summary of the store, for health endpoints.
    /// Persistent stores additionally report their on-disk footprint
    /// (journal/snapshot bytes and journal record count).
    #[must_use]
    pub fn stats_json(&self) -> Json {
        let mut fields = vec![
            ("persistent", Json::Bool(self.is_persistent())),
            ("outcomes", Json::num(self.outcome_count() as u64)),
            ("cones", Json::num(self.cone_count() as u64)),
            ("cone_outcomes", Json::num(self.cone_outcome_count() as u64)),
            ("learnt_packs", Json::num(self.pack_count() as u64)),
            ("outcome_hits", Json::num(self.outcome_hits())),
            ("outcome_misses", Json::num(self.outcome_misses())),
            ("cone_hits", Json::num(self.cone_hits())),
            ("cone_misses", Json::num(self.cone_misses())),
            ("packs_served", Json::num(self.packs_served())),
            ("packs_recorded", Json::num(self.packs_recorded())),
            ("cones_seeded", Json::num(self.cones_seeded())),
            ("cones_absorbed", Json::num(self.cones_absorbed())),
            ("recovered", Json::num(self.recovered_records())),
            ("truncated", Json::num(self.truncated_records())),
            ("flushes", Json::num(self.flushes())),
            ("compactions", Json::num(self.compactions())),
        ];
        if let Some(disk) = &self.disk {
            let fp = lock(disk).footprint();
            fields.push(("journal_bytes", Json::num(fp.journal_bytes)));
            fields.push(("snapshot_bytes", Json::num(fp.snapshot_bytes)));
            fields.push(("journal_records", Json::num(fp.journal_records)));
        }
        Json::obj(fields)
    }

    /// Writes every record journaled since the last flush to disk
    /// (fsynced per [`StoreOptions::fsync`]) and compacts the journal
    /// into a fresh snapshot when it has grown past the threshold.
    /// A no-op for in-memory stores and for persistent stores with
    /// nothing pending, so callers may flush liberally.
    ///
    /// # Errors
    ///
    /// Propagates write/rename failures; the store stays usable (the
    /// failed records remain pending for the next flush).
    pub fn flush(&self) -> io::Result<()> {
        let Some(disk) = &self.disk else {
            return Ok(());
        };
        let mut d = lock(disk);
        let wrote = d.dirty();
        d.flush()?;
        if wrote {
            self.flushes.fetch_add(1, Ordering::Relaxed);
            if aqed_obs::enabled() {
                metrics::global().counter("artifact.flush").inc();
            }
        }
        if d.wants_compaction() {
            // Map locks are taken briefly *inside* the disk lock; see
            // the ordering note on the `disk` field.
            let records = self.snapshot_records();
            d.compact(&records)?;
            self.compactions.fetch_add(1, Ordering::Relaxed);
            if aqed_obs::enabled() {
                metrics::global().counter("artifact.compacted").inc();
            }
        }
        Ok(())
    }

    /// Serializes the full live state as records, for compaction.
    fn snapshot_records(&self) -> Vec<Record> {
        let mut records = Vec::new();
        for (&(design, bad_index), fact) in lock(&self.outcomes).iter() {
            if let Some(bound) = fact.clean_to {
                records.push(Record::Clean {
                    design,
                    bad_index,
                    bad_name: fact.bad_name.clone(),
                    bound,
                });
            }
            if let Some(cex) = fact.bug.as_ref().and_then(|b| b.encoded.clone()) {
                records.push(Record::Bug {
                    design,
                    bad_index,
                    bad_name: fact.bad_name.clone(),
                    cex,
                });
            }
        }
        for ((design, bads), cone) in lock(&self.cones).iter() {
            records.push(Record::Cone {
                design: *design,
                bads: bads.clone(),
                cone: cone.clone(),
            });
        }
        for ((cone, bad_name), fact) in lock(&self.cone_outcomes).iter() {
            if let Some(bound) = fact.clean_to {
                records.push(Record::ConeClean {
                    cone: *cone,
                    bad_name: bad_name.clone(),
                    bound,
                });
            }
            if let Some(cex) = fact.bug.as_ref().and_then(|b| b.encoded.clone()) {
                records.push(Record::ConeBug {
                    cone: *cone,
                    bad_name: bad_name.clone(),
                    cex,
                });
            }
        }
        for ((cone, bad_name), pack) in lock(&self.packs).iter() {
            records.push(Record::Learnts {
                cone: *cone,
                bad_name: bad_name.clone(),
                frame_vars: pack.frame_vars.clone(),
                clauses: pack.clauses.clone(),
            });
        }
        records
    }

    /// Queues records for the journal. Must be called with **no map
    /// lock held** (see the ordering note on the `disk` field).
    fn journal(&self, records: impl IntoIterator<Item = Record>) {
        if let Some(disk) = &self.disk {
            let mut d = lock(disk);
            for r in records {
                d.append(&r);
            }
        }
    }

    /// Transplants every stored cone for `design` into a fresh per-run
    /// [`CoiCache`], translating positions back to the run's `VarId`s.
    /// Returns how many cones were seeded.
    pub fn seed_coi_cache(&self, design: u64, ts: &TransitionSystem, cache: &CoiCache) -> usize {
        let vars = position_vars(ts);
        let mut seeded = 0usize;
        for ((_, bads), positions) in lock(&self.cones).iter().filter(|((d, _), _)| *d == design) {
            let cone: Option<HashSet<VarId>> = positions
                .iter()
                .map(|&p| vars.get(p as usize).copied())
                .collect();
            // An out-of-range position means the entry does not belong
            // to this system (hash collision); skip it.
            let Some(cone) = cone else { continue };
            cache.seed_cone(bads, cone);
            seeded += 1;
        }
        if seeded > 0 {
            self.cones_seeded
                .fetch_add(seeded as u64, Ordering::Relaxed);
            if aqed_obs::enabled() {
                metrics::global()
                    .counter("artifact.cone.seeded")
                    .add(seeded as u64);
            }
        }
        seeded
    }

    /// Harvests every cone a finished run memoized into the store,
    /// encoded positionally. Returns how many entries were new.
    pub fn absorb_cones(&self, design: u64, ts: &TransitionSystem, cache: &CoiCache) -> usize {
        let positions = var_positions(ts);
        let mut fresh: Vec<Record> = Vec::new();
        {
            let mut cones = lock(&self.cones);
            for (bads, cone) in cache.cones() {
                cones.entry((design, bads)).or_insert_with_key(|(_, bads)| {
                    let mut enc: Vec<u32> = cone
                        .iter()
                        // Cone sets may mention vars that are neither inputs
                        // nor states; slicing only ever tests membership of
                        // input/state vars, so dropping the rest is safe.
                        .filter_map(|v| positions.get(v).copied())
                        .collect();
                    enc.sort_unstable();
                    fresh.push(Record::Cone {
                        design,
                        bads: bads.clone(),
                        cone: enc.clone(),
                    });
                    enc
                });
            }
        }
        let added = fresh.len();
        self.journal(fresh);
        if added > 0 {
            self.cones_absorbed
                .fetch_add(added as u64, Ordering::Relaxed);
            if aqed_obs::enabled() {
                metrics::global()
                    .counter("artifact.cone.absorbed")
                    .add(added as u64);
            }
        }
        added
    }

    /// Answers one obligation from the store if a definitive fact
    /// covers the requested bound, else `None`. A served bug has been
    /// replayed against `ts`/`pool`; a served clean relies on the
    /// content hash plus the bad-name check.
    #[must_use]
    pub fn lookup_outcome(
        &self,
        design: u64,
        bad_index: usize,
        bad_name: &str,
        bound: usize,
        ts: &TransitionSystem,
        pool: &ExprPool,
    ) -> Option<CheckOutcome> {
        let served = self.try_serve(design, bad_index, bad_name, bound, ts, pool);
        if aqed_obs::enabled() {
            let name = if served.is_some() {
                "artifact.outcome.hits"
            } else {
                "artifact.outcome.misses"
            };
            metrics::global().counter(name).inc();
        }
        match &served {
            Some(_) => self.outcome_hits.fetch_add(1, Ordering::Relaxed),
            None => self.outcome_misses.fetch_add(1, Ordering::Relaxed),
        };
        served
    }

    fn try_serve(
        &self,
        design: u64,
        bad_index: usize,
        bad_name: &str,
        bound: usize,
        ts: &TransitionSystem,
        pool: &ExprPool,
    ) -> Option<CheckOutcome> {
        let key = (design, bad_index);
        let fact = lock(&self.outcomes).get(&key).cloned()?;
        if fact.bad_name != bad_name {
            return None;
        }
        if let Some(bug) = &fact.bug {
            if bug.depth > bound {
                // The known bug is deeper than this request's horizon,
                // and BMC found nothing shallower — the request's
                // answer is clean at its own bound.
                return Some(CheckOutcome::Clean { bound });
            }
            // Serve the live witness if present, else decode the
            // positional one against this run's system. Either way
            // simulator replay validates before anything is served.
            let decoded = match &bug.decoded {
                Some(cex) => Some(cex.clone()),
                None => bug
                    .encoded
                    .as_ref()
                    .and_then(|enc| enc.decode(&fact.bad_name, bad_index, &position_vars(ts))),
            };
            if let Some(cex) = decoded {
                if cex.replay(ts, pool) {
                    if bug.decoded.is_none() {
                        // Promote the freshly validated decode so later
                        // lookups skip decode + replay bookkeeping.
                        if let Some(f) = lock(&self.outcomes).get_mut(&key) {
                            if let Some(b) = &mut f.bug {
                                if b.depth == bug.depth && b.decoded.is_none() {
                                    b.decoded = Some(cex.clone());
                                }
                            }
                        }
                    }
                    return Some(CheckOutcome::Bug {
                        property: bug.property,
                        counterexample: cex,
                    });
                }
            }
            // The witness does not decode/replay on this run's system:
            // the entry is stale or collided. Drop it so it cannot keep
            // degrading every lookup.
            lock(&self.outcomes).remove(&key);
            return None;
        }
        match fact.clean_to {
            Some(k) if k >= bound => Some(CheckOutcome::Clean { bound }),
            _ => None,
        }
    }

    /// Merges "clean to `bound`" into the fact table. Returns whether
    /// the fact grew (i.e. is worth journaling).
    fn merge_clean(&self, design: u64, bad_index: usize, bad_name: &str, bound: usize) -> bool {
        let mut outcomes = lock(&self.outcomes);
        let fact = outcomes
            .entry((design, bad_index))
            .or_insert_with(|| ObligationFact {
                bad_name: bad_name.to_string(),
                clean_to: None,
                bug: None,
            });
        if fact.bad_name != bad_name {
            // Collision between two designs with the same hash but
            // different monitors; keep the first owner.
            return false;
        }
        fact_merge_clean(fact, bound)
    }

    /// Merges a bug fact (new or recovered). Returns whether it
    /// replaced a deeper (or absent) witness.
    fn merge_bug(&self, design: u64, bad_index: usize, bad_name: &str, bug: BugFact) -> bool {
        let mut outcomes = lock(&self.outcomes);
        let fact = outcomes
            .entry((design, bad_index))
            .or_insert_with(|| ObligationFact {
                bad_name: bad_name.to_string(),
                clean_to: None,
                bug: None,
            });
        if fact.bad_name != bad_name {
            return false;
        }
        fact_merge_bug(fact, bug)
    }

    /// [`ArtifactStore::merge_clean`] for the cone-keyed table (the
    /// bad name is part of the key, so no collision guard is needed).
    fn merge_cone_clean(&self, cone: u64, bad_name: &str, bound: usize) -> bool {
        let mut outcomes = lock(&self.cone_outcomes);
        let fact = outcomes
            .entry((cone, bad_name.to_string()))
            .or_insert_with(|| ObligationFact {
                bad_name: bad_name.to_string(),
                clean_to: None,
                bug: None,
            });
        fact_merge_clean(fact, bound)
    }

    /// [`ArtifactStore::merge_bug`] for the cone-keyed table.
    fn merge_cone_bug(&self, cone: u64, bad_name: &str, bug: BugFact) -> bool {
        let mut outcomes = lock(&self.cone_outcomes);
        let fact = outcomes
            .entry((cone, bad_name.to_string()))
            .or_insert_with(|| ObligationFact {
                bad_name: bad_name.to_string(),
                clean_to: None,
                bug: None,
            });
        fact_merge_bug(fact, bug)
    }

    /// Merges a learnt-clause pack. A pack with more frames replaces a
    /// shallower one (deeper knowledge); at equal depth the newer pack
    /// wins (fresher activity ordering). Returns whether the table
    /// changed.
    fn merge_pack(&self, cone: u64, bad_name: &str, pack: LearntPack) -> bool {
        if pack.is_empty() {
            return false;
        }
        let mut packs = lock(&self.packs);
        match packs.entry((cone, bad_name.to_string())) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(pack);
                true
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if pack.frame_vars.len() >= e.get().frame_vars.len() {
                    e.insert(pack);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Merges one freshly computed obligation outcome into the store
    /// (and, for persistent stores, the journal). `ts` is the composed
    /// system the outcome was computed against, used to encode
    /// counterexamples positionally for disk. Non-definitive outcomes
    /// (`Inconclusive`, `Errored`) are ignored: they describe the
    /// budget, not the design.
    pub fn record_outcome(
        &self,
        design: u64,
        bad_index: usize,
        bad_name: &str,
        outcome: &CheckOutcome,
        ts: &TransitionSystem,
    ) {
        match outcome {
            CheckOutcome::Clean { bound } => {
                if self.merge_clean(design, bad_index, bad_name, *bound) {
                    self.journal([Record::Clean {
                        design,
                        bad_index,
                        bad_name: bad_name.to_string(),
                        bound: *bound,
                    }]);
                }
            }
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                let encoded = PersistedCex::encode(*property, counterexample, &var_positions(ts));
                let bug = BugFact {
                    property: *property,
                    depth: counterexample.depth,
                    encoded: encoded.clone(),
                    decoded: Some(counterexample.clone()),
                };
                if self.merge_bug(design, bad_index, bad_name, bug) {
                    if let Some(cex) = encoded {
                        self.journal([Record::Bug {
                            design,
                            bad_index,
                            bad_name: bad_name.to_string(),
                            cex,
                        }]);
                    }
                }
            }
            CheckOutcome::Inconclusive { .. } | CheckOutcome::Errored { .. } => {}
        }
    }

    /// Answers one obligation from the cone-keyed table if a definitive
    /// fact for its slice covers the requested bound, else `None`.
    /// `slice` is the obligation's COI slice of `ts` (the system being
    /// verified *now*); a served bug is decoded against the slice,
    /// widened to the full system exactly as BMC widens its own sliced
    /// witnesses, and **replayed against `ts`** before being served —
    /// the soundness gate that turns any stale or collided entry into a
    /// miss.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn lookup_cone_outcome(
        &self,
        cone: u64,
        bad_index: usize,
        bad_name: &str,
        bound: usize,
        slice: &CoiSlice,
        ts: &TransitionSystem,
        pool: &ExprPool,
    ) -> Option<CheckOutcome> {
        let served = self.try_serve_cone(cone, bad_index, bad_name, bound, slice, ts, pool);
        if aqed_obs::enabled() {
            let name = if served.is_some() {
                "artifact.verdict.reused"
            } else {
                "artifact.cone.misses"
            };
            metrics::global().counter(name).inc();
        }
        match &served {
            Some(_) => self.cone_hits.fetch_add(1, Ordering::Relaxed),
            None => self.cone_misses.fetch_add(1, Ordering::Relaxed),
        };
        served
    }

    #[allow(clippy::too_many_arguments)]
    fn try_serve_cone(
        &self,
        cone: u64,
        bad_index: usize,
        bad_name: &str,
        bound: usize,
        slice: &CoiSlice,
        ts: &TransitionSystem,
        pool: &ExprPool,
    ) -> Option<CheckOutcome> {
        let key = (cone, bad_name.to_string());
        let fact = lock(&self.cone_outcomes).get(&key).cloned()?;
        if let Some(bug) = &fact.bug {
            if bug.depth > bound {
                // Known bug deeper than this request's horizon, nothing
                // shallower exists: clean at the requested bound.
                return Some(CheckOutcome::Clean { bound });
            }
            let decoded = bug
                .encoded
                .as_ref()
                .and_then(|enc| enc.decode(bad_name, bad_index, &position_vars(&slice.system)));
            if let Some(mut cex) = decoded {
                // Widen the slice-local witness to the full system the
                // same way BMC widens its own sliced counterexamples:
                // zero values for sliced-away inputs and uninitialised
                // registers (sound: they lie outside the cone).
                let extra: Vec<(VarId, Bv)> = ts
                    .inputs()
                    .iter()
                    .filter(|v| !slice.system.inputs().contains(v))
                    .map(|&v| (v, Bv::zero(pool.var_width(v))))
                    .collect();
                cex.trace.pad_frames(&extra);
                for st in ts.states() {
                    if st.init.is_none() && !slice.system.is_state(st.var) {
                        cex.initial_state
                            .insert(st.var, Bv::zero(pool.var_width(st.var)));
                    }
                }
                if cex.replay(ts, pool) {
                    return Some(CheckOutcome::Bug {
                        property: bug.property,
                        counterexample: cex,
                    });
                }
            }
            // Decode or replay failed: the entry cannot belong to this
            // slice. Drop it so it stops degrading lookups.
            lock(&self.cone_outcomes).remove(&key);
            return None;
        }
        match fact.clean_to {
            Some(k) if k >= bound => Some(CheckOutcome::Clean { bound }),
            _ => None,
        }
    }

    /// The deepest bound known clean for a cone-keyed obligation — the
    /// warm-start frame-skipping hint when the fact does not cover the
    /// whole requested bound. The caller may skip solving frames
    /// `0..=prefix` over the identical slice: slice-content identity
    /// implies the frame CNFs are identical, so those queries were
    /// already proven UNSAT.
    #[must_use]
    pub fn cone_clean_prefix(&self, cone: u64, bad_name: &str) -> Option<usize> {
        lock(&self.cone_outcomes)
            .get(&(cone, bad_name.to_string()))
            .and_then(|f| f.clean_to)
    }

    /// Merges one freshly computed obligation outcome into the
    /// cone-keyed table (and journal). `slice` is the COI slice the
    /// obligation was solved over; the counterexample (computed against
    /// the full system) is restricted to the slice's variables before
    /// positional encoding — the dropped assignments are the zero
    /// padding BMC added outside the cone, which decode re-creates.
    pub fn record_cone_outcome(
        &self,
        cone: u64,
        bad_name: &str,
        outcome: &CheckOutcome,
        slice: &CoiSlice,
    ) {
        match outcome {
            CheckOutcome::Clean { bound } => {
                if self.merge_cone_clean(cone, bad_name, *bound) {
                    self.journal([Record::ConeClean {
                        cone,
                        bad_name: bad_name.to_string(),
                        bound: *bound,
                    }]);
                }
            }
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                let positions = var_positions(&slice.system);
                let mut trace = Trace::new();
                for k in 0..counterexample.trace.len() {
                    trace.push_frame(
                        counterexample
                            .trace
                            .frame(k)
                            .iter()
                            .filter(|(v, _)| positions.contains_key(v))
                            .cloned()
                            .collect(),
                    );
                }
                let restricted = Counterexample {
                    bad_name: counterexample.bad_name.clone(),
                    bad_index: counterexample.bad_index,
                    depth: counterexample.depth,
                    trace,
                    initial_state: counterexample
                        .initial_state
                        .iter()
                        .filter(|(v, _)| positions.contains_key(*v))
                        .map(|(v, bv)| (*v, *bv))
                        .collect(),
                };
                let Some(encoded) = PersistedCex::encode(*property, &restricted, &positions) else {
                    return;
                };
                let bug = BugFact {
                    property: *property,
                    depth: counterexample.depth,
                    encoded: Some(encoded.clone()),
                    decoded: None,
                };
                if self.merge_cone_bug(cone, bad_name, bug) {
                    self.journal([Record::ConeBug {
                        cone,
                        bad_name: bad_name.to_string(),
                        cex: encoded,
                    }]);
                }
            }
            CheckOutcome::Inconclusive { .. } | CheckOutcome::Errored { .. } => {}
        }
    }

    /// The learnt-clause pack for `(cone, bad)`, if one is stored.
    /// Purely a warm-start hint: the consumer re-validates per-frame
    /// fingerprints and variable bounds at injection time.
    #[must_use]
    pub fn lookup_learnt_pack(&self, cone: u64, bad_name: &str) -> Option<LearntPack> {
        let pack = lock(&self.packs)
            .get(&(cone, bad_name.to_string()))
            .cloned();
        if pack.is_some() {
            self.packs_served.fetch_add(1, Ordering::Relaxed);
            if aqed_obs::enabled() {
                metrics::global().counter("artifact.pack.served").inc();
            }
        }
        pack
    }

    /// Donates a finished run's exported learnt-clause pack (and
    /// journals it). Empty packs are dropped; a pack covering fewer
    /// frames than the stored one never replaces it.
    pub fn record_learnt_pack(&self, cone: u64, bad_name: &str, pack: LearntPack) {
        let frame_vars = pack.frame_vars.clone();
        let clauses = pack.clauses.clone();
        if self.merge_pack(cone, bad_name, pack) {
            self.packs_recorded.fetch_add(1, Ordering::Relaxed);
            if aqed_obs::enabled() {
                metrics::global().counter("artifact.pack.recorded").inc();
            }
            self.journal([Record::Learnts {
                cone,
                bad_name: bad_name.to_string(),
                frame_vars,
                clauses,
            }]);
        }
    }
}

impl Drop for ArtifactStore {
    /// Best-effort final flush, so a one-shot CLI run with `--store-dir`
    /// persists without explicit plumbing. Errors are ignored — anyone
    /// needing a durability guarantee calls [`ArtifactStore::flush`].
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_sat::StopReason;

    fn toy_system(pool: &mut ExprPool, bug_at: u64) -> TransitionSystem {
        let mut ts = TransitionSystem::new("toy");
        let en = ts.add_input(pool, "en", 1);
        let c = ts.add_register(pool, "c", 4, 0);
        let ce = pool.var_expr(c);
        let one = pool.lit(4, 1);
        let inc = pool.add(ce, one);
        let ene = pool.var_expr(en);
        let next = pool.ite(ene, inc, ce);
        ts.set_next(c, next);
        let tgt = pool.lit(4, bug_at);
        let hit = pool.eq(ce, tgt);
        ts.add_bad("counter_hits_target", hit);
        ts
    }

    #[test]
    fn hashes_separate_different_designs() {
        let mut p = ExprPool::new();
        let a = toy_system(&mut p, 5);
        let b = toy_system(&mut p, 6);
        assert_ne!(design_hash(&a, &p), design_hash(&b, &p));
        assert_eq!(design_hash(&a, &p), design_hash(&a, &p));
    }

    #[test]
    fn clean_facts_cover_smaller_bounds_only() {
        let mut p = ExprPool::new();
        let ts = toy_system(&mut p, 9);
        let h = design_hash(&ts, &p);
        let store = ArtifactStore::new();
        let name = "counter_hits_target";
        assert!(store.lookup_outcome(h, 0, name, 4, &ts, &p).is_none());
        store.record_outcome(h, 0, name, &CheckOutcome::Clean { bound: 6 }, &ts);
        // Covered bound: served, re-bounded to the request.
        assert!(matches!(
            store.lookup_outcome(h, 0, name, 4, &ts, &p),
            Some(CheckOutcome::Clean { bound: 4 })
        ));
        // Deeper than anything known: miss.
        assert!(store.lookup_outcome(h, 0, name, 8, &ts, &p).is_none());
        // Wrong bad name (collision guard): miss.
        assert!(store.lookup_outcome(h, 0, "other", 4, &ts, &p).is_none());
        assert_eq!(store.outcome_hits(), 1);
        assert_eq!(store.outcome_misses(), 3);
    }

    #[test]
    fn budget_limited_outcomes_are_never_recorded() {
        let mut p = ExprPool::new();
        let ts = toy_system(&mut p, 9);
        let h = design_hash(&ts, &p);
        let store = ArtifactStore::new();
        store.record_outcome(
            h,
            0,
            "counter_hits_target",
            &CheckOutcome::Inconclusive {
                bound: 3,
                reason: StopReason::Conflicts,
            },
            &ts,
        );
        store.record_outcome(
            h,
            0,
            "counter_hits_target",
            &CheckOutcome::Errored {
                message: "worker panicked".into(),
            },
            &ts,
        );
        assert!(store
            .lookup_outcome(h, 0, "counter_hits_target", 1, &ts, &p)
            .is_none());
    }

    #[test]
    fn cones_round_trip_through_positional_encoding() {
        let mut p = ExprPool::new();
        let ts = toy_system(&mut p, 5);
        let h = design_hash(&ts, &p);
        let store = ArtifactStore::new();
        // Run one cached slice, donate its cone...
        let donor = CoiCache::new();
        let _ = aqed_tsys::coi_slice_cached(&ts, &p, &[0], Some(&donor));
        assert_eq!(store.absorb_cones(h, &ts, &donor), 1);
        // Absorbing the same cones again adds nothing.
        assert_eq!(store.absorb_cones(h, &ts, &donor), 0);
        // ...and a "second request" (fresh pool, same construction)
        // gets it back as a pure memo hit with an identical slice.
        let mut p2 = ExprPool::new();
        let ts2 = toy_system(&mut p2, 5);
        assert_eq!(design_hash(&ts2, &p2), h);
        let warm = CoiCache::new();
        assert_eq!(store.seed_coi_cache(h, &ts2, &warm), 1);
        let cold = aqed_tsys::coi_slice(&ts2, &p2, &[0]);
        let cached = aqed_tsys::coi_slice_cached(&ts2, &p2, &[0], Some(&warm));
        assert_eq!(warm.hits(), 1);
        assert_eq!(warm.misses(), 0);
        assert_eq!(cold.system.inputs(), cached.system.inputs());
        assert_eq!(cold.latches_kept, cached.latches_kept);
        // A different design's hash sees nothing.
        let other = CoiCache::new();
        assert_eq!(store.seed_coi_cache(h ^ 1, &ts2, &other), 0);
    }

    /// The toy counter plus an independent "noise" counter that no bad
    /// property observes — editing its step constant changes the design
    /// hash but not the bad's cone hash.
    fn split_system(pool: &mut ExprPool, bug_at: u64, noise_inc: u64) -> TransitionSystem {
        let mut ts = toy_system(pool, bug_at);
        let d = ts.add_register(pool, "d", 8, 0);
        let de = pool.var_expr(d);
        let step = pool.lit(8, noise_inc);
        let dnext = pool.add(de, step);
        ts.set_next(d, dnext);
        ts
    }

    #[test]
    fn cone_keyed_clean_facts_survive_edits_outside_the_cone() {
        let name = "counter_hits_target";
        let mut p1 = ExprPool::new();
        let a = split_system(&mut p1, 9, 1);
        let sa = aqed_tsys::coi_slice(&a, &p1, &[0]);
        let key = cone_hash(&sa, &p1);
        // The "edited" design: same cone, different noise constant.
        let mut p2 = ExprPool::new();
        let b = split_system(&mut p2, 9, 3);
        let sb = aqed_tsys::coi_slice(&b, &p2, &[0]);
        assert_ne!(design_hash(&a, &p1), design_hash(&b, &p2));
        assert_eq!(key, cone_hash(&sb, &p2));
        let store = ArtifactStore::new();
        store.record_cone_outcome(key, name, &CheckOutcome::Clean { bound: 6 }, &sa);
        assert!(matches!(
            store.lookup_cone_outcome(key, 0, name, 4, &sb, &b, &p2),
            Some(CheckOutcome::Clean { bound: 4 })
        ));
        // Deeper than the fact: miss, but the clean prefix still feeds
        // warm-start frame skipping.
        assert!(store
            .lookup_cone_outcome(key, 0, name, 8, &sb, &b, &p2)
            .is_none());
        assert_eq!(store.cone_clean_prefix(key, name), Some(6));
        assert_eq!(store.cone_clean_prefix(key, "other"), None);
        assert_eq!(store.cone_hits(), 1);
        assert_eq!(store.cone_misses(), 1);
    }

    /// A valid counterexample for `split_system(_, bug_at, _)`: drive
    /// `en` high every cycle so the counter hits `bug_at` at depth
    /// `bug_at`.
    fn counter_cex(ts: &TransitionSystem, pool: &ExprPool, bug_at: usize) -> Counterexample {
        let en = ts.inputs()[0];
        let mut trace = Trace::new();
        for _ in 0..=bug_at {
            trace.push_frame(vec![(en, Bv::new(1, 1))]);
        }
        let cex = Counterexample {
            bad_name: "counter_hits_target".into(),
            bad_index: 0,
            depth: bug_at,
            trace,
            initial_state: HashMap::new(),
        };
        assert!(cex.replay(ts, pool), "hand-built witness must replay");
        cex
    }

    #[test]
    fn cone_keyed_bugs_replay_after_an_edit_outside_the_cone() {
        let name = "counter_hits_target";
        let mut p1 = ExprPool::new();
        let a = split_system(&mut p1, 2, 1);
        let sa = aqed_tsys::coi_slice(&a, &p1, &[0]);
        let key = cone_hash(&sa, &p1);
        let store = ArtifactStore::new();
        let outcome = CheckOutcome::Bug {
            property: PropertyKind::Fc,
            counterexample: counter_cex(&a, &p1, 2),
        };
        store.record_cone_outcome(key, name, &outcome, &sa);
        // Same cone, edited noise constant: the bug is served after
        // decode + widen + replay against the *new* full design.
        let mut p2 = ExprPool::new();
        let b = split_system(&mut p2, 2, 7);
        let sb = aqed_tsys::coi_slice(&b, &p2, &[0]);
        assert_eq!(key, cone_hash(&sb, &p2));
        match store.lookup_cone_outcome(key, 0, name, 6, &sb, &b, &p2) {
            Some(CheckOutcome::Bug { counterexample, .. }) => {
                assert_eq!(counterexample.depth, 2);
                assert!(counterexample.replay(&b, &p2));
            }
            other => panic!("expected served bug, got {other:?}"),
        }
        // A bug deeper than the horizon answers clean at the horizon.
        assert!(matches!(
            store.lookup_cone_outcome(key, 0, name, 1, &sb, &b, &p2),
            Some(CheckOutcome::Clean { bound: 1 })
        ));
    }

    #[test]
    fn cone_keyed_bug_that_fails_replay_is_dropped_not_served() {
        let name = "counter_hits_target";
        let mut p1 = ExprPool::new();
        let a = split_system(&mut p1, 2, 1);
        let sa = aqed_tsys::coi_slice(&a, &p1, &[0]);
        // Simulate a 64-bit key collision: file the depth-2 witness
        // under the key of a *different* cone (bug at 5).
        let mut p2 = ExprPool::new();
        let b = split_system(&mut p2, 5, 1);
        let sb = aqed_tsys::coi_slice(&b, &p2, &[0]);
        let wrong_key = cone_hash(&sb, &p2);
        let store = ArtifactStore::new();
        let outcome = CheckOutcome::Bug {
            property: PropertyKind::Fc,
            counterexample: counter_cex(&a, &p1, 2),
        };
        store.record_cone_outcome(wrong_key, name, &outcome, &sa);
        // The witness decodes against b's slice but does not replay on
        // b (its counter hits 5, not 2): the gate turns the collision
        // into a miss and evicts the poisoned entry.
        assert!(store
            .lookup_cone_outcome(wrong_key, 0, name, 6, &sb, &b, &p2)
            .is_none());
        assert_eq!(store.cone_outcome_count(), 0, "poisoned entry evicted");
    }

    #[test]
    fn learnt_packs_merge_by_depth_and_ignore_empties() {
        let store = ArtifactStore::new();
        let name = "BAD_FC";
        let deep = LearntPack {
            frame_vars: vec![10, 20, 30],
            clauses: vec![vec![0, 3], vec![5]],
        };
        store.record_learnt_pack(7, name, deep.clone());
        assert_eq!(store.lookup_learnt_pack(7, name), Some(deep.clone()));
        assert_eq!(store.lookup_learnt_pack(7, "other"), None);
        assert_eq!(store.lookup_learnt_pack(8, name), None);
        // A shallower pack never replaces a deeper one.
        let shallow = LearntPack {
            frame_vars: vec![10, 20],
            clauses: vec![vec![1]],
        };
        store.record_learnt_pack(7, name, shallow);
        assert_eq!(store.lookup_learnt_pack(7, name), Some(deep));
        // Same depth: the fresher pack wins.
        let fresh = LearntPack {
            frame_vars: vec![10, 20, 30],
            clauses: vec![vec![9]],
        };
        store.record_learnt_pack(7, name, fresh.clone());
        assert_eq!(store.lookup_learnt_pack(7, name), Some(fresh));
        // Empty packs are dropped on the floor.
        store.record_learnt_pack(9, name, LearntPack::default());
        assert_eq!(store.lookup_learnt_pack(9, name), None);
        assert_eq!(store.pack_count(), 1);
        assert_eq!(store.packs_recorded(), 2);
    }

    #[test]
    fn cone_facts_and_packs_persist_across_reopen() {
        let dir = std::env::temp_dir().join(format!("aqed-artifact-cone-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let name = "counter_hits_target";
        let mut p1 = ExprPool::new();
        let a = split_system(&mut p1, 2, 1);
        let sa = aqed_tsys::coi_slice(&a, &p1, &[0]);
        let key = cone_hash(&sa, &p1);
        let pack = LearntPack {
            frame_vars: vec![4, 9],
            clauses: vec![vec![2, 4]],
        };
        {
            let store = ArtifactStore::open(&dir).expect("open fresh store");
            store.record_cone_outcome(key, name, &CheckOutcome::Clean { bound: 1 }, &sa);
            let bug = CheckOutcome::Bug {
                property: PropertyKind::Fc,
                counterexample: counter_cex(&a, &p1, 2),
            };
            store.record_cone_outcome(key, name, &bug, &sa);
            store.record_learnt_pack(key, name, pack.clone());
            // Drop flushes the journal.
        }
        let store = ArtifactStore::open(&dir).expect("reopen store");
        assert_eq!(store.truncated_records(), 0);
        assert_eq!(store.lookup_learnt_pack(key, name), Some(pack));
        // The recovered bug still passes the replay gate on an edited
        // design with the same cone.
        let mut p2 = ExprPool::new();
        let b = split_system(&mut p2, 2, 9);
        let sb = aqed_tsys::coi_slice(&b, &p2, &[0]);
        match store.lookup_cone_outcome(key, 0, name, 6, &sb, &b, &p2) {
            Some(CheckOutcome::Bug { counterexample, .. }) => {
                assert_eq!(counterexample.depth, 2);
            }
            other => panic!("expected recovered bug, got {other:?}"),
        }
        let stats = store.stats_json().to_string();
        assert!(
            stats.contains("\"journal_bytes\""),
            "footprint in stats: {stats}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
