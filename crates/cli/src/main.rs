//! The `aqed` binary: thin wrapper around [`aqed_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match aqed_cli::parse_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", aqed_cli::usage());
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    // First Ctrl-C asks the run to drain (exit 2, `inconclusive
    // (cancelled)`); a second one terminates the process the usual way.
    let stop = aqed_sat::stop_on_sigint();
    match aqed_cli::run_with_stop(&cmd, &mut stdout, Some(&stop)) {
        Ok(code) => ExitCode::from(u8::try_from(code.clamp(0, 255)).unwrap_or(255)),
        Err(e) => {
            eprintln!("io error: {e}");
            ExitCode::from(3)
        }
    }
}
