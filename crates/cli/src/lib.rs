//! Implementation of the `aqed` command-line tool.
//!
//! The CLI exposes the catalogued case studies to the shell:
//!
//! ```text
//! aqed list                       # enumerate the bug cases
//! aqed verify <case> [--bound N] [--healthy] [--vcd FILE] [--witness]
//! aqed conventional <case>        # run the simulation baseline
//! aqed hybrid <case>              # hybrid QED (monitor in simulation)
//! aqed export-btor2 <case> [--monitor]
//! ```
//!
//! Argument parsing is by hand (no external dependencies); the library
//! portion is testable without spawning a process.

use aqed_bmc::to_btor2_witness;
use aqed_core::{
    run_hybrid, AqedHarness, CheckOutcome, HybridConfig, ParallelVerifyReport, StopHandle,
};
use aqed_designs::{all_cases, BugCase};
use aqed_engine::{BackendKind, Engine, VerifyRequest};
use aqed_expr::ExprPool;
use aqed_sim::Testbench;
use aqed_tsys::{to_btor2, to_vcd};
use std::fmt;

/// Which SAT backend `aqed verify` drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// The in-process CDCL solver.
    #[default]
    Cdcl,
    /// The CDCL solver wrapped in an iCNF (incremental DIMACS) logger.
    Dimacs,
    /// A portfolio of diversified CDCL solvers racing per solve call,
    /// with clause sharing (`--portfolio-workers` sets the width).
    Portfolio,
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendChoice::Cdcl => "cdcl",
            BackendChoice::Dimacs => "dimacs",
            BackendChoice::Portfolio => "portfolio",
        })
    }
}

impl From<BackendChoice> for BackendKind {
    fn from(choice: BackendChoice) -> Self {
        match choice {
            BackendChoice::Cdcl => BackendKind::Cdcl,
            BackendChoice::Dimacs => BackendKind::Dimacs,
            BackendChoice::Portfolio => BackendKind::Portfolio,
        }
    }
}

impl std::str::FromStr for BackendChoice {
    type Err = ParseCommandError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cdcl" => Ok(BackendChoice::Cdcl),
            "dimacs" => Ok(BackendChoice::Dimacs),
            "portfolio" => Ok(BackendChoice::Portfolio),
            other => Err(ParseCommandError(format!(
                "unknown backend '{other}' (expected 'cdcl', 'dimacs' or 'portfolio')"
            ))),
        }
    }
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `aqed list`
    List,
    /// `aqed verify <case> [--bound N] [--healthy] [--vcd FILE]
    /// [--witness] [--jobs N] [--backend NAME] [--timeout SECS]
    /// [--conflict-budget N] [--fail-fast] [--no-preprocess] [--no-coi]
    /// [--no-warm-start]`
    Verify {
        /// Case id.
        case: String,
        /// Override the catalogue's BMC bound.
        bound: Option<usize>,
        /// Verify the healthy variant instead of the buggy one.
        healthy: bool,
        /// Write the counterexample as VCD to this path.
        vcd: Option<String>,
        /// Print the BTOR2 witness.
        witness: bool,
        /// Worker threads for the obligation scheduler.
        jobs: usize,
        /// SAT backend to drive.
        backend: BackendChoice,
        /// Race width for `--backend portfolio` (ignored otherwise).
        portfolio_workers: usize,
        /// Whether portfolio workers exchange short learnt clauses.
        clause_sharing: bool,
        /// Wall-clock deadline in seconds for the whole run.
        timeout: Option<u64>,
        /// Conflict budget per solver call (retried with doubled budget
        /// up to the scheduler's attempt cap).
        conflict_budget: Option<u64>,
        /// Cancel remaining obligations once one finds a bug.
        fail_fast: bool,
        /// Run SatELite-style CNF preprocessing before each solver call.
        preprocess: bool,
        /// Slice each obligation to the cone of influence of its bad.
        coi: bool,
        /// Reuse cone-keyed verdicts and learnt-clause packs from the
        /// artifact store (inert without `--store-dir`; requires COI).
        warm_start: bool,
        /// Write a structured JSONL trace of the run to this path.
        trace_out: Option<String>,
        /// Write the full per-obligation report (plus the metrics
        /// snapshot and per-job attribution) as JSON to this path.
        report_json: Option<String>,
        /// Root a durable artifact store here: verdicts and cones from
        /// earlier runs warm this one, and this run's are flushed back.
        store_dir: Option<String>,
    },
    /// `aqed conventional <case>`
    Conventional {
        /// Case id.
        case: String,
    },
    /// `aqed hybrid <case>`
    Hybrid {
        /// Case id.
        case: String,
    },
    /// `aqed export-btor2 <case> [--monitor]`
    ExportBtor2 {
        /// Case id.
        case: String,
        /// Export the composed design+monitor system instead of the bare
        /// design.
        monitor: bool,
    },
    /// `aqed help`
    Help,
}

/// Error produced when the command line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCommandError(pub String);

impl fmt::Display for ParseCommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseCommandError {}

/// Parses the argument vector (without the program name).
///
/// # Errors
///
/// Returns [`ParseCommandError`] on unknown subcommands, missing
/// operands or malformed flags.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, ParseCommandError> {
    let args: Vec<String> = args.into_iter().collect();
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "verify" => {
            let case = operand(&args, 1, "verify")?;
            let mut bound = None;
            let mut healthy = false;
            let mut vcd = None;
            let mut witness = false;
            let mut jobs = 1;
            let mut backend = BackendChoice::default();
            let mut portfolio_workers = 4;
            let mut clause_sharing = true;
            let mut timeout = None;
            let mut conflict_budget = None;
            let mut fail_fast = false;
            let mut preprocess = true;
            let mut coi = true;
            let mut warm_start = true;
            let mut trace_out = None;
            let mut report_json = None;
            let mut store_dir = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--bound" => {
                        i += 1;
                        let v = args
                            .get(i)
                            .ok_or_else(|| ParseCommandError("--bound needs a value".into()))?;
                        bound = Some(
                            v.parse()
                                .map_err(|_| ParseCommandError(format!("invalid bound '{v}'")))?,
                        );
                    }
                    "--healthy" => healthy = true,
                    "--witness" => witness = true,
                    "--vcd" => {
                        i += 1;
                        vcd = Some(
                            args.get(i)
                                .ok_or_else(|| ParseCommandError("--vcd needs a path".into()))?
                                .clone(),
                        );
                    }
                    "--jobs" => {
                        i += 1;
                        let v = args
                            .get(i)
                            .ok_or_else(|| ParseCommandError("--jobs needs a value".into()))?;
                        jobs =
                            v.parse().ok().filter(|&n: &usize| n >= 1).ok_or_else(|| {
                                ParseCommandError(format!("invalid job count '{v}'"))
                            })?;
                    }
                    "--backend" => {
                        i += 1;
                        backend = args
                            .get(i)
                            .ok_or_else(|| ParseCommandError("--backend needs a name".into()))?
                            .parse()?;
                    }
                    "--portfolio-workers" => {
                        i += 1;
                        let v = args.get(i).ok_or_else(|| {
                            ParseCommandError("--portfolio-workers needs a value".into())
                        })?;
                        portfolio_workers =
                            v.parse().ok().filter(|&n: &usize| n >= 1).ok_or_else(|| {
                                ParseCommandError(format!("invalid worker count '{v}'"))
                            })?;
                    }
                    "--no-clause-sharing" => clause_sharing = false,
                    "--timeout" => {
                        i += 1;
                        let v = args.get(i).ok_or_else(|| {
                            ParseCommandError("--timeout needs a value in seconds".into())
                        })?;
                        timeout =
                            Some(v.parse().ok().filter(|&n: &u64| n >= 1).ok_or_else(|| {
                                ParseCommandError(format!("invalid timeout '{v}'"))
                            })?);
                    }
                    "--conflict-budget" => {
                        i += 1;
                        let v = args.get(i).ok_or_else(|| {
                            ParseCommandError("--conflict-budget needs a value".into())
                        })?;
                        conflict_budget =
                            Some(v.parse().ok().filter(|&n: &u64| n >= 1).ok_or_else(|| {
                                ParseCommandError(format!("invalid conflict budget '{v}'"))
                            })?);
                    }
                    "--fail-fast" => fail_fast = true,
                    "--trace-out" => {
                        i += 1;
                        trace_out = Some(
                            args.get(i)
                                .ok_or_else(|| {
                                    ParseCommandError("--trace-out needs a path".into())
                                })?
                                .clone(),
                        );
                    }
                    "--report-json" => {
                        i += 1;
                        report_json = Some(
                            args.get(i)
                                .ok_or_else(|| {
                                    ParseCommandError("--report-json needs a path".into())
                                })?
                                .clone(),
                        );
                    }
                    "--store-dir" => {
                        i += 1;
                        store_dir = Some(
                            args.get(i)
                                .ok_or_else(|| {
                                    ParseCommandError("--store-dir needs a path".into())
                                })?
                                .clone(),
                        );
                    }
                    "--preprocess" => preprocess = true,
                    "--no-preprocess" => preprocess = false,
                    "--coi" => coi = true,
                    "--no-coi" => coi = false,
                    "--warm-start" => warm_start = true,
                    "--no-warm-start" => warm_start = false,
                    other => {
                        return Err(ParseCommandError(format!("unknown flag '{other}'")));
                    }
                }
                i += 1;
            }
            Ok(Command::Verify {
                case,
                bound,
                healthy,
                vcd,
                witness,
                jobs,
                backend,
                portfolio_workers,
                clause_sharing,
                timeout,
                conflict_budget,
                fail_fast,
                preprocess,
                coi,
                warm_start,
                trace_out,
                report_json,
                store_dir,
            })
        }
        "conventional" => Ok(Command::Conventional {
            case: operand(&args, 1, "conventional")?,
        }),
        "hybrid" => Ok(Command::Hybrid {
            case: operand(&args, 1, "hybrid")?,
        }),
        "export-btor2" => {
            let case = operand(&args, 1, "export-btor2")?;
            let monitor = args.iter().any(|a| a == "--monitor");
            Ok(Command::ExportBtor2 { case, monitor })
        }
        other => Err(ParseCommandError(format!("unknown command '{other}'"))),
    }
}

fn operand(args: &[String], idx: usize, cmd: &str) -> Result<String, ParseCommandError> {
    args.get(idx)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .ok_or_else(|| ParseCommandError(format!("'{cmd}' needs a case id (try `aqed list`)")))
}

/// The usage text printed by `aqed help`.
#[must_use]
pub fn usage() -> &'static str {
    "aqed — A-QED verification of hardware accelerators (DAC 2020 reproduction)

USAGE:
  aqed list                            enumerate the catalogued bug cases
  aqed verify <case> [--bound N] [--healthy] [--vcd FILE] [--witness]
                     [--jobs N] [--backend cdcl|dimacs|portfolio]
                     [--portfolio-workers N] [--no-clause-sharing]
                     [--timeout SECS] [--conflict-budget N] [--fail-fast]
                     [--no-preprocess] [--no-coi] [--store-dir DIR]
                     [--no-warm-start]
                     [--trace-out FILE] [--report-json FILE]
                                       run A-QED (BMC) on a case; each FC/RB/SAC
                                       property is an independent obligation,
                                       checked on N worker threads (default 1).
                                       --backend portfolio races
                                       --portfolio-workers (default 4)
                                       diversified CDCL solvers per obligation,
                                       first verdict wins; workers exchange
                                       short learnt clauses unless
                                       --no-clause-sharing is given.
                                       --timeout bounds the whole run's wall
                                       clock; --conflict-budget caps solver
                                       effort per call (doubled on retry, and
                                       hard obligations escalate from one
                                       solver to the full portfolio);
                                       --fail-fast cancels siblings after the
                                       first bug. The simplification pipeline
                                       (cone-of-influence slicing + SatELite-
                                       style CNF preprocessing) is on by
                                       default; --no-coi / --no-preprocess
                                       disable its two stages.
                                       --trace-out streams span/event records
                                       as JSONL (inspect with trace_report);
                                       --report-json writes the full
                                       per-obligation report plus the metrics
                                       snapshot and per-job attribution as
                                       JSON. Neither changes the verdict or
                                       the exit code.
                                       --store-dir roots a durable artifact
                                       store: verdicts and COI cones persist
                                       across runs (and survive crashes), so
                                       repeat verification of an unchanged
                                       design is answered from disk. With a
                                       store, warm-start is on by default:
                                       after an edit, obligations whose COI
                                       cone is untouched reuse their persisted
                                       verdicts (bugs replay-validated against
                                       the new design), and changed cones
                                       import learnt-clause packs from the
                                       previous run; --no-warm-start forces a
                                       cold re-verification.
                                       exit codes: 0 clean, 1 bug found,
                                       2 inconclusive, degraded, or usage error
  aqed conventional <case>             run the conventional simulation flow
  aqed hybrid <case>                   run hybrid QED (monitor in simulation)
  aqed export-btor2 <case> [--monitor] print the design (or design+monitor) as BTOR2
  aqed help                            this text
"
}

/// Writes the per-obligation breakdown that precedes the final verdict.
fn print_obligation_stats(
    out: &mut dyn std::io::Write,
    report: &ParallelVerifyReport,
    backend: BackendChoice,
) -> std::io::Result<()> {
    writeln!(
        out,
        "{} obligation(s) on {} job(s), backend {}:",
        report.obligations.len(),
        report.jobs,
        backend
    )?;
    for r in &report.obligations {
        let verdict = match &r.outcome {
            CheckOutcome::Clean { bound } => format!("clean to {bound}"),
            CheckOutcome::Bug { counterexample, .. } => {
                format!("bug at depth {}", counterexample.depth)
            }
            CheckOutcome::Inconclusive { bound, reason } => {
                format!("inconclusive at {bound} ({reason})")
            }
            CheckOutcome::Errored { message } => format!("errored: {message}"),
        };
        writeln!(
            out,
            "  {:<30} {:<28} {:>4} calls {:>9} conflicts  {:?}",
            r.obligation.bad_name,
            verdict,
            r.stats.solver_calls,
            r.stats.solver.conflicts,
            r.stats.elapsed
        )?;
    }
    if report.degraded {
        writeln!(
            out,
            "warning: run degraded — at least one obligation errored; \
             clean verdicts above still hold but coverage is incomplete"
        )?;
    }
    if report.watchdog_trips > 0 {
        writeln!(
            out,
            "warning: watchdog cancelled {} stuck job(s)",
            report.watchdog_trips
        )?;
    }
    Ok(())
}

fn find_case(id: &str) -> Result<BugCase, String> {
    all_cases()
        .into_iter()
        .find(|c| c.id == id)
        .ok_or_else(|| format!("unknown case '{id}'; try `aqed list`"))
}

/// Executes a parsed command, writing human-readable output through
/// `out`. Returns the process exit code.
///
/// # Errors
///
/// I/O errors from the output sink are returned verbatim.
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> std::io::Result<i32> {
    run_with_stop(cmd, out, None)
}

/// [`run`] under an external cancellation handle: tripping `stop`
/// (the Ctrl-C handler) drains a `verify` run through the ordinary
/// `Inconclusive (cancelled)` taxonomy, so the process exits 2 with a
/// truthful verdict instead of dying mid-solve.
///
/// # Errors
///
/// I/O errors from the output sink are returned verbatim.
pub fn run_with_stop(
    cmd: &Command,
    out: &mut dyn std::io::Write,
    stop: Option<&StopHandle>,
) -> std::io::Result<i32> {
    match cmd {
        Command::Help => {
            write!(out, "{}", usage())?;
            Ok(0)
        }
        Command::List => {
            writeln!(
                out,
                "{:<32} {:<12} {:<14} {:>5} {:>6} {:>13}",
                "case", "design", "config", "prop", "bound", "conventional"
            )?;
            for case in all_cases() {
                writeln!(
                    out,
                    "{:<32} {:<12} {:<14} {:>5} {:>6} {:>13}",
                    case.id,
                    case.design.to_string(),
                    case.config,
                    case.expected.to_string(),
                    case.bmc_bound,
                    if case.conventional_detectable {
                        "detects"
                    } else {
                        "misses"
                    }
                )?;
            }
            Ok(0)
        }
        Command::Verify {
            case,
            bound,
            healthy,
            vcd,
            witness,
            jobs,
            backend,
            portfolio_workers,
            clause_sharing,
            timeout,
            conflict_budget,
            fail_fast,
            preprocess,
            coi,
            warm_start,
            trace_out,
            report_json,
            store_dir,
        } => {
            // The engine owns the whole run — catalog lookup, monitor
            // composition, budgets, backend dispatch, the governed
            // scheduler. The CLI's job is flags in, text out.
            let request = VerifyRequest {
                case: case.clone(),
                healthy: *healthy,
                bound: *bound,
                jobs: *jobs,
                backend: (*backend).into(),
                portfolio_workers: *portfolio_workers,
                clause_sharing: *clause_sharing,
                timeout: timeout.map(std::time::Duration::from_secs),
                conflict_budget: *conflict_budget,
                fail_fast: *fail_fast,
                preprocess: *preprocess,
                coi: *coi,
                warm_start: *warm_start,
            };
            // Arm observability before the run so metrics and spans
            // cover it end to end; torn down again below so one
            // invocation never leaks state into the next (the gates are
            // process-global).
            let obs_on = trace_out.is_some() || report_json.is_some();
            if obs_on {
                aqed_obs::metrics::global().reset();
                aqed_obs::set_enabled(true);
            }
            let trace_installed = if let Some(path) = trace_out {
                match aqed_obs::sink::JsonlSink::create(path) {
                    Ok(sink) => {
                        aqed_obs::install_sink(std::sync::Arc::new(sink));
                        true
                    }
                    Err(e) => {
                        aqed_obs::set_enabled(false);
                        writeln!(out, "error: cannot create trace file '{path}': {e}")?;
                        return Ok(2);
                    }
                }
            } else {
                false
            };
            // A store directory turns the one-shot run into a warm CI
            // step: recovered verdicts answer repeat obligations, and
            // the store's Drop flushes this run's facts back to disk.
            let engine = match store_dir {
                Some(dir) => match Engine::with_persistent_store(dir) {
                    Ok(engine) => engine,
                    Err(e) => {
                        if trace_installed {
                            aqed_obs::uninstall_sink();
                        }
                        if obs_on {
                            aqed_obs::set_enabled(false);
                        }
                        writeln!(out, "error: cannot open store '{dir}': {e}")?;
                        return Ok(2);
                    }
                },
                None => Engine::new(),
            };
            // Attribution rides the same gate as the other obs
            // features: metered only when a report (or trace) asked
            // for it, so the default path stays identical.
            let meter = obs_on.then(|| std::sync::Arc::new(aqed_obs::JobMeter::new()));
            let result = engine.verify_metered(&request, stop, meter.clone());
            if trace_installed {
                aqed_obs::uninstall_sink();
            }
            let outcome = match result {
                Ok(o) => o,
                Err(e) => {
                    if obs_on {
                        aqed_obs::set_enabled(false);
                    }
                    writeln!(out, "error: {e}")?;
                    return Ok(2);
                }
            };
            let (report, composed, pool) = (&outcome.report, &outcome.composed, &outcome.pool);
            print_obligation_stats(out, report, *backend)?;
            let code = outcome.exit_code();
            match &report.outcome {
                CheckOutcome::Bug {
                    counterexample: cex,
                    ..
                } => {
                    writeln!(
                        out,
                        "bug: {cex} ({:?}, {} clauses)",
                        report.runtime, report.aggregate.clauses
                    )?;
                    writeln!(out, "\ninput trace:")?;
                    writeln!(out, "{}", cex.trace.to_table(pool))?;
                    if *witness {
                        writeln!(out, "BTOR2 witness:")?;
                        write!(out, "{}", to_btor2_witness(cex, composed, pool))?;
                    }
                    if let Some(path) = vcd {
                        let dump = to_vcd(composed, pool, &cex.trace, &cex.initial_state);
                        std::fs::write(path, dump)?;
                        writeln!(out, "wrote VCD to {path}")?;
                    }
                }
                CheckOutcome::Clean { bound } => {
                    writeln!(
                        out,
                        "clean up to bound {bound} ({:?}, {} clauses)",
                        report.runtime, report.aggregate.clauses
                    )?;
                }
                CheckOutcome::Inconclusive { bound, reason } => {
                    writeln!(out, "inconclusive at bound {bound} ({reason})")?;
                }
                CheckOutcome::Errored { message } => {
                    writeln!(out, "error: {message}")?;
                }
            }
            if let Some(path) = report_json {
                let mut json = report.to_json();
                let metrics = aqed_obs::metrics::global().snapshot();
                if let aqed_obs::json::Json::Obj(fields) = &mut json {
                    fields.push(("metrics".to_string(), metrics.to_json()));
                    if let Some(m) = &meter {
                        m.set_phase(aqed_obs::MeterPhase::Done);
                        fields.push(("attribution".to_string(), m.to_json()));
                    }
                }
                std::fs::write(path, format!("{json}\n"))?;
                writeln!(out, "wrote report JSON to {path}")?;
            }
            if obs_on {
                aqed_obs::set_enabled(false);
            }
            Ok(code)
        }
        Command::Conventional { case } => {
            let case = match find_case(case) {
                Ok(c) => c,
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    return Ok(2);
                }
            };
            let Some(golden) = case.golden else {
                writeln!(
                    out,
                    "case '{}' has an interfering operation: no per-op golden model; \
                     the conventional flow does not apply",
                    case.id
                )?;
                return Ok(2);
            };
            let mut pool = ExprPool::new();
            let lca = (case.build_buggy)(&mut pool);
            let outcome = Testbench::default().run(&lca, &pool, golden);
            writeln!(out, "{outcome}")?;
            Ok(i32::from(outcome.detected()))
        }
        Command::Hybrid { case } => {
            let case = match find_case(case) {
                Ok(c) => c,
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    return Ok(2);
                }
            };
            let mut pool = ExprPool::new();
            let lca = (case.build_buggy)(&mut pool);
            let fc = case.fc.clone().unwrap_or_default();
            let outcome = run_hybrid(
                &lca,
                &mut pool,
                &fc,
                case.rb.as_ref(),
                &HybridConfig::default(),
            );
            match &outcome.violated {
                Some(name) => writeln!(
                    out,
                    "hybrid QED detected '{name}' after {} cycles ({:?})",
                    outcome.trace_cycles.unwrap_or(0),
                    outcome.runtime
                )?,
                None => writeln!(
                    out,
                    "hybrid QED found nothing in {} cycles ({:?})",
                    outcome.total_cycles, outcome.runtime
                )?,
            }
            Ok(i32::from(outcome.detected()))
        }
        Command::ExportBtor2 { case, monitor } => {
            let case = match find_case(case) {
                Ok(c) => c,
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    return Ok(2);
                }
            };
            let mut pool = ExprPool::new();
            let lca = (case.build_buggy)(&mut pool);
            if *monitor {
                let mut harness = AqedHarness::new(&lca);
                if let Some(fc) = &case.fc {
                    harness = harness.with_fc(fc.clone());
                }
                if let Some(rb) = &case.rb {
                    harness = harness.with_rb(*rb);
                }
                let (composed, _) = harness.build(&mut pool);
                write!(out, "{}", to_btor2(&composed, &pool))?;
            } else {
                write!(out, "{}", to_btor2(&lca.ts, &pool))?;
            }
            Ok(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, ParseCommandError> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_basic_commands() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["help"]), Ok(Command::Help));
        assert_eq!(parse(&["list"]), Ok(Command::List));
        assert_eq!(
            parse(&["conventional", "aes_v1"]),
            Ok(Command::Conventional {
                case: "aes_v1".into()
            })
        );
        assert_eq!(
            parse(&["export-btor2", "aes_v1", "--monitor"]),
            Ok(Command::ExportBtor2 {
                case: "aes_v1".into(),
                monitor: true
            })
        );
    }

    #[test]
    fn parses_verify_flags() {
        assert_eq!(
            parse(&[
                "verify",
                "aes_v1",
                "--bound",
                "12",
                "--healthy",
                "--witness"
            ]),
            Ok(Command::Verify {
                case: "aes_v1".into(),
                bound: Some(12),
                healthy: true,
                vcd: None,
                witness: true,
                jobs: 1,
                backend: BackendChoice::Cdcl,
                portfolio_workers: 4,
                clause_sharing: true,
                timeout: None,
                conflict_budget: None,
                fail_fast: false,
                preprocess: true,
                coi: true,
                warm_start: true,
                trace_out: None,
                report_json: None,
                store_dir: None
            })
        );
        assert_eq!(
            parse(&["verify", "x", "--vcd", "/tmp/x.vcd"]),
            Ok(Command::Verify {
                case: "x".into(),
                bound: None,
                healthy: false,
                vcd: Some("/tmp/x.vcd".into()),
                witness: false,
                jobs: 1,
                backend: BackendChoice::Cdcl,
                portfolio_workers: 4,
                clause_sharing: true,
                timeout: None,
                conflict_budget: None,
                fail_fast: false,
                preprocess: true,
                coi: true,
                warm_start: true,
                trace_out: None,
                report_json: None,
                store_dir: None
            })
        );
        assert_eq!(
            parse(&["verify", "x", "--jobs", "4", "--backend", "dimacs"]),
            Ok(Command::Verify {
                case: "x".into(),
                bound: None,
                healthy: false,
                vcd: None,
                witness: false,
                jobs: 4,
                backend: BackendChoice::Dimacs,
                portfolio_workers: 4,
                clause_sharing: true,
                timeout: None,
                conflict_budget: None,
                fail_fast: false,
                preprocess: true,
                coi: true,
                warm_start: true,
                trace_out: None,
                report_json: None,
                store_dir: None
            })
        );
    }

    #[test]
    fn parses_portfolio_flags() {
        match parse(&[
            "verify",
            "x",
            "--backend",
            "portfolio",
            "--portfolio-workers",
            "8",
            "--no-clause-sharing",
        ])
        .expect("parse")
        {
            Command::Verify {
                backend,
                portfolio_workers,
                clause_sharing,
                ..
            } => {
                assert_eq!(backend, BackendChoice::Portfolio);
                assert_eq!(portfolio_workers, 8);
                assert!(!clause_sharing);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(BackendChoice::Portfolio.to_string(), "portfolio");
        assert!(parse(&["verify", "x", "--portfolio-workers"]).is_err());
        assert!(parse(&["verify", "x", "--portfolio-workers", "0"]).is_err());
        assert!(parse(&["verify", "x", "--portfolio-workers", "lots"]).is_err());
    }

    #[test]
    fn parses_governance_flags() {
        assert_eq!(
            parse(&[
                "verify",
                "x",
                "--timeout",
                "30",
                "--conflict-budget",
                "5000",
                "--fail-fast"
            ]),
            Ok(Command::Verify {
                case: "x".into(),
                bound: None,
                healthy: false,
                vcd: None,
                witness: false,
                jobs: 1,
                backend: BackendChoice::Cdcl,
                portfolio_workers: 4,
                clause_sharing: true,
                timeout: Some(30),
                conflict_budget: Some(5000),
                fail_fast: true,
                preprocess: true,
                coi: true,
                warm_start: true,
                trace_out: None,
                report_json: None,
                store_dir: None
            })
        );
        assert!(parse(&["verify", "x", "--timeout"]).is_err());
        assert!(parse(&["verify", "x", "--timeout", "0"]).is_err());
        assert!(parse(&["verify", "x", "--timeout", "soon"]).is_err());
        assert!(parse(&["verify", "x", "--conflict-budget"]).is_err());
        assert!(parse(&["verify", "x", "--conflict-budget", "0"]).is_err());
        assert!(parse(&["verify", "x", "--conflict-budget", "lots"]).is_err());
    }

    #[test]
    fn parses_pipeline_flags() {
        let both_off = parse(&["verify", "x", "--no-preprocess", "--no-coi"]).expect("parse");
        match both_off {
            Command::Verify {
                preprocess, coi, ..
            } => {
                assert!(!preprocess);
                assert!(!coi);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The positive spellings are accepted and can re-enable a stage.
        let re_enabled = parse(&["verify", "x", "--no-preprocess", "--preprocess", "--coi"]);
        match re_enabled.expect("parse") {
            Command::Verify {
                preprocess, coi, ..
            } => {
                assert!(preprocess);
                assert!(coi);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_warm_start_flags() {
        // Warm-start defaults on; --no-warm-start disables it and the
        // positive spelling re-enables it, mirroring the other toggles.
        match parse(&["verify", "x"]).expect("parse") {
            Command::Verify { warm_start, .. } => assert!(warm_start),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["verify", "x", "--no-warm-start"]).expect("parse") {
            Command::Verify { warm_start, .. } => assert!(!warm_start),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["verify", "x", "--no-warm-start", "--warm-start"]).expect("parse") {
            Command::Verify { warm_start, .. } => assert!(warm_start),
            other => panic!("unexpected {other:?}"),
        }
        assert!(usage().contains("--no-warm-start"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["verify"]).is_err());
        assert!(parse(&["verify", "x", "--bound"]).is_err());
        assert!(parse(&["verify", "x", "--bound", "abc"]).is_err());
        assert!(parse(&["verify", "x", "--frob"]).is_err());
        assert!(parse(&["verify", "x", "--jobs"]).is_err());
        assert!(parse(&["verify", "x", "--jobs", "0"]).is_err());
        assert!(parse(&["verify", "x", "--jobs", "many"]).is_err());
        assert!(parse(&["verify", "x", "--backend", "z4"]).is_err());
        assert!(parse(&["conventional", "--healthy"]).is_err());
    }

    #[test]
    fn list_prints_all_cases() {
        let mut buf = Vec::new();
        let code = run(&Command::List, &mut buf).expect("io");
        assert_eq!(code, 0);
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("aes_v1"));
        assert!(text.contains("fifo_ptr_wrap_off_by_one"));
        assert!(text.contains("misses"));
        assert_eq!(text.lines().count(), 1 + 23);
    }

    #[test]
    fn unknown_case_reports_cleanly() {
        let mut buf = Vec::new();
        let code = run(
            &Command::Verify {
                case: "nope".into(),
                bound: None,
                healthy: false,
                vcd: None,
                witness: false,
                jobs: 1,
                backend: BackendChoice::Cdcl,
                portfolio_workers: 4,
                clause_sharing: true,
                timeout: None,
                conflict_budget: None,
                fail_fast: false,
                preprocess: true,
                coi: true,
                warm_start: true,
                trace_out: None,
                report_json: None,
                store_dir: None,
            },
            &mut buf,
        )
        .expect("io");
        assert_eq!(code, 2);
        assert!(String::from_utf8(buf).unwrap().contains("unknown case"));
    }

    #[test]
    fn verify_healthy_small_case_passes() {
        let mut buf = Vec::new();
        let code = run(
            &Command::Verify {
                case: "dataflow_fifo_sizing".into(),
                bound: Some(6),
                healthy: true,
                vcd: None,
                witness: false,
                jobs: 1,
                backend: BackendChoice::Cdcl,
                portfolio_workers: 4,
                clause_sharing: true,
                timeout: None,
                conflict_budget: None,
                fail_fast: false,
                preprocess: true,
                coi: true,
                warm_start: true,
                trace_out: None,
                report_json: None,
                store_dir: None,
            },
            &mut buf,
        )
        .expect("io");
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&buf));
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("obligation(s)"), "{text}");
        assert!(text.contains("clean up to bound 6"), "{text}");
    }

    #[test]
    fn verify_portfolio_matches_cdcl_verdict() {
        let run_with = |backend: BackendChoice| {
            let mut buf = Vec::new();
            let code = run(
                &Command::Verify {
                    case: "dataflow_fifo_sizing".into(),
                    bound: Some(6),
                    healthy: false,
                    vcd: None,
                    witness: false,
                    jobs: 1,
                    backend,
                    portfolio_workers: 2,
                    clause_sharing: true,
                    timeout: None,
                    conflict_budget: None,
                    fail_fast: false,
                    preprocess: true,
                    coi: true,
                    warm_start: true,
                    trace_out: None,
                    report_json: None,
                    store_dir: None,
                },
                &mut buf,
            )
            .expect("io");
            (code, String::from_utf8_lossy(&buf).to_string())
        };
        let (cdcl_code, cdcl_text) = run_with(BackendChoice::Cdcl);
        let (port_code, port_text) = run_with(BackendChoice::Portfolio);
        assert_eq!(
            cdcl_code, port_code,
            "cdcl:\n{cdcl_text}\nportfolio:\n{port_text}"
        );
        // Compare the verdict line up to the timing parenthetical.
        let verdict = |text: &str| {
            text.lines()
                .find(|l| l.starts_with("bug:") || l.starts_with("clean"))
                .and_then(|l| l.split(" (").next())
                .map(str::to_owned)
        };
        assert_eq!(verdict(&cdcl_text), verdict(&port_text));
        assert!(port_text.contains("backend portfolio"), "{port_text}");
    }

    #[test]
    fn starved_conflict_budget_exits_inconclusive() {
        // Healthy AES at bound 8 needs >100k conflicts to close; a
        // budget of 1 (doubled to 4 by the scheduler's retries) cannot
        // decide it, so the run must end inconclusive with exit code 2 —
        // never a false "clean".
        let mut buf = Vec::new();
        let code = run(
            &Command::Verify {
                case: "aes_v1".into(),
                bound: Some(8),
                healthy: true,
                vcd: None,
                witness: false,
                jobs: 2,
                backend: BackendChoice::Cdcl,
                portfolio_workers: 4,
                clause_sharing: true,
                timeout: None,
                conflict_budget: Some(1),
                fail_fast: false,
                preprocess: true,
                coi: true,
                warm_start: true,
                trace_out: None,
                report_json: None,
                store_dir: None,
            },
            &mut buf,
        )
        .expect("io");
        let text = String::from_utf8_lossy(&buf);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("inconclusive"), "{text}");
        assert!(text.contains("conflict budget"), "{text}");
    }

    #[test]
    fn generous_timeout_still_finds_bug_with_exit_one() {
        let mut buf = Vec::new();
        let code = run(
            &Command::Verify {
                case: "dataflow_fifo_sizing".into(),
                bound: None,
                healthy: false,
                vcd: None,
                witness: false,
                jobs: 2,
                backend: BackendChoice::Cdcl,
                portfolio_workers: 4,
                clause_sharing: true,
                timeout: Some(600),
                conflict_budget: None,
                fail_fast: true,
                preprocess: true,
                coi: true,
                warm_start: true,
                trace_out: None,
                report_json: None,
                store_dir: None,
            },
            &mut buf,
        )
        .expect("io");
        let text = String::from_utf8_lossy(&buf);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("bug:"), "{text}");
    }

    #[test]
    fn export_btor2_produces_model() {
        let mut buf = Vec::new();
        let code = run(
            &Command::ExportBtor2 {
                case: "dataflow_fifo_sizing".into(),
                monitor: false,
            },
            &mut buf,
        )
        .expect("io");
        assert_eq!(code, 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("sort bitvec"));
        assert!(text.contains("next"));
    }

    #[test]
    fn usage_mentions_every_command() {
        let u = usage();
        for cmd in ["list", "verify", "conventional", "hybrid", "export-btor2"] {
            assert!(u.contains(cmd), "{cmd}");
        }
    }
}
