//! Observability must be a pure observer: across the whole design
//! catalog, running `verify` with `--trace-out` + `--report-json` must
//! produce exactly the same verdict and exit code as running without
//! them, and the artifacts themselves must be well-formed — every JSONL
//! line parses, spans balance per thread, and the report JSON
//! round-trips through the parser.
//!
//! These tests install the process-global trace sink, so they live in
//! their own integration-test binary (one process per file under
//! `tests/`) and serialize against each other with a local mutex.

use aqed_cli::{parse_args, run};
use aqed_obs::json::{parse, Json};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("aqed_obs_test_{}_{name}", std::process::id()));
    p
}

/// Runs `aqed <args>` in-process, returning (exit code, captured output).
fn run_cli(args: &[&str]) -> (i32, String) {
    let cmd = parse_args(args.iter().map(|s| s.to_string())).expect("args must parse");
    let mut buf = Vec::new();
    let code = run(&cmd, &mut buf).expect("io");
    (code, String::from_utf8(buf).expect("utf8"))
}

/// The verdict line is the first line after the per-obligation block
/// that announces the merged outcome, with the trailing runtime
/// parenthetical stripped (wall time legitimately varies run to run).
fn verdict_line(output: &str) -> String {
    let line = output
        .lines()
        .find(|l| {
            l.starts_with("clean up to bound")
                || l.starts_with("bug:")
                || l.starts_with("inconclusive")
                || l.starts_with("error:")
        })
        .unwrap_or_default();
    line.split(" (").next().unwrap_or_default().to_string()
}

#[test]
fn catalog_verdicts_identical_with_and_without_tracing() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for case in aqed_designs::all_cases() {
        // Cap the bound: the invariant under test is observational
        // purity, not bug depth, and the whole catalog runs twice.
        let bound = case.bmc_bound.min(6).to_string();
        let trace = tmp_path(&format!("{}.jsonl", case.id));
        let report = tmp_path(&format!("{}.json", case.id));
        let plain_args = ["verify", case.id, "--bound", &bound, "--jobs", "2"];
        let (plain_code, plain_out) = run_cli(&plain_args);
        let traced_args = [
            "verify",
            case.id,
            "--bound",
            &bound,
            "--jobs",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--report-json",
            report.to_str().unwrap(),
        ];
        let (traced_code, traced_out) = run_cli(&traced_args);
        assert_eq!(
            plain_code, traced_code,
            "case {}: tracing changed the exit code",
            case.id
        );
        assert_eq!(
            verdict_line(&plain_out),
            verdict_line(&traced_out),
            "case {}: tracing changed the verdict",
            case.id
        );
        // The report must round-trip through the parser and agree with
        // the exit code.
        let json = std::fs::read_to_string(&report).expect("report written");
        let parsed = parse(&json).expect("report JSON parses");
        let verdict = parsed
            .get("outcome")
            .and_then(|o| o.get("verdict"))
            .and_then(Json::as_str)
            .expect("outcome.verdict present");
        let degraded = parsed
            .get("degraded")
            .and_then(Json::as_bool)
            .expect("degraded present");
        let expected_code = match verdict {
            "clean" if !degraded => 0,
            "bug" => 1,
            _ => 2,
        };
        assert_eq!(
            traced_code, expected_code,
            "case {}: exit code disagrees with report verdict '{verdict}'",
            case.id
        );
        assert!(
            !parsed
                .get("obligations")
                .and_then(Json::as_arr)
                .expect("obligations array")
                .is_empty(),
            "case {}: report must list obligations",
            case.id
        );
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&report);
    }
}

/// Recursively drops the fields observability legitimately adds or
/// perturbs: wall-clock timings (`*_ms`, `*_micros`) and the
/// obs-plane-only `metrics`/`attribution` sections. Everything left —
/// verdicts, obligation outcomes, solver work counters, cache
/// attribution — must be bit-identical across obs configurations.
fn strip_volatile(json: &Json) -> Json {
    match json {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| {
                    !k.ends_with("_ms")
                        && !k.ends_with("_micros")
                        && k != "metrics"
                        && k != "attribution"
                })
                .map(|(k, v)| (k.clone(), strip_volatile(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

#[test]
fn catalog_report_json_identical_minus_attribution_across_obs_configs() {
    // Report JSON only exists when `--report-json` arms the plane, so
    // the widest on/off delta that still yields two reports is "report
    // only" (no sink, metrics armed) vs "report + trace sink" (the
    // full plane: JSONL sink, span emission, live meter sampling).
    // `--jobs 1` keeps solver work counters deterministic so the
    // stripped reports can be compared byte for byte.
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for case in aqed_designs::all_cases() {
        let bound = case.bmc_bound.min(6).to_string();
        let trace = tmp_path(&format!("rj_{}.jsonl", case.id));
        let report_off = tmp_path(&format!("rj_off_{}.json", case.id));
        let report_on = tmp_path(&format!("rj_on_{}.json", case.id));
        let (code_off, _) = run_cli(&[
            "verify",
            case.id,
            "--bound",
            &bound,
            "--jobs",
            "1",
            "--report-json",
            report_off.to_str().unwrap(),
        ]);
        let (code_on, _) = run_cli(&[
            "verify",
            case.id,
            "--bound",
            &bound,
            "--jobs",
            "1",
            "--trace-out",
            trace.to_str().unwrap(),
            "--report-json",
            report_on.to_str().unwrap(),
        ]);
        assert_eq!(code_off, code_on, "case {}: exit code diverged", case.id);
        let off = parse(&std::fs::read_to_string(&report_off).expect("off report")).unwrap();
        let on = parse(&std::fs::read_to_string(&report_on).expect("on report")).unwrap();
        // The full plane must actually have added its sections before
        // we strip them, or the comparison proves nothing.
        assert!(
            on.get("attribution").is_some() && on.get("metrics").is_some(),
            "case {}: traced report must carry metrics + attribution",
            case.id
        );
        assert_eq!(
            strip_volatile(&off).to_string(),
            strip_volatile(&on).to_string(),
            "case {}: report JSON diverged beyond attribution/timing",
            case.id
        );
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&report_off);
        let _ = std::fs::remove_file(&report_on);
    }
}

#[test]
fn portfolio_backend_is_observationally_pure_and_emits_worker_spans() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let trace = tmp_path("portfolio.jsonl");
    let base = [
        "verify",
        "dataflow_fifo_sizing",
        "--bound",
        "6",
        "--backend",
        "portfolio",
        "--portfolio-workers",
        "2",
    ];
    let (plain_code, plain_out) = run_cli(&base);
    let mut traced_args = base.to_vec();
    traced_args.extend(["--trace-out", trace.to_str().unwrap()]);
    let (traced_code, traced_out) = run_cli(&traced_args);
    assert_eq!(plain_code, traced_code, "tracing changed the exit code");
    assert_eq!(
        verdict_line(&plain_out),
        verdict_line(&traced_out),
        "tracing changed the portfolio verdict"
    );

    // The race must show up as paired async worker spans: every
    // portfolio.worker 'b' has a matching 'e' under the same id.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let mut open: HashMap<u64, ()> = HashMap::new();
    let mut begins = 0usize;
    for (n, line) in text.lines().enumerate() {
        let ev = parse(line).unwrap_or_else(|e| panic!("line {}: {e}", n + 1));
        if ev.get("name").and_then(Json::as_str) != Some("portfolio.worker") {
            continue;
        }
        let id = ev
            .get("id")
            .and_then(Json::as_u64)
            .expect("worker span carries an id");
        match ev.get("ph").and_then(Json::as_str) {
            Some("b") => {
                begins += 1;
                assert!(open.insert(id, ()).is_none(), "duplicate worker begin");
            }
            Some("e") => {
                assert!(open.remove(&id).is_some(), "worker end without begin");
            }
            other => panic!("portfolio.worker with ph {other:?}"),
        }
    }
    assert!(begins > 0, "traced portfolio run emitted no worker spans");
    assert!(open.is_empty(), "unclosed portfolio.worker spans");
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn trace_is_wellformed_and_obligation_spans_cover_wall_time() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let trace = tmp_path("coverage.jsonl");
    let report = tmp_path("coverage.json");
    let (code, _out) = run_cli(&[
        "verify",
        "dataflow_fifo_sizing",
        "--bound",
        "6",
        "--healthy",
        "--jobs",
        "4",
        "--trace-out",
        trace.to_str().unwrap(),
        "--report-json",
        report.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);

    // Every line is a self-contained JSON object with the schema keys.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let mut events = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let ev = parse(line).unwrap_or_else(|e| panic!("line {}: {e}", n + 1));
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        assert!(
            matches!(ph, "B" | "E" | "I" | "b" | "e"),
            "line {}: ph {ph}",
            n + 1
        );
        if matches!(ph, "b" | "e") {
            assert!(
                ev.get("id").and_then(Json::as_u64).is_some(),
                "line {}: async event without id",
                n + 1
            );
        }
        assert!(ev.get("ts").and_then(Json::as_u64).is_some());
        assert!(ev.get("tid").and_then(Json::as_u64).is_some());
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        events.push(ev);
    }
    assert!(!events.is_empty(), "trace must not be empty");

    // Sync spans balance per thread (B/E stack); async spans — the
    // obligation spans live here since they can hop threads on retry —
    // balance per (name, id) pair.
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    // Per-obligation wall time reconstructed from the trace (ns).
    let mut obligation_ns: HashMap<u64, u64> = HashMap::new();
    let mut open_async: HashMap<(String, u64), u64> = HashMap::new();
    for ev in &events {
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap();
        let ts = ev.get("ts").and_then(Json::as_u64).unwrap();
        let name = ev.get("name").and_then(Json::as_str).unwrap().to_string();
        match ev.get("ph").and_then(Json::as_str).unwrap() {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let top = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("tid {tid}: End '{name}' with empty stack"));
                assert_eq!(top, name, "tid {tid}: interleaved span ends");
            }
            "b" => {
                let id = ev.get("id").and_then(Json::as_u64).unwrap();
                let prev = open_async.insert((name.clone(), id), ts);
                assert!(prev.is_none(), "duplicate async begin for {name}#{id}");
            }
            "e" => {
                let id = ev.get("id").and_then(Json::as_u64).unwrap();
                let begin = open_async
                    .remove(&(name.clone(), id))
                    .unwrap_or_else(|| panic!("async end {name}#{id} with no begin"));
                if name == "obligation" {
                    let index = ev
                        .get("args")
                        .and_then(|a| a.get("index"))
                        .and_then(Json::as_u64)
                        .expect("obligation span carries its index");
                    *obligation_ns.entry(index).or_default() += ts - begin;
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid}: unclosed spans {stack:?}");
    }
    assert!(
        open_async.is_empty(),
        "unclosed async spans: {:?}",
        open_async.keys().collect::<Vec<_>>()
    );

    // Acceptance criterion: the per-obligation spans account for ≥95% of
    // each obligation's reported wall time.
    let parsed = parse(&std::fs::read_to_string(&report).expect("report written")).unwrap();
    let obligations = parsed.get("obligations").and_then(Json::as_arr).unwrap();
    assert!(!obligations.is_empty());
    for ob in obligations {
        let index = ob.get("bad_index").and_then(Json::as_u64).unwrap();
        let wall_ms = ob.get("wall_ms").and_then(Json::as_f64).unwrap();
        let span_ms = obligation_ns.get(&index).copied().unwrap_or(0) as f64 / 1e6;
        assert!(
            span_ms >= wall_ms * 0.95,
            "obligation {index}: span {span_ms:.3}ms < 95% of wall {wall_ms:.3}ms"
        );
    }
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&report);
}
