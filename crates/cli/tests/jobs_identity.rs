//! End-to-end determinism of the obligation scheduler: across the whole
//! design catalog, `--jobs 1` and `--jobs 4` must produce identical
//! A-QED verdicts, and the aggregate statistics must account for every
//! per-obligation run.
//!
//! With `AQED_FAIL_FAST=1` in the environment the same sweep runs with
//! fail-fast cancellation enabled. Fail-fast trades verdict identity for
//! latency (cancelled siblings report `Inconclusive {Cancelled}`), so
//! that mode only asserts the invariants that survive cancellation: the
//! bug is still found on buggy cases, every obligation gets a report,
//! and nothing degrades to an error.

use aqed_bmc::BmcOptions;
use aqed_core::{
    verify_obligations, verify_obligations_scheduled, AqedHarness, CheckOutcome, ScheduleOptions,
};
use aqed_designs::all_cases;
use aqed_expr::ExprPool;
use aqed_sat::Solver;

/// Everything that must match between runs: verdict kind, violated
/// property, counterexample depth, explored bound.
fn verdict_key(outcome: &CheckOutcome) -> (u8, Option<String>, Option<usize>, Option<usize>) {
    match outcome {
        CheckOutcome::Clean { bound } => (0, None, None, Some(*bound)),
        CheckOutcome::Bug { counterexample, .. } => (
            1,
            Some(counterexample.bad_name.clone()),
            Some(counterexample.depth),
            None,
        ),
        CheckOutcome::Inconclusive { bound, reason } => {
            (2, Some(reason.to_string()), None, Some(*bound))
        }
        CheckOutcome::Errored { message } => (3, Some(message.clone()), None, None),
    }
}

#[test]
fn catalog_verdicts_identical_for_jobs_1_and_4() {
    let fail_fast = std::env::var("AQED_FAIL_FAST").is_ok_and(|v| v == "1");
    for case in all_cases() {
        // Cap the bound: the verdict identity is about scheduling, not
        // depth, and the full catalog runs twice in this test.
        let bound = case.bmc_bound.min(10);
        let mut keys = Vec::new();
        for jobs in [1usize, 4] {
            let mut pool = ExprPool::new();
            let lca = (case.build_buggy)(&mut pool);
            let mut harness = AqedHarness::new(&lca);
            if let Some(fc) = &case.fc {
                harness = harness.with_fc(fc.clone());
            }
            if let Some(rb) = &case.rb {
                harness = harness.with_rb(*rb);
            }
            let (composed, _) = harness.build(&mut pool);
            let options = BmcOptions::default().with_max_bound(bound);
            let report = if fail_fast {
                let sched = ScheduleOptions::default()
                    .with_jobs(jobs)
                    .with_fail_fast(true);
                verify_obligations_scheduled::<Solver>(&composed, &pool, &options, &sched)
            } else {
                verify_obligations(&composed, &pool, &options, jobs)
            };

            assert_eq!(
                report.obligations.len(),
                composed.bads().len(),
                "case {}: every bad must become an obligation",
                case.id
            );
            assert!(
                !report.degraded,
                "case {}: no obligation may degrade",
                case.id
            );
            let call_sum: u64 = report
                .obligations
                .iter()
                .map(|r| r.stats.solver_calls)
                .sum();
            assert_eq!(
                report.aggregate.solver_calls, call_sum,
                "case {}: aggregate must sum per-obligation stats",
                case.id
            );
            keys.push(verdict_key(&report.outcome));
        }
        if fail_fast {
            // Cancellation makes sibling verdicts scheduling-dependent
            // (which bug surfaces first can vary), but the verdict KIND
            // is stable: cancellation only ever happens after a bug is
            // found, so a run is either clean — identical to the
            // sequential verdict — or reports some bug. Never
            // inconclusive or errored at unlimited budget.
            for key in &keys {
                assert!(
                    key.0 <= 1,
                    "case {}: fail-fast may not lose the verdict (got kind {})",
                    case.id,
                    key.0
                );
            }
            assert_eq!(
                keys[0].0, keys[1].0,
                "case {}: fail-fast bug presence must not depend on jobs",
                case.id
            );
        } else {
            assert_eq!(keys[0], keys[1], "case {}: jobs=1 vs jobs=4", case.id);
        }
    }
}
