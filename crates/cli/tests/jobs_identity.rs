//! End-to-end determinism of the obligation scheduler: across the whole
//! design catalog, `--jobs 1` and `--jobs 4` must produce identical
//! A-QED verdicts, and the aggregate statistics must account for every
//! per-obligation run.

use aqed_bmc::BmcOptions;
use aqed_core::{verify_obligations, AqedHarness, CheckOutcome};
use aqed_designs::all_cases;
use aqed_expr::ExprPool;

/// Everything that must match between runs: verdict kind, violated
/// property, counterexample depth, explored bound.
fn verdict_key(outcome: &CheckOutcome) -> (u8, Option<String>, Option<usize>, Option<usize>) {
    match outcome {
        CheckOutcome::Clean { bound } => (0, None, None, Some(*bound)),
        CheckOutcome::Bug { counterexample, .. } => (
            1,
            Some(counterexample.bad_name.clone()),
            Some(counterexample.depth),
            None,
        ),
        CheckOutcome::Inconclusive { bound } => (2, None, None, Some(*bound)),
    }
}

#[test]
fn catalog_verdicts_identical_for_jobs_1_and_4() {
    for case in all_cases() {
        // Cap the bound: the verdict identity is about scheduling, not
        // depth, and the full catalog runs twice in this test.
        let bound = case.bmc_bound.min(10);
        let mut keys = Vec::new();
        for jobs in [1usize, 4] {
            let mut pool = ExprPool::new();
            let lca = (case.build_buggy)(&mut pool);
            let mut harness = AqedHarness::new(&lca);
            if let Some(fc) = &case.fc {
                harness = harness.with_fc(fc.clone());
            }
            if let Some(rb) = &case.rb {
                harness = harness.with_rb(*rb);
            }
            let (composed, _) = harness.build(&mut pool);
            let options = BmcOptions::default().with_max_bound(bound);
            let report = verify_obligations(&composed, &pool, &options, jobs);

            assert_eq!(
                report.obligations.len(),
                composed.bads().len(),
                "case {}: every bad must become an obligation",
                case.id
            );
            let call_sum: u64 = report
                .obligations
                .iter()
                .map(|r| r.stats.solver_calls)
                .sum();
            assert_eq!(
                report.aggregate.solver_calls, call_sum,
                "case {}: aggregate must sum per-obligation stats",
                case.id
            );
            keys.push(verdict_key(&report.outcome));
        }
        assert_eq!(keys[0], keys[1], "case {}: jobs=1 vs jobs=4", case.id);
    }
}
