//! End-to-end soundness of the simplification pipeline: across the whole
//! design catalog, running with cone-of-influence slicing and CNF
//! preprocessing enabled (the default) must produce exactly the same
//! A-QED verdicts as running with both stages disabled. The pipeline is
//! an optimisation; any verdict drift is a bug, not a tuning knob.
//!
//! Counterexamples found with the pipeline on must also replay on the
//! *original* composed system — the remapping from the sliced variable
//! space back to the full one has to be lossless.

use aqed_bmc::BmcOptions;
use aqed_core::{verify_obligations, AqedHarness, CheckOutcome};
use aqed_designs::all_cases;
use aqed_expr::ExprPool;

/// Everything that must match between runs: verdict kind, violated
/// property, counterexample depth, explored bound.
fn verdict_key(outcome: &CheckOutcome) -> (u8, Option<String>, Option<usize>, Option<usize>) {
    match outcome {
        CheckOutcome::Clean { bound } => (0, None, None, Some(*bound)),
        CheckOutcome::Bug { counterexample, .. } => (
            1,
            Some(counterexample.bad_name.clone()),
            Some(counterexample.depth),
            None,
        ),
        CheckOutcome::Inconclusive { bound, reason } => {
            (2, Some(reason.to_string()), None, Some(*bound))
        }
        CheckOutcome::Errored { message } => (3, Some(message.clone()), None, None),
    }
}

#[test]
fn catalog_verdicts_identical_with_and_without_pipeline() {
    for case in all_cases() {
        // Cap the bound: verdict identity is about the pipeline, not
        // depth, and the full catalog runs twice in this test.
        let bound = case.bmc_bound.min(10);
        let mut keys = Vec::new();
        for pipeline in [true, false] {
            let mut pool = ExprPool::new();
            let lca = (case.build_buggy)(&mut pool);
            let mut harness = AqedHarness::new(&lca);
            if let Some(fc) = &case.fc {
                harness = harness.with_fc(fc.clone());
            }
            if let Some(rb) = &case.rb {
                harness = harness.with_rb(*rb);
            }
            let (composed, _) = harness.build(&mut pool);
            let options = BmcOptions::default()
                .with_max_bound(bound)
                .with_coi(pipeline)
                .with_preprocess(pipeline);
            let report = verify_obligations(&composed, &pool, &options, 2);
            assert!(
                !report.degraded,
                "case {}: no obligation may degrade (pipeline={pipeline})",
                case.id
            );
            if pipeline {
                if let CheckOutcome::Bug { counterexample, .. } = &report.outcome {
                    assert!(
                        counterexample.replay(&composed, &pool),
                        "case {}: pipeline witness must replay on the original system",
                        case.id
                    );
                }
            }
            keys.push(verdict_key(&report.outcome));
        }
        assert_eq!(keys[0], keys[1], "case {}: pipeline on vs off", case.id);
    }
}
