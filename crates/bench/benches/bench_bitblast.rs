//! Criterion benchmarks of the word-level → CNF bit-blaster: encoding
//! cost and solve cost of multiplier equivalence obligations at growing
//! widths.

use aqed_bitblast::BitBlaster;
use aqed_expr::{ExprPool, VarKind};
use aqed_sat::{SolveResult, Solver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Encode (x + y) * k and count clauses — pure encoding cost.
fn encode_mul(width: u32) -> usize {
    let mut p = ExprPool::new();
    let x = p.var("x", width, VarKind::Input);
    let y = p.var("y", width, VarKind::Input);
    let xe = p.var_expr(x);
    let ye = p.var_expr(y);
    let sum = p.add(xe, ye);
    let prod = p.mul(sum, ye);
    let mut solver = Solver::new();
    let mut bb = BitBlaster::new();
    let _ = bb.blast(&p, prod, &mut solver);
    solver.num_clauses()
}

/// Prove `x * 2 == x + x` at a given width (UNSAT of the negation).
fn prove_mul2_is_add(width: u32) {
    let mut p = ExprPool::new();
    let x = p.var("x", width, VarKind::Input);
    let xe = p.var_expr(x);
    let two = p.lit(width, 2);
    let lhs = p.mul(xe, two);
    let rhs = p.add(xe, xe);
    let ne = p.ne(lhs, rhs);
    let mut solver = Solver::new();
    let mut bb = BitBlaster::new();
    bb.assert_true(&p, ne, &mut solver);
    assert_eq!(solver.solve(), SolveResult::Unsat);
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitblast/encode_mul");
    for width in [16u32, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| encode_mul(w));
        });
    }
    group.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitblast/prove_mul2_add");
    for width in [8u32, 16, 24] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| prove_mul2_is_add(w));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoding, bench_equivalence);
criterion_main!(benches);
