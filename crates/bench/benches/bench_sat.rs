//! Criterion benchmarks of the CDCL SAT solver substrate: pigeonhole
//! (UNSAT, conflict-analysis bound) and random 3-SAT near the phase
//! transition (mixed SAT/UNSAT).

use aqed_sat::{SolveResult, Solver, Var};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pigeonhole(pigeons: usize, holes: usize) -> SolveResult {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
    for row in &p {
        s.add_clause(row.iter().map(|v| v.pos()));
    }
    for h in 0..holes {
        for i in 0..pigeons {
            for j in (i + 1)..pigeons {
                s.add_clause([p[i][h].neg(), p[j][h].neg()]);
            }
        }
    }
    s.solve()
}

fn random_3sat(n: usize, m: usize, seed: u64) -> SolveResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Solver::new();
    let vars = s.new_vars(n);
    for _ in 0..m {
        let mut c = Vec::with_capacity(3);
        while c.len() < 3 {
            let v = rng.gen_range(0..n);
            if !c.iter().any(|&(u, _)| u == v) {
                c.push((v, rng.gen::<bool>()));
            }
        }
        s.add_clause(c.iter().map(|&(v, pos)| vars[v].lit(pos)));
    }
    s.solve()
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/pigeonhole");
    for size in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &n| {
            b.iter(|| {
                assert_eq!(pigeonhole(n, n - 1), SolveResult::Unsat);
            });
        });
    }
    group.finish();
}

fn bench_random_3sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/random3sat");
    group.sample_size(20);
    for n in [100usize, 150] {
        let m = (n as f64 * 4.2) as usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let _ = random_3sat(n, m, seed);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pigeonhole, bench_random_3sat);
criterion_main!(benches);
