//! Criterion benchmarks of the CDCL SAT solver substrate: pigeonhole
//! (UNSAT, conflict-analysis bound), random 3-SAT near the phase
//! transition (mixed SAT/UNSAT), and pure unit-propagation microbenches
//! (dense binary-clause chains vs. padded long clauses) that track the
//! clause-arena binary fast path.

use aqed_sat::{Lit, SolveResult, Solver, Var};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pigeonhole(pigeons: usize, holes: usize) -> SolveResult {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
    for row in &p {
        s.add_clause(row.iter().map(|v| v.pos()));
    }
    for h in 0..holes {
        let col: Vec<Var> = p.iter().map(|row| row[h]).collect();
        for (i, &a) in col.iter().enumerate() {
            for &b in &col[i + 1..] {
                s.add_clause([a.neg(), b.neg()]);
            }
        }
    }
    s.solve()
}

fn random_3sat(n: usize, m: usize, seed: u64) -> SolveResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Solver::new();
    let vars = s.new_vars(n);
    for _ in 0..m {
        let mut c = Vec::with_capacity(3);
        while c.len() < 3 {
            let v = rng.gen_range(0..n);
            if !c.iter().any(|&(u, _)| u == v) {
                c.push((v, rng.gen::<bool>()));
            }
        }
        s.add_clause(c.iter().map(|&(v, pos)| vars[v].lit(pos)));
    }
    s.solve()
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/pigeonhole");
    for size in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &n| {
            b.iter(|| {
                assert_eq!(pigeonhole(n, n - 1), SolveResult::Unsat);
            });
        });
    }
    group.finish();
}

fn bench_random_3sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/random3sat");
    group.sample_size(20);
    for n in [100usize, 150] {
        let m = (n as f64 * 4.2) as usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let _ = random_3sat(n, m, seed);
            });
        });
    }
    group.finish();
}

/// Deterministic Fisher–Yates shuffle of `0..n`. The chain benches add
/// their clauses in shuffled order so clause *storage* is not laid out
/// in propagation order — on real instances the propagation-order walk
/// over clause memory is scattered, and a sequential layout would let
/// the prefetcher hide exactly the clause-access cost these benches are
/// meant to expose.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    order
}

/// Propagation microbench: an implication chain v0 → v1 → … → vn built
/// purely from binary clauses. Each `solve_with([v0])` call propagates
/// the whole chain at decision level 1 and backtracks; no conflicts, so
/// the measurement isolates watch-list traversal.
fn bench_prop_binary_chain(group: &mut criterion::BenchmarkGroup<'_>, n: usize) {
    let mut s = Solver::new();
    // Decisions after the chain has propagated would pop the whole VSIDS
    // heap (O(n log n)), drowning the watch-list traversal this bench is
    // after; the index-scan fallback keeps the measurement on propagation.
    s.set_decision_heuristic(false);
    let vars = s.new_vars(n);
    for i in shuffled_indices(n - 1, 0xB1A5) {
        assert!(s.add_clause([vars[i].neg(), vars[i + 1].pos()]));
    }
    let trigger = vars[0].pos();
    group.bench_with_input(BenchmarkId::new("binary_chain", n), &n, |b, _| {
        b.iter(|| {
            assert_eq!(s.solve_with(&[trigger]), SolveResult::Sat);
        });
    });
}

/// The same implication chain, but every clause is padded with 6 filler
/// literals that are only falsified by assumptions (so clause-database
/// simplification cannot strip them). Propagation must scan the padding
/// in every clause — the long-clause contrast to the binary fast path.
fn bench_prop_long_chain(group: &mut criterion::BenchmarkGroup<'_>, n: usize) {
    let mut s = Solver::new();
    s.set_decision_heuristic(false);
    let vars = s.new_vars(n);
    let pads = s.new_vars(6);
    for i in shuffled_indices(n - 1, 0x10C5) {
        let mut clause: Vec<Lit> = vec![vars[i].neg(), vars[i + 1].pos()];
        clause.extend(pads.iter().map(|p| p.pos()));
        assert!(s.add_clause(clause));
    }
    let mut assumptions: Vec<Lit> = pads.iter().map(|p| p.neg()).collect();
    assumptions.push(vars[0].pos());
    group.bench_with_input(BenchmarkId::new("long_chain", n), &n, |b, _| {
        b.iter(|| {
            assert_eq!(s.solve_with(&assumptions), SolveResult::Sat);
        });
    });
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/propagation");
    group.sample_size(20);
    for n in [10_000usize, 50_000] {
        bench_prop_binary_chain(&mut group, n);
        bench_prop_long_chain(&mut group, n);
    }
    group.finish();
}

/// Arena-GC microbench: `reclaim_memory` forces a full compaction on a
/// formula shaped like a bit-blasted netlist — watch lists dominated by
/// inlined binary clauses (4 per variable) plus a block of 8-literal
/// clauses living in the arena. Compaction cost should track the arena
/// clauses only; the binary watchers carry no arena reference and must
/// survive the watch-list rebuild untouched.
fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/gc");
    group.sample_size(20);
    for n in [10_000usize, 50_000] {
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        for i in 0..n {
            for j in 1..=4usize {
                assert!(s.add_clause([vars[i].neg(), vars[(i + j) % n].pos()]));
            }
        }
        for i in 0..n / 8 {
            let clause: Vec<Lit> = (0..8).map(|j| vars[(i * 11 + j * 17) % n].pos()).collect();
            assert!(s.add_clause(clause));
        }
        group.bench_with_input(BenchmarkId::new("reclaim", n), &n, |b, _| {
            b.iter(|| s.reclaim_memory());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pigeonhole,
    bench_random_3sat,
    bench_propagation,
    bench_gc
);
criterion_main!(benches);
