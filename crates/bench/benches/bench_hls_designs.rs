//! Criterion form of Table 2: end-to-end A-QED verification time on each
//! HLS design's buggy variant.

use aqed_core::AqedHarness;
use aqed_designs::hls_cases;
use aqed_expr::ExprPool;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hls(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/aqed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    for case in hls_cases() {
        // Benchmark the BMC cost at a fixed shallow bound: deep-enough to
        // exercise the full pipeline, cheap enough for Criterion's
        // repeated sampling. The one-shot Table 2 regeneration (with the
        // full catalogue bounds and bug assertions) is the `table2` bin.
        let bench_bound = case.bmc_bound.min(8);
        group.bench_with_input(
            BenchmarkId::from_parameter(case.id),
            &case,
            move |b, case| {
                b.iter(|| {
                    let mut pool = ExprPool::new();
                    let lca = (case.build_buggy)(&mut pool);
                    let mut harness = AqedHarness::new(&lca);
                    if let Some(fc) = &case.fc {
                        harness = harness.with_fc(fc.clone());
                    }
                    if let Some(rb) = &case.rb {
                        harness = harness.with_rb(*rb);
                    }
                    let _report = harness.verify(&mut pool, bench_bound);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hls);
criterion_main!(benches);
