//! Criterion form of Table 1: end-to-end A-QED verification time on
//! representative memory-controller bugs, against the conventional
//! simulation flow on the same bugs.

use aqed_core::{AqedHarness, FcConfig};
use aqed_designs::memctrl::{self, MemctrlBug};
use aqed_expr::ExprPool;
use aqed_sim::Testbench;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const REPRESENTATIVE: [MemctrlBug; 3] = [
    MemctrlBug::FifoPtrWrapOffByOne,
    MemctrlBug::DbSwapWithoutDrainCheck,
    MemctrlBug::LbTapOffByOne,
];

fn bench_aqed(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/aqed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    for bug in REPRESENTATIVE {
        group.bench_with_input(BenchmarkId::from_parameter(bug.id()), &bug, |b, &bug| {
            b.iter(|| {
                let mut pool = ExprPool::new();
                let lca = memctrl::build(&mut pool, bug.config(), Some(bug));
                // Fixed bound: a stable cost measurement whether or not
                // the witness lands inside it (table1 asserts detection).
                let report = AqedHarness::new(&lca)
                    .with_fc(FcConfig::default())
                    .with_rb(memctrl::recommended_rb(bug.config()))
                    .verify(&mut pool, 12);
                let _ = report;
            });
        });
    }
    group.finish();
}

fn bench_conventional(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/conventional");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    for bug in REPRESENTATIVE {
        group.bench_with_input(BenchmarkId::from_parameter(bug.id()), &bug, |b, &bug| {
            b.iter(|| {
                let mut pool = ExprPool::new();
                let lca = memctrl::build(&mut pool, bug.config(), Some(bug));
                let outcome = Testbench::quick().run(&lca, &pool, memctrl::golden);
                assert!(outcome.detected());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aqed, bench_conventional);
criterion_main!(benches);
