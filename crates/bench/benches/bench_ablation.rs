//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//!
//! * incremental vs monolithic BMC (one solver across depths vs
//!   re-encoding per depth),
//! * the common-key batch constraint of the AES setup (paper Sec. IV.B
//!   customization) on vs off,
//! * SAT solver features: VSIDS decision heuristic and restarts.

use aqed_bmc::BmcOptions;
use aqed_core::{AqedHarness, FcConfig};
use aqed_designs::aes::{self, AesBug};
use aqed_designs::memctrl::{self, MemctrlBug};
use aqed_expr::ExprPool;
use aqed_sat::{SolveResult, Solver, Var};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_incremental_vs_monolithic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bmc_mode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    let bug = MemctrlBug::DbDrainPtrNotReset;
    for (label, incremental) in [("incremental", true), ("monolithic", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut pool = ExprPool::new();
                let lca = memctrl::build(&mut pool, bug.config(), Some(bug));
                let report = AqedHarness::new(&lca)
                    .with_fc(FcConfig::default())
                    .with_bmc_options(BmcOptions::default().with_incremental(incremental))
                    .verify(&mut pool, 10);
                let _ = report; // cost comparison only; bug-finding is table1's job
            });
        });
    }
    group.finish();
}

fn bench_common_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/aes_common_key");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(12));
    let bug = AesBug::V1StaleKeyAlternate;
    for (label, common) in [("with_common_key", true), ("without", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut pool = ExprPool::new();
                let lca = aes::build(&mut pool, Some(bug));
                let fc = FcConfig {
                    common_field: common.then_some((31, 16)),
                    ..FcConfig::default()
                };
                // Bounded cost comparison: fixed shallow bound, no bug
                // assertion (the trigger lives deeper; the constraint's
                // effect on search cost is what's measured).
                let _ = AqedHarness::new(&lca).with_fc(fc).verify(&mut pool, 8);
            });
        });
    }
    group.finish();
}

fn pigeonhole_with(heuristic: bool, restarts: bool) {
    let mut s = Solver::new();
    s.set_decision_heuristic(heuristic);
    s.set_restarts_enabled(restarts);
    let (pigeons, holes) = (7usize, 6usize);
    let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
    for row in &p {
        s.add_clause(row.iter().map(|v| v.pos()));
    }
    for h in 0..holes {
        let col: Vec<Var> = p.iter().map(|row| row[h]).collect();
        for (i, &a) in col.iter().enumerate() {
            for &b in &col[i + 1..] {
                s.add_clause([a.neg(), b.neg()]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
}

fn bench_solver_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/solver_features");
    group.sample_size(20);
    for (label, heuristic, restarts) in [
        ("vsids+restarts", true, true),
        ("vsids_only", true, false),
        ("no_vsids", false, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| pigeonhole_with(heuristic, restarts));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_monolithic,
    bench_common_key,
    bench_solver_features
);
criterion_main!(benches);
