//! Shared reporting helpers for the benchmark harness that regenerates
//! every table and figure of the A-QED paper.
//!
//! The binaries in `src/bin` print the paper's tables from live runs:
//!
//! * `table1` — memory-controller unit: setup effort, runtime and trace
//!   length, A-QED vs conventional flow (paper Table 1 + Observation 3).
//! * `fig5` — bugs detected per flow (paper Fig. 5).
//! * `table2` — HLS designs: bug type, runtime, CEX length (paper
//!   Table 2).
//!
//! The Criterion benches in `benches/` track the performance of each
//! layer plus the ablations called out in `DESIGN.md`.

use std::fmt;
use std::time::Duration;

/// Minimum / average / maximum of a sample, the aggregate the paper's
/// Table 1 reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest sample.
    pub min: f64,
    /// Arithmetic mean.
    pub avg: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    #[must_use]
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        Summary {
            min,
            avg: sum / xs.len() as f64,
            max,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}, {:.1}, {:.1}", self.min, self.avg, self.max)
    }
}

/// Formats a duration as the paper's `min:sec` runtime format.
#[must_use]
pub fn fmt_mmss(d: Duration) -> String {
    let total = d.as_secs_f64();
    let minutes = (total / 60.0).floor() as u64;
    let seconds = total - minutes as f64 * 60.0;
    format!("{minutes}:{seconds:04.1}")
}

/// Formats a duration in seconds with millisecond resolution.
#[must_use]
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Prints a horizontal rule of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Writes a machine-readable bench summary to
/// `results/bench_<name>.json` (creating `results/`), wrapped in a
/// stable envelope so CI diffs and dashboards can consume every bench
/// the same way. Returns the path written. `AQED_BENCH_DIR` overrides
/// the `results/` directory.
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn write_bench_json(
    bench: &str,
    fields: Vec<(&str, aqed_obs::json::Json)>,
) -> std::io::Result<std::path::PathBuf> {
    use aqed_obs::json::Json;
    let dir = std::env::var("AQED_BENCH_DIR").unwrap_or_else(|_| "results".to_string());
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir)?;
    let mut envelope = vec![
        ("kind", Json::from("aqed-bench")),
        ("bench", Json::from(bench)),
    ];
    envelope.extend(fields);
    let path = dir.join(format!("bench_{bench}.json"));
    std::fs::write(&path, format!("{}\n", Json::obj(envelope)))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_samples() {
        let s = Summary::of(&[4.0, 6.0, 8.0]);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.avg, 6.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.to_string(), "4.0, 6.0, 8.0");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_mmss(Duration::from_secs(72)), "1:12.0");
        assert_eq!(fmt_mmss(Duration::from_millis(5_700)), "0:05.7");
        assert_eq!(fmt_secs(Duration::from_millis(1_234)), "1.234s");
    }
}
