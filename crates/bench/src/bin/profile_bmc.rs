//! Developer tool: per-depth BMC profile of a catalogued case.
//!
//! ```text
//! cargo run --release -p aqed-bench --bin profile_bmc -- <case-id> [max-bound]
//! ```
//!
//! Prints, for every depth, the cumulative solver statistics and wall
//! time — the data that guided the engine's performance tuning. Honours
//! `AQED_NO_COI=1` / `AQED_NO_PREPROCESS=1` so the simplification
//! pipeline can be ablated without recompiling.
//!
//! After the sweep, if a counterexample was found, the tool re-runs the
//! final bound incrementally and replays the satisfying model through
//! bare unit propagation (`replay_model_propagation`) — measuring the
//! cost of `propagate()` alone, with no search, restarts or clause
//! learning in the way.

use aqed_bmc::{ArmedBudget, Bmc, BmcOptions, BmcResult};
use aqed_core::AqedHarness;
use aqed_designs::all_cases;
use aqed_expr::ExprPool;
use std::time::Instant;

fn env_disabled(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let case_id = args
        .first()
        .map(String::as_str)
        .unwrap_or("motivating_clock_enable");
    let max_bound: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(14);
    let case = all_cases()
        .into_iter()
        .find(|c| c.id == case_id)
        .unwrap_or_else(|| panic!("unknown case '{case_id}'"));

    let coi = !env_disabled("AQED_NO_COI");
    let preprocess = !env_disabled("AQED_NO_PREPROCESS");

    let mut pool = ExprPool::new();
    let lca = (case.build_buggy)(&mut pool);
    let mut harness = AqedHarness::new(&lca);
    if let Some(fc) = &case.fc {
        harness = harness.with_fc(fc.clone());
    }
    if let Some(rb) = &case.rb {
        harness = harness.with_rb(*rb);
    }
    let (composed, _) = harness.build(&mut pool);
    println!("case {case_id}: {composed}");
    println!("pipeline: coi={coi} preprocess={preprocess}");
    println!(
        "{:>5} {:>9} {:>10} {:>10} {:>12} {:>12} {:>9} {:>8} {:>8} {:>9} {:>9}",
        "depth",
        "time(s)",
        "clauses",
        "vars",
        "conflicts",
        "binprops",
        "subsumed",
        "elim",
        "pp(ms)",
        "coi k/d",
        "verdict"
    );
    let options = || {
        BmcOptions::default()
            .with_coi(coi)
            .with_preprocess(preprocess)
    };
    // Run depth by depth so per-depth cost is visible.
    let t0 = Instant::now();
    let mut cex_depth = None;
    let mut last_solver = None;
    for k in 0..=max_bound {
        let mut bmc = Bmc::new(&composed, options().with_max_bound(k));
        let t = Instant::now();
        let result = bmc.check(&composed, &mut pool);
        let stats = bmc.stats();
        let verdict = match &result {
            BmcResult::Counterexample(c) => format!("CEX@{}", c.depth),
            BmcResult::NoCounterexample { .. } => "clean".to_string(),
            BmcResult::Unknown { .. } => "unknown".to_string(),
        };
        println!(
            "{:>5} {:>9.2} {:>10} {:>10} {:>12} {:>12} {:>9} {:>8} {:>8} {:>9} {:>9}",
            k,
            t.elapsed().as_secs_f64(),
            stats.clauses,
            stats.variables,
            stats.solver.conflicts,
            stats.solver.binary_props,
            stats.solver.subsumed,
            stats.solver.eliminated_vars,
            stats.solver.preprocess_micros / 1000,
            format!("{}/{}", stats.coi_latches_kept, stats.coi_latches_dropped),
            verdict
        );
        last_solver = Some(stats.solver);
        if let BmcResult::Counterexample(c) = &result {
            cex_depth = Some(c.depth);
            break;
        }
    }
    println!("total: {:.2}s", t0.elapsed().as_secs_f64());
    // The full solver-stats line includes the warm-start counters
    // (learnt_imported / learnt_discarded) — zero on this cold sweep,
    // nonzero when a learnt pack was injected.
    if let Some(solver) = last_solver {
        println!("final solver stats: {solver}");
    }
    println!("note: depth k re-runs 0..=k (cumulative per line; incremental inside one run).");

    // Trail-replay harness: re-run the CEX bound on one live session and
    // replay the satisfying model through bare unit propagation. The
    // enqueue/propagation counts isolate BCP cost from search overhead.
    let Some(depth) = cex_depth else {
        println!("no counterexample up to bound {max_bound}; skipping trail replay");
        return;
    };
    let mut bmc = Bmc::new(&composed, options().with_max_bound(depth));
    let armed = ArmedBudget::arm(&options().budget);
    let mut replay = None;
    let mut replay_time = None;
    let result = bmc.check_inspecting(&composed, &mut pool, &armed, |solver| {
        let t = Instant::now();
        replay = solver.replay_model_propagation();
        replay_time = Some(t.elapsed());
    });
    match (result, replay) {
        (BmcResult::Counterexample(_), Some(r)) => {
            let micros = replay_time.unwrap_or_default().as_micros();
            println!(
                "trail replay @ depth {depth}: {} enqueued, {} propagations, conflicted={} ({micros} µs)",
                r.enqueued, r.propagated, r.conflicted
            );
        }
        (BmcResult::Counterexample(_), None) => {
            println!("trail replay @ depth {depth}: no model on final solver (unexpected)");
        }
        (other, _) => println!("trail replay skipped: re-run returned {other:?}"),
    }
}
