//! Developer tool: per-depth BMC profile of a catalogued case.
//!
//! ```text
//! cargo run --release -p aqed-bench --bin profile_bmc -- <case-id> [max-bound]
//! ```
//!
//! Prints, for every depth, the cumulative solver statistics and wall
//! time — the data that guided the engine's performance tuning.

use aqed_bmc::{Bmc, BmcOptions, BmcResult};
use aqed_core::AqedHarness;
use aqed_designs::all_cases;
use aqed_expr::ExprPool;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let case_id = args
        .first()
        .map(String::as_str)
        .unwrap_or("motivating_clock_enable");
    let max_bound: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(14);
    let case = all_cases()
        .into_iter()
        .find(|c| c.id == case_id)
        .unwrap_or_else(|| panic!("unknown case '{case_id}'"));

    let mut pool = ExprPool::new();
    let lca = (case.build_buggy)(&mut pool);
    let mut harness = AqedHarness::new(&lca);
    if let Some(fc) = &case.fc {
        harness = harness.with_fc(fc.clone());
    }
    if let Some(rb) = &case.rb {
        harness = harness.with_rb(*rb);
    }
    let (composed, _) = harness.build(&mut pool);
    println!("case {case_id}: {composed}");
    println!(
        "{:>5} {:>9} {:>10} {:>10} {:>12} {:>12} {:>10} {:>4} {:>9}",
        "depth",
        "time(s)",
        "clauses",
        "vars",
        "conflicts",
        "binprops",
        "arena(KB)",
        "gc",
        "verdict"
    );
    // Run depth by depth so per-depth cost is visible.
    let t0 = Instant::now();
    for k in 0..=max_bound {
        let mut bmc = Bmc::new(&composed, BmcOptions::default().with_max_bound(k));
        let t = Instant::now();
        let result = bmc.check(&composed, &mut pool);
        let stats = bmc.stats();
        let verdict = match &result {
            BmcResult::Counterexample(c) => format!("CEX@{}", c.depth),
            BmcResult::NoCounterexample { .. } => "clean".to_string(),
            BmcResult::Unknown { .. } => "unknown".to_string(),
        };
        println!(
            "{:>5} {:>9.2} {:>10} {:>10} {:>12} {:>12} {:>10} {:>4} {:>9}",
            k,
            t.elapsed().as_secs_f64(),
            stats.clauses,
            stats.variables,
            stats.solver.conflicts,
            stats.solver.binary_props,
            stats.solver.arena_bytes / 1024,
            stats.solver.gc_runs,
            verdict
        );
        if matches!(result, BmcResult::Counterexample(_)) {
            break;
        }
    }
    println!("total: {:.2}s", t0.elapsed().as_secs_f64());
    println!("note: depth k re-runs 0..=k (cumulative per line; incremental inside one run).");
}
