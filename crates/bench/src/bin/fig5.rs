//! Regenerates **Fig. 5** of the A-QED paper: the memory-controller
//! bug-detection breakdown — bugs found by both flows vs bugs found only
//! by A-QED (the paper reports a 13% A-QED-only slice).
//!
//! Run with `cargo run --release -p aqed-bench --bin fig5`.

use aqed_bench::rule;
use aqed_core::AqedHarness;
use aqed_designs::memctrl_cases;
use aqed_expr::ExprPool;
use aqed_sim::Testbench;
use std::collections::BTreeMap;

/// Loads per-bug detection results from a prior `table1` run, if present.
fn cached_detection() -> Option<std::collections::HashMap<String, (bool, bool)>> {
    let text = std::fs::read_to_string("results/detection.tsv").ok()?;
    let mut map = std::collections::HashMap::new();
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() == 5 {
            map.insert(cols[0].to_string(), (cols[3] == "true", cols[4] == "true"));
        }
    }
    (map.len() == memctrl_cases().len()).then_some(map)
}

fn main() {
    let cases = memctrl_cases();
    println!("Fig. 5: Memory-controller unit bugs detected\n");
    let cached = cached_detection();
    if cached.is_some() {
        println!("(reusing per-bug results from results/detection.tsv — run table1 to refresh)\n");
    }

    let mut per_config: BTreeMap<&str, (usize, usize, usize)> = BTreeMap::new(); // (total, aqed, conv)
    let mut aqed_total = 0usize;
    let mut conv_total = 0usize;

    println!(
        "{:<32} {:<14} {:>7} {:>14}",
        "bug", "config", "A-QED", "conventional"
    );
    rule(72);
    for case in &cases {
        let (aqed_found, conv_found) = match cached.as_ref().and_then(|m| m.get(case.id)) {
            Some(&(a, c)) => (a, c),
            None => {
                let mut pool = ExprPool::new();
                let lca = (case.build_buggy)(&mut pool);
                let mut harness = AqedHarness::new(&lca);
                if let Some(fc) = &case.fc {
                    harness = harness.with_fc(fc.clone());
                }
                if let Some(rb) = &case.rb {
                    harness = harness.with_rb(*rb);
                }
                let aqed_found = harness.verify(&mut pool, case.bmc_bound).found_bug();
                let golden = case.golden.expect("memctrl cases have a golden model");
                let conv_found = Testbench::default().run(&lca, &pool, golden).detected();
                (aqed_found, conv_found)
            }
        };

        let entry = per_config.entry(case.config).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += usize::from(aqed_found);
        entry.2 += usize::from(conv_found);
        aqed_total += usize::from(aqed_found);
        conv_total += usize::from(conv_found);
        println!(
            "{:<32} {:<14} {:>7} {:>14}",
            case.id,
            case.config,
            if aqed_found { "found" } else { "MISSED" },
            if conv_found { "found" } else { "MISSED" }
        );
    }
    rule(72);

    println!("\nPer configuration:");
    for (config, (total, aqed, conv)) in &per_config {
        println!("  {config:<14} total {total:>2}   A-QED {aqed:>2}   conventional {conv:>2}");
    }

    let n = cases.len();
    let both = cases.len().min(conv_total); // conventional ⊆ A-QED here
    let aqed_only = aqed_total - both;
    println!("\nTotals over {n} bugs:");
    println!(
        "  detected by both flows:     {both:>2} ({:.0}%)",
        100.0 * both as f64 / n as f64
    );
    println!(
        "  detected only by A-QED:     {aqed_only:>2} ({:.0}%)   <- paper: 13%",
        100.0 * aqed_only as f64 / n as f64
    );
    println!(
        "  detected only by conv flow:  {:>2} ({:.0}%)",
        conv_total.saturating_sub(aqed_total),
        100.0 * conv_total.saturating_sub(aqed_total) as f64 / n as f64
    );
    assert_eq!(
        aqed_total, n,
        "Observation 1: A-QED detects every bug in the suite"
    );
}
