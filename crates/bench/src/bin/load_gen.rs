//! Load generator for the `aqed-serve` daemon: drives N concurrent
//! clients against an in-process server and reports the saturation
//! curve plus the artifact-cache latency split (see EXPERIMENTS.md,
//! "Service throughput"). With `--store-dir` the warm measurements are
//! split further: warm-in-memory (same server instance) versus
//! warm-from-disk (a restarted server that recovered the journal).
//!
//! ```text
//! cargo run --release -p aqed-bench --bin load_gen
//!   [--workers N] [--requests N] [--clients 1,2,4,8] [--store-dir DIR]
//! ```

use aqed_bench::write_bench_json;
use aqed_engine::VerifyRequest;
use aqed_obs::json::Json;
use aqed_serve::{submit, ServeOptions, Server};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The request mix: quick catalog cases with distinct designs, so the
/// cache is exercised across several keys rather than one hot entry.
fn workload() -> Vec<(&'static str, VerifyRequest)> {
    let mut mix = Vec::new();
    for (label, case, healthy, bound) in [
        ("dataflow buggy", "dataflow_fifo_sizing", false, 16),
        ("dataflow healthy", "dataflow_fifo_sizing", true, 8),
        ("motivating buggy", "motivating_clock_enable", false, 14),
        ("optflow buggy", "optflow_pushpop", false, 15),
    ] {
        let mut req = VerifyRequest::new(case);
        req.healthy = healthy;
        req.bound = Some(bound);
        req.jobs = 1;
        mix.push((label, req));
    }
    mix
}

fn run_one(addr: SocketAddr, req: &VerifyRequest) -> (Duration, u64) {
    let start = Instant::now();
    let outcome = submit(addr, req).expect("request must complete");
    assert!(
        !outcome.rejected,
        "load request rejected: {}",
        outcome.verdict
    );
    let hits = outcome
        .report
        .as_ref()
        .and_then(|r| r.get("cache_hits"))
        .and_then(aqed_obs::json::Json::as_u64)
        .unwrap_or(0);
    (start.elapsed(), hits)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn start_server(workers: usize, store_dir: Option<&PathBuf>) -> Server {
    Server::start(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: 256,
        store_dir: store_dir.cloned(),
        ..ServeOptions::default()
    })
    .expect("bind in-process server")
}

fn main() {
    let mut workers = 4usize;
    let mut requests = 32usize;
    let mut client_counts = vec![1usize, 2, 4, 8];
    let mut store_dir: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => workers = it.next().and_then(|v| v.parse().ok()).expect("--workers N"),
            "--requests" => {
                requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests N");
            }
            "--clients" => {
                client_counts = it
                    .next()
                    .expect("--clients LIST")
                    .split(',')
                    .map(|c| c.parse().expect("client count"))
                    .collect();
            }
            "--store-dir" => store_dir = Some(PathBuf::from(it.next().expect("--store-dir DIR"))),
            other => panic!("unknown flag '{other}'"),
        }
    }
    if let Some(dir) = &store_dir {
        // A stale journal would turn "cold" into "warm"; start clean.
        let _ = std::fs::remove_dir_all(dir);
    }
    let mut server = start_server(workers, store_dir.as_ref());
    let mut addr = server.addr();
    let mix = workload();
    println!("# load_gen: {workers} workers, {requests} requests per level\n");
    // Machine-readable mirror of everything printed below, written to
    // results/bench_load_gen.json at the end of the run.
    let mut cache_rows: Vec<Json> = Vec::new();
    let mut saturation_rows: Vec<Json> = Vec::new();

    // Cold vs warm: the first submission of each case pays design
    // build + COI + preprocessing + solving; the repeat is answered
    // from the artifact store. With --store-dir the server is then
    // restarted on the same directory, so the third column measures a
    // cache warmed purely by journal recovery (disk read + checksum
    // verification + positional decode), not by prior in-memory use.
    match &store_dir {
        None => {
            println!("## cold vs warm cache latency\n");
            println!("| case | cold ms | warm ms | speedup | warm cache hits |");
            println!("|---|---|---|---|---|");
            for (label, req) in &mix {
                let (cold, _) = run_one(addr, req);
                let (warm, hits) = run_one(addr, req);
                println!(
                    "| {label} | {:.1} | {:.1} | {:.1}x | {hits} |",
                    ms(cold),
                    ms(warm),
                    ms(cold) / ms(warm).max(0.001),
                );
                cache_rows.push(Json::obj(vec![
                    ("case", Json::from(*label)),
                    ("cold_ms", Json::Num(ms(cold))),
                    ("warm_ms", Json::Num(ms(warm))),
                    ("warm_cache_hits", Json::num(hits)),
                ]));
            }
        }
        Some(dir) => {
            println!("## cold vs warm-from-disk vs warm-in-memory latency\n");
            let cold_mem: Vec<(Duration, Duration, u64)> = mix
                .iter()
                .map(|(_, req)| {
                    let (cold, _) = run_one(addr, req);
                    let (warm_mem, hits) = run_one(addr, req);
                    (cold, warm_mem, hits)
                })
                .collect();
            server.begin_shutdown();
            server.join();
            server = start_server(workers, Some(dir));
            addr = server.addr();
            println!("| case | cold ms | warm disk ms | warm mem ms | disk speedup | mem speedup | warm hits |");
            println!("|---|---|---|---|---|---|---|");
            for ((label, req), (cold, warm_mem, hits)) in mix.iter().zip(&cold_mem) {
                let (warm_disk, disk_hits) = run_one(addr, req);
                assert_eq!(
                    *hits, disk_hits,
                    "{label}: recovery must warm exactly the in-memory hit set"
                );
                println!(
                    "| {label} | {:.1} | {:.1} | {:.1} | {:.1}x | {:.1}x | {hits} |",
                    ms(*cold),
                    ms(warm_disk),
                    ms(*warm_mem),
                    ms(*cold) / ms(warm_disk).max(0.001),
                    ms(*cold) / ms(*warm_mem).max(0.001),
                );
                cache_rows.push(Json::obj(vec![
                    ("case", Json::from(*label)),
                    ("cold_ms", Json::Num(ms(*cold))),
                    ("warm_disk_ms", Json::Num(ms(warm_disk))),
                    ("warm_mem_ms", Json::Num(ms(*warm_mem))),
                    ("warm_cache_hits", Json::num(*hits)),
                ]));
            }
        }
    }

    // Saturation: the cache is warm for the whole mix now, so this
    // curve measures the service path (queueing, scheduling, report
    // assembly), not the solver.
    println!("\n## saturation curve (warm cache)\n");
    println!("| clients | total s | req/s | mean ms | p95 ms |");
    println!("|---|---|---|---|---|");
    for &clients in &client_counts {
        let started = Instant::now();
        let latencies: Vec<Duration> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let mix = &mix;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        let mut i = client;
                        while i < requests {
                            let (_, req) = &mix[i % mix.len()];
                            mine.push(run_one(addr, req).0);
                            i += clients;
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let total = started.elapsed();
        let mut sorted = latencies.clone();
        sorted.sort();
        let mean = ms(latencies.iter().sum::<Duration>()) / latencies.len() as f64;
        let p95 = ms(sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)]);
        println!(
            "| {clients} | {:.2} | {:.1} | {mean:.1} | {p95:.1} |",
            total.as_secs_f64(),
            requests as f64 / total.as_secs_f64(),
        );
        saturation_rows.push(Json::obj(vec![
            ("clients", Json::num(clients as u64)),
            ("total_s", Json::Num(total.as_secs_f64())),
            (
                "req_per_s",
                Json::Num(requests as f64 / total.as_secs_f64()),
            ),
            ("mean_ms", Json::Num(mean)),
            ("p95_ms", Json::Num(p95)),
        ]));
    }
    server.begin_shutdown();
    server.join();

    match write_bench_json(
        "load_gen",
        vec![
            ("workers", Json::num(workers as u64)),
            ("requests_per_level", Json::num(requests as u64)),
            ("persistent_store", Json::from(store_dir.is_some())),
            ("cache_latency", Json::Arr(cache_rows)),
            ("saturation", Json::Arr(saturation_rows)),
        ],
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("load_gen: cannot write bench JSON: {e}"),
    }
}
