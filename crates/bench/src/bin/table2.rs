//! Regenerates **Table 2** of the A-QED paper: A-QED results on the HLS
//! designs — AES v1–v4 (FC), the custom dataflow design (RB), optical
//! flow (RB) and GSM (FC) — reporting the violated property, BMC runtime
//! and counterexample length.
//!
//! Run with `cargo run --release -p aqed-bench --bin table2`.

use aqed_bench::{fmt_mmss, rule};
use aqed_core::AqedHarness;
use aqed_designs::{hls_cases, ExpectedProperty};
use aqed_expr::ExprPool;

fn main() {
    println!("Table 2: A-QED results for HLS designs (CEX = counterexample)\n");
    println!(
        "{:<12} {:<14} {:>5} {:>12} {:>14}",
        "source", "design", "bug", "runtime", "CEX (cycles)"
    );
    rule(62);
    for case in hls_cases() {
        let mut pool = ExprPool::new();
        let lca = (case.build_buggy)(&mut pool);
        let mut harness = AqedHarness::new(&lca);
        if let Some(fc) = &case.fc {
            harness = harness.with_fc(fc.clone());
        }
        if let Some(rb) = &case.rb {
            harness = harness.with_rb(*rb);
        }
        let report = harness.verify(&mut pool, case.bmc_bound);
        let (prop, cycles) = match &report.outcome {
            aqed_core::CheckOutcome::Bug {
                property,
                counterexample,
            } => (property.to_string(), counterexample.cycles()),
            other => panic!("{}: expected a bug, got {other:?}", case.id),
        };
        let source = match case.design {
            aqed_designs::DesignId::Aes => "AES enc.",
            aqed_designs::DesignId::Dataflow => "custom",
            aqed_designs::DesignId::Optflow => "Rosetta",
            aqed_designs::DesignId::Gsm => "CHStone",
            _ => "-",
        };
        let expected = match case.expected {
            ExpectedProperty::Fc => "FC",
            ExpectedProperty::Rb => "RB",
        };
        assert_eq!(
            prop, expected,
            "{}: property class must match the paper",
            case.id
        );
        println!(
            "{:<12} {:<14} {:>5} {:>12} {:>14}",
            source,
            case.id,
            prop,
            fmt_mmss(report.runtime),
            cycles
        );
    }
    rule(62);
    println!("\nObservation 4: all HLS bugs are caught by the *same universal*");
    println!("FC/RB properties — no design-specific assertions were written.");
    println!("(Paper runtimes 0:06-4:11 on JasperGold; absolute numbers differ,");
    println!("the property classes and the shape — AES needing the longest");
    println!("counterexamples — should match.)");
}
