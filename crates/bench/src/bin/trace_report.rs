//! Renders an aqed trace (`verify --trace-out run.jsonl`) as a human
//! digest: a per-phase summary table, a per-thread span timeline, and
//! optionally a Chrome trace-event file loadable in `chrome://tracing`
//! or Perfetto.
//!
//! ```text
//! trace_report run.jsonl                  # summary table + timeline
//! trace_report run.jsonl --check          # validate only (CI gate)
//! trace_report run.jsonl --chrome out.json
//! ```
//!
//! Exit codes: 0 on success, 1 when the trace fails validation
//! (unparseable line, unknown phase, unbalanced or interleaved spans,
//! unmatched async events), 2 on usage or I/O errors.
//!
//! Synchronous spans (`B`/`E`) pair by per-thread nesting. Async spans
//! (`b`/`e`) carry an `id` and pair by `(name, id)` regardless of
//! thread — this is how an obligation span is followed across portfolio
//! workers and retries, where the work migrates between threads.

use aqed_obs::json::{parse, Json};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::process::ExitCode;

/// One parsed trace line.
struct Event {
    /// Nanoseconds since trace start.
    ts: u64,
    tid: u64,
    /// `'B'` span begin, `'E'` span end, `'I'` instant, `'b'`/`'e'`
    /// async span begin/end (paired by `id`, not by thread).
    ph: char,
    name: String,
    /// Async span id; present exactly on `'b'`/`'e'` events.
    id: Option<u64>,
    args: Vec<(String, String)>,
}

/// A reconstructed span: a matched Begin/End pair on one thread.
struct Span {
    tid: u64,
    name: String,
    start_ns: u64,
    dur_ns: u64,
    depth: usize,
    /// Args merged from the Begin and End events (End wins on clashes).
    args: Vec<(String, String)>,
}

fn render_arg(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

fn parse_line(n: usize, line: &str) -> Result<Event, String> {
    let ev = parse(line).map_err(|e| format!("line {}: {e}", n + 1))?;
    let ts = ev
        .get("ts")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {}: missing integer 'ts'", n + 1))?;
    let tid = ev
        .get("tid")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {}: missing integer 'tid'", n + 1))?;
    let ph = match ev.get("ph").and_then(Json::as_str) {
        Some("B") => 'B',
        Some("E") => 'E',
        Some("I") => 'I',
        Some("b") => 'b',
        Some("e") => 'e',
        Some(other) => return Err(format!("line {}: unknown phase '{other}'", n + 1)),
        None => return Err(format!("line {}: missing 'ph'", n + 1)),
    };
    let id = ev.get("id").and_then(Json::as_u64);
    if matches!(ph, 'b' | 'e') && id.is_none() {
        return Err(format!(
            "line {}: async event '{ph}' missing integer 'id'",
            n + 1
        ));
    }
    let name = ev
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {}: missing 'name'", n + 1))?
        .to_owned();
    let args = match ev.get("args") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(k, v)| (k.clone(), render_arg(v)))
            .collect(),
        Some(_) => return Err(format!("line {}: 'args' is not an object", n + 1)),
        None => Vec::new(),
    };
    Ok(Event {
        ts,
        tid,
        ph,
        name,
        id,
        args,
    })
}

/// An open span awaiting its End: name, start timestamp, Begin args.
type OpenSpan = (String, u64, Vec<(String, String)>);

/// An open async span awaiting its `'e'`: begin tid, start timestamp,
/// begin args.
type OpenAsync = (u64, u64, Vec<(String, String)>);

/// Merges End-event args over Begin-event args (End wins on clashes).
fn merge_args(args: &mut Vec<(String, String)>, end: &[(String, String)]) {
    for (k, v) in end {
        if let Some(slot) = args.iter_mut().find(|(ak, _)| ak == k) {
            slot.1.clone_from(v);
        } else {
            args.push((k.clone(), v.clone()));
        }
    }
}

/// Matches Begin/End pairs per thread and async pairs by `(name, id)`
/// across threads; fails on interleaved or unbalanced spans, which
/// would mean the tracer itself is broken.
fn build_spans(events: &[Event]) -> Result<Vec<Span>, String> {
    // Per-thread stack of open spans.
    let mut open: HashMap<u64, Vec<OpenSpan>> = HashMap::new();
    // Open async spans, keyed by (name, id) — thread-independent.
    let mut open_async: HashMap<(String, u64), OpenAsync> = HashMap::new();
    let mut spans = Vec::new();
    for ev in events {
        match ev.ph {
            'B' => open
                .entry(ev.tid)
                .or_default()
                .push((ev.name.clone(), ev.ts, ev.args.clone())),
            'b' => {
                let id = ev.id.unwrap_or(0);
                if open_async
                    .insert((ev.name.clone(), id), (ev.tid, ev.ts, ev.args.clone()))
                    .is_some()
                {
                    return Err(format!(
                        "duplicate async begin '{}' id {id} at {}ns",
                        ev.name, ev.ts
                    ));
                }
            }
            'e' => {
                let id = ev.id.unwrap_or(0);
                let Some((tid, start, mut args)) = open_async.remove(&(ev.name.clone(), id)) else {
                    return Err(format!(
                        "async end '{}' id {id} at {}ns with no matching begin",
                        ev.name, ev.ts
                    ));
                };
                merge_args(&mut args, &ev.args);
                spans.push(Span {
                    tid,
                    name: ev.name.clone(),
                    start_ns: start,
                    dur_ns: ev.ts.saturating_sub(start),
                    depth: 0,
                    args,
                });
            }
            'E' => {
                let Some((name, start, mut args)) = open.get_mut(&ev.tid).and_then(Vec::pop) else {
                    return Err(format!(
                        "tid {}: End '{}' at {}ns with no open span",
                        ev.tid, ev.name, ev.ts
                    ));
                };
                if name != ev.name {
                    return Err(format!(
                        "tid {}: End '{}' closes open span '{name}' (interleaved spans)",
                        ev.tid, ev.name
                    ));
                }
                merge_args(&mut args, &ev.args);
                let depth = open.get(&ev.tid).map_or(0, Vec::len);
                spans.push(Span {
                    tid: ev.tid,
                    name,
                    start_ns: start,
                    dur_ns: ev.ts.saturating_sub(start),
                    depth,
                    args,
                });
            }
            _ => {}
        }
    }
    for (tid, stack) in &open {
        if !stack.is_empty() {
            let names: Vec<&str> = stack.iter().map(|(n, _, _)| n.as_str()).collect();
            return Err(format!("tid {tid}: unclosed spans at EOF: {names:?}"));
        }
    }
    if !open_async.is_empty() {
        let mut names: Vec<String> = open_async
            .keys()
            .map(|(n, id)| format!("{n}#{id}"))
            .collect();
        names.sort();
        return Err(format!("unclosed async spans at EOF: {names:?}"));
    }
    Ok(spans)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Per-phase rollup: count, total, and max duration per span name.
fn phase_table(spans: &[Span]) -> String {
    let mut rows: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for s in spans {
        let e = rows.entry(&s.name).or_default();
        e.0 += 1;
        e.1 += s.dur_ns;
        e.2 = e.2.max(s.dur_ns);
    }
    let mut ranked: Vec<_> = rows.into_iter().collect();
    ranked.sort_by_key(|(_, (_, total, _))| std::cmp::Reverse(*total));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>12} {:>12} {:>12}",
        "phase", "count", "total ms", "mean ms", "max ms"
    );
    for (name, (count, total, max)) in ranked {
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12.3} {:>12.3} {:>12.3}",
            name,
            count,
            ms(total),
            ms(total) / count as f64,
            ms(max)
        );
    }
    out
}

/// Per-thread indented timeline, truncated past `limit` rows per thread.
fn timeline(spans: &[Span], events: &[Event], limit: usize) -> String {
    let mut by_tid: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        by_tid.entry(s.tid).or_default().push(s);
    }
    let mut out = String::new();
    for (tid, mut rows) in by_tid {
        rows.sort_by_key(|s| s.start_ns);
        let _ = writeln!(out, "thread {tid}:");
        for s in rows.iter().take(limit) {
            let args = if s.args.is_empty() {
                String::new()
            } else {
                let rendered: Vec<String> =
                    s.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("  [{}]", rendered.join(" "))
            };
            let _ = writeln!(
                out,
                "  {:>12.3}ms {:>10.3}ms {}{}{}",
                ms(s.start_ns),
                ms(s.dur_ns),
                "  ".repeat(s.depth),
                s.name,
                args
            );
        }
        if rows.len() > limit {
            let _ = writeln!(out, "  ... ({} more spans)", rows.len() - limit);
        }
        let marks = events
            .iter()
            .filter(|e| e.ph == 'I' && e.tid == tid)
            .count();
        if marks > 0 {
            let _ = writeln!(out, "  ({marks} instant events)");
        }
    }
    out
}

/// Rewrites the trace in Chrome trace-event format (`chrome://tracing`
/// / Perfetto): same B/E/I phases, timestamps converted ns → µs.
fn chrome_json(events: &[Event]) -> String {
    let items: Vec<Json> = events
        .iter()
        .map(|ev| {
            let mut fields = vec![
                ("name", Json::from(ev.name.as_str())),
                ("ph", Json::from(ev.ph.to_string())),
                ("ts", Json::Num(ev.ts as f64 / 1e3)),
                ("pid", Json::num(1)),
                ("tid", Json::num(ev.tid)),
            ];
            if ev.ph == 'I' {
                fields.push(("s", Json::from("t")));
            }
            if let Some(id) = ev.id {
                // Chrome requires both an id and a category on async
                // ("b"/"e") events to group them into one track.
                fields.push(("id", Json::num(id)));
                fields.push(("cat", Json::from(ev.name.as_str())));
            }
            if !ev.args.is_empty() {
                fields.push((
                    "args",
                    Json::Obj(
                        ev.args
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                            .collect(),
                    ),
                ));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![("traceEvents", Json::Arr(items))]).to_string()
}

const USAGE: &str = "usage: trace_report <trace.jsonl> [--check] [--chrome FILE] [--limit N]";

fn main() -> ExitCode {
    let mut path = None;
    let mut check_only = false;
    let mut chrome_out = None;
    let mut limit = 100usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => check_only = true,
            "--chrome" => match argv.next() {
                Some(f) => chrome_out = Some(f),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--limit" => match argv.next().and_then(|n| n.parse().ok()) {
                Some(n) => limit = n,
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut events = Vec::new();
    for (n, line) in text.lines().enumerate() {
        match parse_line(n, line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("trace_report: invalid trace: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let spans = match build_spans(&events) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_report: invalid trace: {e}");
            return ExitCode::from(1);
        }
    };
    let threads: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    let instant_count = events.iter().filter(|e| e.ph == 'I').count();
    let async_count = events.iter().filter(|e| e.ph == 'b').count();

    if check_only {
        println!(
            "OK: {} events ({} spans, {} async, {} instants) on {} thread(s), all spans balanced",
            events.len(),
            spans.len(),
            async_count,
            instant_count,
            threads.len()
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "{} events ({} spans, {} async, {} instants) on {} thread(s)\n",
        events.len(),
        spans.len(),
        async_count,
        instant_count,
        threads.len()
    );
    println!("{}", phase_table(&spans));
    print!("{}", timeline(&spans, &events, limit));

    if let Some(out) = chrome_out {
        match std::fs::write(&out, chrome_json(&events) + "\n") {
            Ok(()) => println!("\nwrote Chrome trace to {out} (load in chrome://tracing)"),
            Err(e) => {
                eprintln!("trace_report: {out}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
