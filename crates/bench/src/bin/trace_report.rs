//! Renders an aqed trace (`verify --trace-out run.jsonl`) as a human
//! digest: a per-phase summary table, a per-thread span timeline, and
//! optionally a Chrome trace-event file loadable in `chrome://tracing`
//! or Perfetto.
//!
//! ```text
//! trace_report run.jsonl                  # summary table + timeline
//! trace_report run.jsonl --check          # validate only (CI gate)
//! trace_report run.jsonl --chrome out.json
//! trace_report --postmortem bundle.json   # inspect a service postmortem
//! ```
//!
//! Exit codes: 0 on success, 1 when the trace fails validation
//! (unparseable line, unknown phase, unbalanced or interleaved sync
//! spans), 2 on usage or I/O errors.
//!
//! Synchronous spans (`B`/`E`) pair by per-thread nesting. Async spans
//! (`b`/`e`) carry an `id` and pair by `(name, id)` regardless of
//! thread — this is how an obligation span is followed across portfolio
//! workers and retries, where the work migrates between threads.
//! Unbalanced async pairs are *warnings*, not errors: a job cancelled
//! or killed mid-flight legitimately leaves its async span open, and a
//! duplicate begin can appear when a retry reuses an obligation id.
//!
//! `--postmortem` reads a bundle written by `aqed-serve` (under
//! `<store-dir>/postmortem/`) instead of a raw JSONL trace: it prints
//! the bundle header (reason, job, verdict, recorder occupancy) and
//! then reports on the embedded flight-recorder events. Because the
//! recorder is a bounded ring, the oldest `B`/`b` events may have been
//! evicted — in postmortem mode *all* pairing problems downgrade to
//! warnings.

use aqed_obs::json::{parse, Json};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::process::ExitCode;

/// One parsed trace line.
struct Event {
    /// Nanoseconds since trace start.
    ts: u64,
    tid: u64,
    /// `'B'` span begin, `'E'` span end, `'I'` instant, `'b'`/`'e'`
    /// async span begin/end (paired by `id`, not by thread).
    ph: char,
    name: String,
    /// Async span id; present exactly on `'b'`/`'e'` events.
    id: Option<u64>,
    args: Vec<(String, String)>,
}

/// A reconstructed span: a matched Begin/End pair on one thread.
struct Span {
    tid: u64,
    name: String,
    start_ns: u64,
    dur_ns: u64,
    depth: usize,
    /// Args merged from the Begin and End events (End wins on clashes).
    args: Vec<(String, String)>,
}

fn render_arg(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Decodes one trace event from its JSON form; `at` names the source
/// position ("line 3" / "events\[7\]") for error messages.
fn event_from_json(at: &str, ev: &Json) -> Result<Event, String> {
    let ts = ev
        .get("ts")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{at}: missing integer 'ts'"))?;
    let tid = ev
        .get("tid")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{at}: missing integer 'tid'"))?;
    let ph = match ev.get("ph").and_then(Json::as_str) {
        Some("B") => 'B',
        Some("E") => 'E',
        Some("I") => 'I',
        Some("b") => 'b',
        Some("e") => 'e',
        Some(other) => return Err(format!("{at}: unknown phase '{other}'")),
        None => return Err(format!("{at}: missing 'ph'")),
    };
    let id = ev.get("id").and_then(Json::as_u64);
    if matches!(ph, 'b' | 'e') && id.is_none() {
        return Err(format!("{at}: async event '{ph}' missing integer 'id'"));
    }
    let name = ev
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{at}: missing 'name'"))?
        .to_owned();
    let args = match ev.get("args") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(k, v)| (k.clone(), render_arg(v)))
            .collect(),
        Some(_) => return Err(format!("{at}: 'args' is not an object")),
        None => Vec::new(),
    };
    Ok(Event {
        ts,
        tid,
        ph,
        name,
        id,
        args,
    })
}

fn parse_line(n: usize, line: &str) -> Result<Event, String> {
    let at = format!("line {}", n + 1);
    let ev = parse(line).map_err(|e| format!("{at}: {e}"))?;
    event_from_json(&at, &ev)
}

/// An open span awaiting its End: name, start timestamp, Begin args.
type OpenSpan = (String, u64, Vec<(String, String)>);

/// An open async span awaiting its `'e'`: begin tid, start timestamp,
/// begin args.
type OpenAsync = (u64, u64, Vec<(String, String)>);

/// Merges End-event args over Begin-event args (End wins on clashes).
fn merge_args(args: &mut Vec<(String, String)>, end: &[(String, String)]) {
    for (k, v) in end {
        if let Some(slot) = args.iter_mut().find(|(ak, _)| ak == k) {
            slot.1.clone_from(v);
        } else {
            args.push((k.clone(), v.clone()));
        }
    }
}

/// Matches Begin/End pairs per thread and async pairs by `(name, id)`
/// across threads.
///
/// Sync imbalance (an `E` with no open span, interleaved spans,
/// unclosed spans at EOF) fails hard — the tracer emits those pairs
/// from RAII guards on one thread, so imbalance means the tracer
/// itself is broken. Unless `lenient_sync` is set (postmortem mode),
/// where the flight recorder's ring may have evicted the older `B`s.
///
/// Async imbalance is only ever a *warning*: async spans outlive
/// threads and jobs, and cancellation or a worker death legitimately
/// truncates them.
fn build_spans(events: &[Event], lenient_sync: bool) -> Result<(Vec<Span>, Vec<String>), String> {
    // Per-thread stack of open spans.
    let mut open: HashMap<u64, Vec<OpenSpan>> = HashMap::new();
    // Open async spans, keyed by (name, id) — thread-independent.
    let mut open_async: HashMap<(String, u64), OpenAsync> = HashMap::new();
    let mut spans = Vec::new();
    let mut warnings = Vec::new();
    for ev in events {
        match ev.ph {
            'B' => open
                .entry(ev.tid)
                .or_default()
                .push((ev.name.clone(), ev.ts, ev.args.clone())),
            'b' => {
                let id = ev.id.unwrap_or(0);
                if open_async
                    .insert((ev.name.clone(), id), (ev.tid, ev.ts, ev.args.clone()))
                    .is_some()
                {
                    warnings.push(format!(
                        "duplicate async begin '{}' id {id} at {}ns (retry reusing the id?)",
                        ev.name, ev.ts
                    ));
                }
            }
            'e' => {
                let id = ev.id.unwrap_or(0);
                let Some((tid, start, mut args)) = open_async.remove(&(ev.name.clone(), id)) else {
                    warnings.push(format!(
                        "async end '{}' id {id} at {}ns with no matching begin",
                        ev.name, ev.ts
                    ));
                    continue;
                };
                merge_args(&mut args, &ev.args);
                spans.push(Span {
                    tid,
                    name: ev.name.clone(),
                    start_ns: start,
                    dur_ns: ev.ts.saturating_sub(start),
                    depth: 0,
                    args,
                });
            }
            'E' => {
                let Some((name, start, mut args)) = open.get_mut(&ev.tid).and_then(Vec::pop) else {
                    let msg = format!(
                        "tid {}: End '{}' at {}ns with no open span",
                        ev.tid, ev.name, ev.ts
                    );
                    if lenient_sync {
                        warnings.push(msg);
                        continue;
                    }
                    return Err(msg);
                };
                if name != ev.name {
                    let msg = format!(
                        "tid {}: End '{}' closes open span '{name}' (interleaved spans)",
                        ev.tid, ev.name
                    );
                    if lenient_sync {
                        warnings.push(msg);
                        // Put the mismatched span back; this End is an
                        // orphan whose Begin the ring evicted.
                        open.entry(ev.tid).or_default().push((name, start, args));
                        continue;
                    }
                    return Err(msg);
                }
                merge_args(&mut args, &ev.args);
                let depth = open.get(&ev.tid).map_or(0, Vec::len);
                spans.push(Span {
                    tid: ev.tid,
                    name,
                    start_ns: start,
                    dur_ns: ev.ts.saturating_sub(start),
                    depth,
                    args,
                });
            }
            _ => {}
        }
    }
    for (tid, stack) in &open {
        if !stack.is_empty() {
            let names: Vec<&str> = stack.iter().map(|(n, _, _)| n.as_str()).collect();
            let msg = format!("tid {tid}: unclosed spans at EOF: {names:?}");
            if lenient_sync {
                warnings.push(msg);
            } else {
                return Err(msg);
            }
        }
    }
    if !open_async.is_empty() {
        let mut names: Vec<String> = open_async
            .keys()
            .map(|(n, id)| format!("{n}#{id}"))
            .collect();
        names.sort();
        warnings.push(format!("unclosed async spans at EOF: {names:?}"));
    }
    Ok((spans, warnings))
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Per-phase rollup: count, total, and max duration per span name.
fn phase_table(spans: &[Span]) -> String {
    let mut rows: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for s in spans {
        let e = rows.entry(&s.name).or_default();
        e.0 += 1;
        e.1 += s.dur_ns;
        e.2 = e.2.max(s.dur_ns);
    }
    let mut ranked: Vec<_> = rows.into_iter().collect();
    ranked.sort_by_key(|(_, (_, total, _))| std::cmp::Reverse(*total));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>12} {:>12} {:>12}",
        "phase", "count", "total ms", "mean ms", "max ms"
    );
    for (name, (count, total, max)) in ranked {
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12.3} {:>12.3} {:>12.3}",
            name,
            count,
            ms(total),
            ms(total) / count as f64,
            ms(max)
        );
    }
    out
}

/// Per-thread indented timeline, truncated past `limit` rows per thread.
fn timeline(spans: &[Span], events: &[Event], limit: usize) -> String {
    let mut by_tid: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        by_tid.entry(s.tid).or_default().push(s);
    }
    let mut out = String::new();
    for (tid, mut rows) in by_tid {
        rows.sort_by_key(|s| s.start_ns);
        let _ = writeln!(out, "thread {tid}:");
        for s in rows.iter().take(limit) {
            let args = if s.args.is_empty() {
                String::new()
            } else {
                let rendered: Vec<String> =
                    s.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("  [{}]", rendered.join(" "))
            };
            let _ = writeln!(
                out,
                "  {:>12.3}ms {:>10.3}ms {}{}{}",
                ms(s.start_ns),
                ms(s.dur_ns),
                "  ".repeat(s.depth),
                s.name,
                args
            );
        }
        if rows.len() > limit {
            let _ = writeln!(out, "  ... ({} more spans)", rows.len() - limit);
        }
        let marks = events
            .iter()
            .filter(|e| e.ph == 'I' && e.tid == tid)
            .count();
        if marks > 0 {
            let _ = writeln!(out, "  ({marks} instant events)");
        }
    }
    out
}

/// Rewrites the trace in Chrome trace-event format (`chrome://tracing`
/// / Perfetto): same B/E/I phases, timestamps converted ns → µs.
fn chrome_json(events: &[Event]) -> String {
    let items: Vec<Json> = events
        .iter()
        .map(|ev| {
            let mut fields = vec![
                ("name", Json::from(ev.name.as_str())),
                ("ph", Json::from(ev.ph.to_string())),
                ("ts", Json::Num(ev.ts as f64 / 1e3)),
                ("pid", Json::num(1)),
                ("tid", Json::num(ev.tid)),
            ];
            if ev.ph == 'I' {
                fields.push(("s", Json::from("t")));
            }
            if let Some(id) = ev.id {
                // Chrome requires both an id and a category on async
                // ("b"/"e") events to group them into one track.
                fields.push(("id", Json::num(id)));
                fields.push(("cat", Json::from(ev.name.as_str())));
            }
            if !ev.args.is_empty() {
                fields.push((
                    "args",
                    Json::Obj(
                        ev.args
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                            .collect(),
                    ),
                ));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![("traceEvents", Json::Arr(items))]).to_string()
}

/// Prints a human header for a postmortem bundle and returns its
/// embedded flight-recorder events.
fn load_postmortem(text: &str) -> Result<Vec<Event>, String> {
    let bundle = parse(text).map_err(|e| format!("bundle is not valid JSON: {e}"))?;
    if bundle.get("kind").and_then(Json::as_str) != Some("aqed-postmortem") {
        return Err("not a postmortem bundle (missing kind=aqed-postmortem)".into());
    }
    let field = |k: &str| bundle.get(k).map(render_arg);
    println!(
        "postmortem: reason={} uptime_ms={}",
        field("reason").unwrap_or_else(|| "?".into()),
        field("uptime_ms").unwrap_or_else(|| "?".into()),
    );
    if let Some(job) = field("job") {
        println!(
            "  job {job} case={} exit_code={} verdict={}",
            field("case").unwrap_or_else(|| "?".into()),
            field("exit_code").unwrap_or_else(|| "?".into()),
            field("verdict").unwrap_or_else(|| "?".into()),
        );
    }
    if let Some(rec) = bundle.get("recorder") {
        println!(
            "  recorder: {} events, ~{} bytes (budget {}), {} evicted",
            rec.get("events").map(render_arg).unwrap_or_default(),
            rec.get("approx_bytes").map(render_arg).unwrap_or_default(),
            rec.get("max_bytes").map(render_arg).unwrap_or_default(),
            rec.get("dropped").map(render_arg).unwrap_or_default(),
        );
    }
    let Some(Json::Arr(items)) = bundle.get("events") else {
        return Err("bundle has no 'events' array".into());
    };
    let mut events = Vec::with_capacity(items.len());
    for (n, item) in items.iter().enumerate() {
        events.push(event_from_json(&format!("events[{n}]"), item)?);
    }
    Ok(events)
}

const USAGE: &str = "usage: trace_report <trace.jsonl> [--check] [--chrome FILE] [--limit N]
       trace_report --postmortem <bundle.json> [--check] [--chrome FILE] [--limit N]";

fn main() -> ExitCode {
    let mut path = None;
    let mut check_only = false;
    let mut postmortem = false;
    let mut chrome_out = None;
    let mut limit = 100usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => check_only = true,
            "--postmortem" => postmortem = true,
            "--chrome" => match argv.next() {
                Some(f) => chrome_out = Some(f),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--limit" => match argv.next().and_then(|n| n.parse().ok()) {
                Some(n) => limit = n,
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let events = if postmortem {
        match load_postmortem(&text) {
            Ok(evs) => evs,
            Err(e) => {
                eprintln!("trace_report: invalid bundle: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        let mut events = Vec::new();
        for (n, line) in text.lines().enumerate() {
            match parse_line(n, line) {
                Ok(ev) => events.push(ev),
                Err(e) => {
                    eprintln!("trace_report: invalid trace: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        events
    };
    // A postmortem's ring may have evicted the Begin halves of sync
    // spans; a live trace has no such excuse.
    let (spans, warnings) = match build_spans(&events, postmortem) {
        Ok(sw) => sw,
        Err(e) => {
            eprintln!("trace_report: invalid trace: {e}");
            return ExitCode::from(1);
        }
    };
    for w in &warnings {
        eprintln!("trace_report: warning: {w}");
    }
    let threads: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    let instant_count = events.iter().filter(|e| e.ph == 'I').count();
    let async_count = events.iter().filter(|e| e.ph == 'b').count();

    if check_only {
        println!(
            "OK: {} events ({} spans, {} async, {} instants) on {} thread(s), {}",
            events.len(),
            spans.len(),
            async_count,
            instant_count,
            threads.len(),
            if warnings.is_empty() {
                "all spans balanced".to_string()
            } else {
                format!("{} warning(s)", warnings.len())
            }
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "{} events ({} spans, {} async, {} instants) on {} thread(s)\n",
        events.len(),
        spans.len(),
        async_count,
        instant_count,
        threads.len()
    );
    println!("{}", phase_table(&spans));
    print!("{}", timeline(&spans, &events, limit));

    if let Some(out) = chrome_out {
        match std::fs::write(&out, chrome_json(&events) + "\n") {
            Ok(()) => println!("\nwrote Chrome trace to {out} (load in chrome://tracing)"),
            Err(e) => {
                eprintln!("trace_report: {out}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
