//! Developer tool: runs the conventional flow on the two A-QED-only
//! corner-case bugs and prints the verdicts — used to validate that
//! their data-dependent triggers genuinely escape the testbench.
//!
//! ```text
//! cargo run --release -p aqed-bench --bin diag_corner
//! ```

use aqed_designs::memctrl::{build, golden, MemctrlBug, MemctrlConfig};
use aqed_expr::ExprPool;
use aqed_sim::Testbench;

fn main() {
    let mut p = ExprPool::new();
    let lca = build(
        &mut p,
        MemctrlConfig::Fifo,
        Some(MemctrlBug::FifoRedundantWriteGlitch),
    );
    let outcome = Testbench::default().run(&lca, &p, golden);
    println!("glitch: {outcome}");
    let mut p2 = ExprPool::new();
    let lca2 = build(
        &mut p2,
        MemctrlConfig::DoubleBuffer,
        Some(MemctrlBug::DbWriteCollision),
    );
    let outcome2 = Testbench::default().run(&lca2, &p2, golden);
    println!("dbcoll: {outcome2}");
}
