//! CI-mode re-verification bench: cold vs warm-identical vs
//! warm-after-a-one-constant-edit, over a suite of designs sharing one
//! artifact store.
//!
//! ```text
//! cargo run --release -p aqed-bench --bin bench_reverify -- [edited-case] [bound] [jobs]
//! ```
//!
//! Models the incremental workflow the warm-start machinery targets: a
//! nightly run verifies every design in the suite (cold, populating the
//! store), a no-op re-run is answered from the design-keyed cache, then
//! one design is edited by one constant — a paper-style
//! `OffByOneConstant` injection into its next-state logic — and the
//! whole suite is re-verified warm. Designs the edit did not touch are
//! served whole from their design keys; inside the edited design,
//! obligations whose cone of influence the edit missed reuse their
//! cone-keyed verdicts and only the hit cones are re-solved. The
//! warm-after-edit verdicts are asserted identical to a cold run of the
//! edited suite, so every speedup row below is a *sound* speedup.
//!
//! The edit is chosen to maximise untouched cones within the edited
//! design (with at least one cone hit); set `AQED_EDIT_SITE=N` to
//! benchmark a specific injection site instead, and `AQED_SUITE` to a
//! comma-separated case list to change the suite. `AQED_WARM_START=0`
//! disables the cone layer in the re-verify phases, reproducing the
//! design-keys-only behaviour the store had before warm-start existed.

use aqed_bench::write_bench_json;
use aqed_bmc::BmcOptions;
use aqed_core::{
    cone_hash, verify_obligations_governed, AqedHarness, ArtifactStore, CheckOutcome,
    ParallelVerifyReport, RunContext, ScheduleOptions, JOURNAL_FILE, SNAPSHOT_FILE,
};
use aqed_designs::{all_cases, BugCase};
use aqed_expr::ExprPool;
use aqed_hls::Lca;
use aqed_obs::json::Json;
use aqed_sat::Solver;
use aqed_tsys::{coi_slice_cached, enumerate_mutants, Mutator, TransitionSystem};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_SUITE: &str = "aes_v1,gsm_acc_race,motivating_clock_enable,dataflow_fifo_sizing";

/// Per-obligation cone keys of a composed system, in bad order.
fn cone_keys(composed: &TransitionSystem, pool: &ExprPool) -> Vec<(String, u64)> {
    (0..composed.bads().len())
        .map(|i| {
            let slice = coi_slice_cached(composed, pool, &[i], None);
            (composed.bads()[i].0.clone(), cone_hash(&slice, pool))
        })
        .collect()
}

/// Comparable verdict summary (kind, label, depth/bound).
fn keys(report: &ParallelVerifyReport) -> Vec<(String, String)> {
    report
        .obligations
        .iter()
        .map(|r| {
            let key = match &r.outcome {
                CheckOutcome::Clean { bound } => format!("clean@{bound}"),
                CheckOutcome::Bug { counterexample, .. } => {
                    format!("bug@{}", counterexample.depth)
                }
                CheckOutcome::Inconclusive { bound, reason } => {
                    format!("inconclusive@{bound}:{reason}")
                }
                CheckOutcome::Errored { message } => format!("errored:{message}"),
            };
            (r.obligation.bad_name.clone(), key)
        })
        .collect()
}

fn compose(case: &BugCase, lca: &Lca, pool: &mut ExprPool) -> TransitionSystem {
    let mut harness = AqedHarness::new(lca);
    if let Some(fc) = &case.fc {
        harness = harness.with_fc(fc.clone());
    }
    if let Some(rb) = &case.rb {
        harness = harness.with_rb(*rb);
    }
    harness.build(pool).0
}

fn run(
    composed: &TransitionSystem,
    pool: &ExprPool,
    bound: usize,
    jobs: usize,
    store: Option<&Arc<ArtifactStore>>,
    warm_start: bool,
) -> (ParallelVerifyReport, Duration) {
    let options = BmcOptions::default().with_max_bound(bound);
    let sched = ScheduleOptions::default()
        .with_jobs(jobs)
        .with_warm_start(warm_start);
    let ctx = match store {
        Some(s) => RunContext::with_artifacts(Arc::clone(s)),
        None => RunContext::default(),
    };
    let t = Instant::now();
    let report = verify_obligations_governed::<Solver>(composed, pool, &options, &sched, &ctx);
    (report, t.elapsed())
}

/// One suite member, ready to verify: the composed healthy design and
/// its pool, plus the edited composition for the edited member.
struct Member {
    id: &'static str,
    pool: ExprPool,
    composed: TransitionSystem,
    edited: Option<TransitionSystem>,
    edit_description: Option<String>,
    cones_untouched: usize,
    cones_total: usize,
}

/// Aggregated counters of one sweep over the suite.
#[derive(Default)]
struct Sweep {
    time: Duration,
    calls: u64,
    conflicts: u64,
    hits: u64,
    reused: u64,
    imported: u64,
    keys: Vec<(String, String)>,
}

impl Sweep {
    fn absorb(&mut self, id: &str, report: &ParallelVerifyReport, time: Duration) {
        self.time += time;
        self.calls += report.aggregate.solver_calls;
        self.conflicts += report.aggregate.solver.conflicts;
        self.hits += report.obligations.iter().filter(|r| r.cache_hit).count() as u64;
        self.reused += report.aggregate.verdicts_reused;
        self.imported += report.aggregate.solver.learnt_imported;
        for (name, key) in keys(report) {
            self.keys.push((format!("{id}/{name}"), key));
        }
    }
}

fn row(label: &str, s: &Sweep, cold: Duration) -> Json {
    println!(
        "{label:<18} {:>9.3} {:>8.1}x {:>6} {:>10} {:>7} {:>7} {:>9}",
        s.time.as_secs_f64(),
        cold.as_secs_f64() / s.time.as_secs_f64().max(1e-9),
        s.calls,
        s.conflicts,
        s.hits,
        s.reused,
        s.imported,
    );
    Json::obj(vec![
        ("phase", Json::from(label.trim())),
        ("time_s", Json::Num(s.time.as_secs_f64())),
        (
            "speedup",
            Json::Num(cold.as_secs_f64() / s.time.as_secs_f64().max(1e-9)),
        ),
        ("solver_calls", Json::num(s.calls)),
        ("conflicts", Json::num(s.conflicts)),
        ("cache_hits", Json::num(s.hits)),
        ("verdicts_reused", Json::num(s.reused)),
        ("learnt_imported", Json::num(s.imported)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let edited_id = args
        .first()
        .map(String::as_str)
        .unwrap_or("dataflow_fifo_sizing")
        .to_string();
    let bound: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let jobs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let warm_start = std::env::var("AQED_WARM_START").map_or(true, |v| v != "0");
    let suite_env = std::env::var("AQED_SUITE").unwrap_or_else(|_| DEFAULT_SUITE.to_string());
    let mut suite_ids: Vec<String> = suite_env.split(',').map(str::to_string).collect();
    if !suite_ids.contains(&edited_id) {
        suite_ids.push(edited_id.clone());
    }

    let mut members: Vec<Member> = Vec::new();
    for id in &suite_ids {
        let case = all_cases()
            .into_iter()
            .find(|c| c.id == *id)
            .unwrap_or_else(|| panic!("unknown case '{id}'"));
        let mut pool = ExprPool::new();
        let lca = (case.build_healthy)(&mut pool);
        let composed = compose(&case, &lca, &mut pool);
        let mut member = Member {
            id: case.id,
            composed,
            edited: None,
            edit_description: None,
            cones_untouched: 0,
            cones_total: 0,
            pool,
        };
        if *id == edited_id {
            pick_edit(&case, &lca, &mut member);
        }
        members.push(member);
    }

    let edited = members
        .iter()
        .find(|m| m.id == edited_id)
        .expect("edited case is in the suite");
    println!(
        "suite: {} (healthy variants), bound {bound}, jobs {jobs}",
        suite_ids.join(" ")
    );
    println!(
        "warm-start (cone-keyed verdict + learnt-clause reuse): {}",
        if warm_start { "on" } else { "off" }
    );
    println!(
        "edit: {} in {edited_id} ({}/{} of its cones untouched)",
        edited.edit_description.as_deref().unwrap_or("?"),
        edited.cones_untouched,
        edited.cones_total,
    );
    println!(
        "{:<18} {:>9} {:>9} {:>6} {:>10} {:>7} {:>7} {:>9}",
        "phase", "time(s)", "speedup", "calls", "conflicts", "hits", "reused", "imported"
    );

    let dir = std::env::temp_dir().join(format!("aqed-bench-reverify-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(ArtifactStore::open(&dir).expect("open store"));

    // The design to verify per member in the post-edit phases.
    fn post(m: &Member) -> &TransitionSystem {
        m.edited.as_ref().unwrap_or(&m.composed)
    }

    let mut phase_rows: Vec<Json> = Vec::new();
    let mut cold = Sweep::default();
    for m in &members {
        let (r, t) = run(&m.composed, &m.pool, bound, jobs, Some(&store), true);
        cold.absorb(m.id, &r, t);
    }
    phase_rows.push(row("cold suite", &cold, cold.time));

    // Freeze a copy of the nightly store for the ablation below, so it
    // sees exactly the pre-edit facts the warm run saw.
    let dir2 =
        std::env::temp_dir().join(format!("aqed-bench-reverify-ablate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir2);
    store.flush().expect("flush store");
    std::fs::create_dir_all(&dir2).expect("create ablation dir");
    for f in [JOURNAL_FILE, SNAPSHOT_FILE] {
        if dir.join(f).exists() {
            std::fs::copy(dir.join(f), dir2.join(f)).expect("copy store file");
        }
    }

    let mut warm_id = Sweep::default();
    for m in &members {
        let (r, t) = run(&m.composed, &m.pool, bound, jobs, Some(&store), warm_start);
        warm_id.absorb(m.id, &r, t);
    }
    phase_rows.push(row("warm identical", &warm_id, cold.time));
    assert_eq!(cold.keys, warm_id.keys, "identical re-run drifted");

    let mut cold_edit = Sweep::default();
    for m in &members {
        let (r, t) = run(post(m), &m.pool, bound, jobs, None, true);
        cold_edit.absorb(m.id, &r, t);
    }
    phase_rows.push(row("cold after edit", &cold_edit, cold_edit.time));

    let mut warm_edit = Sweep::default();
    let mut edited_reused = 0u64;
    for m in &members {
        let (r, t) = run(post(m), &m.pool, bound, jobs, Some(&store), warm_start);
        if m.id == edited_id {
            edited_reused = r.aggregate.verdicts_reused;
        }
        warm_edit.absorb(m.id, &r, t);
    }
    phase_rows.push(row("warm after edit", &warm_edit, cold_edit.time));
    assert_eq!(
        cold_edit.keys, warm_edit.keys,
        "warm-after-edit verdicts diverged from cold — unsound reuse"
    );

    // Ablation: design-keyed reuse only (the cone layer off), against a
    // frozen copy of the pre-edit store. Unchanged designs are still
    // served whole; the edited design re-solves every obligation,
    // including the ones its edit never touched. (Skipped when the run
    // itself is already ablated via AQED_WARM_START=0.)
    if warm_start {
        let store2 = Arc::new(ArtifactStore::open(&dir2).expect("open ablation store"));
        let mut ablate = Sweep::default();
        for m in &members {
            let (r, t) = run(post(m), &m.pool, bound, jobs, Some(&store2), false);
            ablate.absorb(m.id, &r, t);
        }
        phase_rows.push(row("  no cone reuse", &ablate, cold_edit.time));
        assert_eq!(cold_edit.keys, ablate.keys, "ablated re-run drifted");
    }
    let _ = std::fs::remove_dir_all(&dir2);

    println!(
        "verdict identity: OK ({} obligations across {} designs)",
        warm_edit.keys.len(),
        members.len()
    );
    println!(
        "edited design reused {edited_reused} verdict(s) via cone keys; \
         suite speedup {:.1}x (cold {:.3}s -> warm {:.3}s)",
        cold_edit.time.as_secs_f64() / warm_edit.time.as_secs_f64().max(1e-9),
        cold_edit.time.as_secs_f64(),
        warm_edit.time.as_secs_f64(),
    );
    let _ = std::fs::remove_dir_all(&dir);

    match write_bench_json(
        "reverify",
        vec![
            (
                "suite",
                Json::Arr(suite_ids.iter().map(|s| Json::from(s.as_str())).collect()),
            ),
            ("edited_case", Json::from(edited_id.as_str())),
            (
                "edit",
                Json::from(edited.edit_description.clone().unwrap_or_default()),
            ),
            ("bound", Json::num(bound as u64)),
            ("jobs", Json::num(jobs as u64)),
            ("warm_start", Json::from(warm_start)),
            ("cones_untouched", Json::num(edited.cones_untouched as u64)),
            ("cones_total", Json::num(edited.cones_total as u64)),
            ("verdict_identity", Json::from(true)),
            ("obligations", Json::num(warm_edit.keys.len() as u64)),
            ("edited_verdicts_reused", Json::num(edited_reused)),
            ("phases", Json::Arr(phase_rows)),
        ],
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("bench_reverify: cannot write bench JSON: {e}"),
    }
}

/// Chooses the one-constant edit of `lca`'s next-state logic that
/// leaves the most obligation cones untouched while hitting at least
/// one, and stores the edited composition in `member`.
fn pick_edit(case: &BugCase, lca: &Lca, member: &mut Member) {
    let base_keys = cone_keys(&member.composed, &member.pool);
    let mutants = enumerate_mutants(&lca.ts, &mut member.pool, Mutator::OffByOneConstant);
    assert!(!mutants.is_empty(), "design has no constants to edit");
    let scored: Vec<(usize, usize, TransitionSystem)> = mutants
        .iter()
        .take(64)
        .enumerate()
        .map(|(i, m)| {
            let edited_lca = Lca {
                ts: m.ts.clone(),
                ..lca.clone()
            };
            let edited = compose(case, &edited_lca, &mut member.pool);
            let untouched = base_keys
                .iter()
                .zip(&cone_keys(&edited, &member.pool))
                .filter(|(a, b)| a == b)
                .count();
            (i, untouched, edited)
        })
        .collect();
    let pick = match std::env::var("AQED_EDIT_SITE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(site) => scored
            .iter()
            .find(|(i, _, _)| *i == site)
            .expect("AQED_EDIT_SITE out of range"),
        None => scored
            .iter()
            .filter(|(_, u, _)| *u < base_keys.len())
            .max_by_key(|(_, u, _)| *u)
            .expect("every candidate edit left all cones untouched"),
    };
    member.edited = Some(pick.2.clone());
    member.edit_description = Some(mutants[pick.0].description.clone());
    member.cones_untouched = pick.1;
    member.cones_total = base_keys.len();
}
