//! Regenerates **Table 1** of the A-QED paper: the memory-controller unit
//! comparison of A-QED vs the conventional verification flow — setup
//! effort, runtime [min, avg, max] and trace length [min, avg, max] —
//! plus Observation 3's trace-length ratio.
//!
//! Run with `cargo run --release -p aqed-bench --bin table1`. Honours
//! `AQED_NO_COI=1` / `AQED_NO_PREPROCESS=1` to ablate the simplification
//! pipeline stages.

use aqed_bench::{fmt_secs, rule, Summary};
use aqed_bmc::BmcOptions;
use aqed_core::AqedHarness;
use aqed_designs::memctrl_cases;
use aqed_expr::ExprPool;
use aqed_sim::Testbench;
use std::fmt::Write as _;

fn env_disabled(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn main() {
    let cases = memctrl_cases();
    let coi = !env_disabled("AQED_NO_COI");
    let preprocess = !env_disabled("AQED_NO_PREPROCESS");
    println!("Table 1: A-QED results for the memory-controller unit");
    println!(
        "({} tracked bug variants across FIFO / double-buffer / line-buffer configurations)",
        cases.len()
    );
    println!("simplification pipeline: coi={coi} preprocess={preprocess}\n");

    let mut aqed_runtimes = Vec::new();
    let mut aqed_traces = Vec::new();
    let mut conv_runtimes = Vec::new();
    let mut conv_traces = Vec::new();
    let mut conv_missed = 0usize;
    // Per-bug detection record shared with the fig5 generator.
    let mut detection_tsv = String::from("id\tconfig\tproperty\taqed\tconventional\n");

    println!(
        "{:<32} {:>6} | {:>12} {:>10} | {:>12} {:>10}",
        "bug", "prop", "A-QED time", "A-QED cex", "conv time", "conv trace"
    );
    rule(96);
    for case in &cases {
        // --- A-QED -----------------------------------------------------
        let mut pool = ExprPool::new();
        let lca = (case.build_buggy)(&mut pool);
        let mut harness = AqedHarness::new(&lca);
        if let Some(fc) = &case.fc {
            harness = harness.with_fc(fc.clone());
        }
        if let Some(rb) = &case.rb {
            harness = harness.with_rb(*rb);
        }
        harness = harness.with_bmc_options(
            BmcOptions::default()
                .with_coi(coi)
                .with_preprocess(preprocess),
        );
        let report = harness.verify(&mut pool, case.bmc_bound);
        let (prop, cex_cycles) = match &report.outcome {
            aqed_core::CheckOutcome::Bug {
                property,
                counterexample,
            } => (property.to_string(), counterexample.cycles()),
            other => panic!("{}: A-QED must find this bug, got {other:?}", case.id),
        };
        aqed_runtimes.push(report.runtime.as_secs_f64());
        aqed_traces.push(cex_cycles as f64);

        // --- Conventional flow -------------------------------------------
        let golden = case.golden.expect("memctrl cases have a golden model");
        let outcome = Testbench::default().run(&lca, &pool, golden);
        let (conv_time, conv_trace) = match outcome.trace_cycles() {
            Some(cycles) => {
                conv_runtimes.push(outcome.runtime.as_secs_f64());
                conv_traces.push(cycles as f64);
                (fmt_secs(outcome.runtime), cycles.to_string())
            }
            None => {
                conv_missed += 1;
                (fmt_secs(outcome.runtime), "MISSED".to_string())
            }
        };
        println!(
            "{:<32} {:>6} | {:>12} {:>10} | {:>12} {:>10}",
            case.id,
            prop,
            fmt_secs(report.runtime),
            cex_cycles,
            conv_time,
            conv_trace
        );
        let _ = writeln!(
            detection_tsv,
            "{}\t{}\t{}\ttrue\t{}",
            case.id,
            case.config,
            prop,
            outcome.detected()
        );
    }
    rule(96);
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write("results/detection.tsv", &detection_tsv);
        println!("\n(per-bug detection written to results/detection.tsv; fig5 reuses it)");
    }

    let aqed_rt = Summary::of(&aqed_runtimes);
    let aqed_tr = Summary::of(&aqed_traces);
    let conv_rt = Summary::of(&conv_runtimes);
    let conv_tr = Summary::of(&conv_traces);

    println!("\n                       Setup effort*      Runtime (s) [min, avg, max]   Trace (cycles) [min, avg, max]");
    println!(
        "A-QED                  {:>12}      {:>28}   {:>30}",
        "~30 LoC", aqed_rt, aqed_tr
    );
    println!(
        "Conventional           {:>12}      {:>28}   {:>30}",
        "~500 LoC", conv_rt, conv_tr
    );
    println!("\n* Setup-effort proxy: lines of code a user writes. A-QED setup is the");
    println!("  harness call (FC/RB configs); the conventional flow needs the golden");
    println!("  model, five stimulus profiles, scoreboard and watchdog (see aqed-sim).");
    println!("  The paper reports 1 person-day vs 30 person-days (30x).");

    println!(
        "\nObservation 3: counterexamples are {:.1}x shorter on average than",
        conv_tr.avg / aqed_tr.avg
    );
    println!(
        "conventional failure traces ({:.1} vs {:.1} cycles; paper: 37x, 6 vs 224).",
        aqed_tr.avg, conv_tr.avg
    );
    println!(
        "\nBug coverage: A-QED {}/{}; conventional {}/{} (missed {}).",
        cases.len(),
        cases.len(),
        cases.len() - conv_missed,
        cases.len(),
        conv_missed
    );
}
