//! Developer tool: portfolio-backend ablation on one catalogued case.
//!
//! ```text
//! cargo run --release -p aqed-bench --bin portfolio_ablation -- <case-id> [max-bound]
//! ```
//!
//! Times a full BMC check of the buggy design once with the plain CDCL
//! backend (the baseline), then with the portfolio backend at 1/2/4/8
//! workers, clause sharing on and off — the grid behind the
//! "Portfolio ablation" section of EXPERIMENTS.md. Every configuration
//! must return the same verdict; the tool exits non-zero otherwise.
//!
//! Timings are wall clock on whatever cores the host gives the process,
//! so interpret multi-worker rows accordingly (on a single-core
//! container the racers time-slice one CPU).

use aqed_bmc::{Bmc, BmcOptions, BmcResult};
use aqed_core::AqedHarness;
use aqed_designs::all_cases;
use aqed_expr::ExprPool;
use aqed_sat::portfolio::{set_default_sharing, set_default_workers};
use aqed_sat::{PortfolioBackend, SatBackend, Solver};
use std::time::Instant;

fn verdict(r: &BmcResult) -> String {
    match r {
        BmcResult::Counterexample(c) => format!("CEX@{}", c.depth),
        BmcResult::NoCounterexample { .. } => "clean".to_string(),
        BmcResult::Unknown { .. } => "unknown".to_string(),
    }
}

fn check<B: SatBackend + Default>(
    composed: &aqed_tsys::TransitionSystem,
    pool: &mut ExprPool,
    bound: usize,
) -> (f64, BmcResult, aqed_bmc::BmcStats) {
    let mut bmc = Bmc::<B>::with_backend(composed, BmcOptions::default().with_max_bound(bound));
    let t = Instant::now();
    let result = bmc.check(composed, pool);
    (t.elapsed().as_secs_f64(), result, bmc.stats())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let case_id = args.first().map(String::as_str).unwrap_or("aes_v1");
    let bound: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let case = all_cases()
        .into_iter()
        .find(|c| c.id == case_id)
        .unwrap_or_else(|| panic!("unknown case '{case_id}'"));

    let mut pool = ExprPool::new();
    let lca = (case.build_buggy)(&mut pool);
    let mut harness = AqedHarness::new(&lca);
    if let Some(fc) = &case.fc {
        harness = harness.with_fc(fc.clone());
    }
    if let Some(rb) = &case.rb {
        harness = harness.with_rb(*rb);
    }
    let (composed, _) = harness.build(&mut pool);
    println!("case {case_id} (buggy), bound {bound}: {composed}");
    println!(
        "{:<26} {:>9} {:>11} {:>9} {:>9} {:>9} {:>7}",
        "config", "time(s)", "conflicts", "exported", "imported", "wasted", "verdict"
    );

    let (base_t, base_r, base_s) = check::<Solver>(&composed, &mut pool, bound);
    println!(
        "{:<26} {:>9.2} {:>11} {:>9} {:>9} {:>9} {:>7}",
        "cdcl (baseline)",
        base_t,
        base_s.solver.conflicts,
        "-",
        "-",
        "-",
        verdict(&base_r)
    );

    let mut ok = true;
    for &sharing in &[true, false] {
        for &workers in &[1usize, 2, 4, 8] {
            set_default_workers(workers);
            set_default_sharing(sharing);
            let (t, r, s) = check::<PortfolioBackend>(&composed, &mut pool, bound);
            let label = format!(
                "portfolio w={workers} share={}",
                if sharing { "on" } else { "off" }
            );
            println!(
                "{label:<26} {t:>9.2} {:>11} {:>9} {:>9} {:>9} {:>7}",
                s.solver.conflicts,
                s.solver.shared_exported,
                s.solver.shared_imported,
                s.solver.wasted_conflicts,
                verdict(&r)
            );
            if verdict(&r) != verdict(&base_r) {
                eprintln!("VERDICT MISMATCH: {label} returned {}", verdict(&r));
                ok = false;
            }
        }
    }
    assert!(ok, "portfolio verdicts diverged from the cdcl baseline");
}
