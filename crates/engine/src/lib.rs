//! The reusable A-QED verification engine.
//!
//! One layer below the CLI and the `aqed-serve` daemon: a pure
//! `VerifyRequest -> VerifyOutcome` API that owns everything a
//! verification run needs — catalog lookup, monitor construction and
//! composition, budget assembly, backend dispatch, the governed
//! obligation scheduler, and report assembly. Frontends stay thin: the
//! CLI parses flags into a [`VerifyRequest`] and prints the outcome;
//! the server queues requests and streams progress.
//!
//! An [`Engine`] optionally carries a cross-request
//! [`aqed_core::ArtifactStore`]: a long-lived process
//! (daemon, warm CI loop) constructs one engine and every request
//! through it shares COI cones and definitive verdicts, keyed by the
//! composed system's content hash. A fresh engine per run
//! ([`Engine::new`]) behaves exactly like the pre-engine CLI wiring.

use aqed_bmc::BmcOptions;
use aqed_core::{
    verify_obligations_governed, AqedHarness, ArtifactStore, Budget, ParallelVerifyReport,
    RunContext, ScheduleOptions, StopHandle,
};
use aqed_designs::{all_cases, BugCase};
use aqed_expr::ExprPool;
use aqed_obs::json::Json;
use aqed_sat::{DimacsBackend, PortfolioBackend, Solver};
use aqed_tsys::TransitionSystem;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Which SAT backend a request drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The in-process CDCL solver.
    #[default]
    Cdcl,
    /// The CDCL solver wrapped in an iCNF (incremental DIMACS) logger.
    Dimacs,
    /// A portfolio of diversified CDCL solvers racing per solve call,
    /// with clause sharing ([`VerifyRequest::portfolio_workers`] sets
    /// the width).
    Portfolio,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Cdcl => "cdcl",
            BackendKind::Dimacs => "dimacs",
            BackendKind::Portfolio => "portfolio",
        })
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cdcl" => Ok(BackendKind::Cdcl),
            "dimacs" => Ok(BackendKind::Dimacs),
            "portfolio" => Ok(BackendKind::Portfolio),
            other => Err(format!(
                "unknown backend '{other}' (expected 'cdcl', 'dimacs' or 'portfolio')"
            )),
        }
    }
}

/// Everything that defines one verification run: the design (a catalog
/// case id plus variant), the A-QED/BMC configuration, the budgets and
/// the backend. The JSON codec ([`VerifyRequest::to_json`] /
/// [`VerifyRequest::from_json`]) is the `aqed-serve` wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyRequest {
    /// Catalog case id (see `aqed list`).
    pub case: String,
    /// Verify the healthy variant instead of the buggy one.
    pub healthy: bool,
    /// Override the catalog's BMC bound.
    pub bound: Option<usize>,
    /// Worker threads for the obligation scheduler.
    pub jobs: usize,
    /// SAT backend to drive.
    pub backend: BackendKind,
    /// Race width for the portfolio backend (ignored otherwise).
    pub portfolio_workers: usize,
    /// Whether portfolio workers exchange short learnt clauses.
    pub clause_sharing: bool,
    /// Wall-clock deadline for the whole run.
    pub timeout: Option<Duration>,
    /// Conflict budget per solver call (retried with doubled budget up
    /// to the scheduler's attempt cap).
    pub conflict_budget: Option<u64>,
    /// Cancel remaining obligations once one finds a bug.
    pub fail_fast: bool,
    /// Run SatELite-style CNF preprocessing before each solver call.
    pub preprocess: bool,
    /// Slice each obligation to the cone of influence of its bad.
    pub coi: bool,
    /// Warm-start incremental re-verification (default true; inert
    /// without an artifact store or with `coi` off): reuse cone-keyed
    /// verdicts across design edits, skip re-proven frame prefixes, and
    /// inject stored learnt-clause packs. Never changes a verdict.
    pub warm_start: bool,
}

impl VerifyRequest {
    /// A request for `case` with the same defaults as the CLI flags.
    #[must_use]
    pub fn new(case: impl Into<String>) -> Self {
        VerifyRequest {
            case: case.into(),
            healthy: false,
            bound: None,
            jobs: 1,
            backend: BackendKind::default(),
            portfolio_workers: 4,
            clause_sharing: true,
            timeout: None,
            conflict_budget: None,
            fail_fast: false,
            preprocess: true,
            coi: true,
            warm_start: true,
        }
    }

    /// Serializes the request as a JSON object (the server wire format).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<u64>| v.map_or(Json::Null, Json::num);
        Json::obj(vec![
            ("case", Json::Str(self.case.clone())),
            ("healthy", Json::Bool(self.healthy)),
            ("bound", opt_num(self.bound.map(|b| b as u64))),
            ("jobs", Json::num(self.jobs as u64)),
            ("backend", Json::Str(self.backend.to_string())),
            (
                "portfolio_workers",
                Json::num(self.portfolio_workers as u64),
            ),
            ("clause_sharing", Json::Bool(self.clause_sharing)),
            (
                "timeout_secs",
                self.timeout
                    .map_or(Json::Null, |d| Json::Num(d.as_secs_f64())),
            ),
            ("conflict_budget", opt_num(self.conflict_budget)),
            ("fail_fast", Json::Bool(self.fail_fast)),
            ("preprocess", Json::Bool(self.preprocess)),
            ("coi", Json::Bool(self.coi)),
            ("warm_start", Json::Bool(self.warm_start)),
        ])
    }

    /// Parses a request from its JSON object form. Absent fields take
    /// the [`VerifyRequest::new`] defaults; only `case` is required.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let case = v
            .get("case")
            .and_then(Json::as_str)
            .ok_or_else(|| "request needs a string 'case' field".to_string())?;
        let mut req = VerifyRequest::new(case);
        if let Some(b) = v.get("healthy") {
            req.healthy = b.as_bool().ok_or("'healthy' must be a bool")?;
        }
        match v.get("bound") {
            None | Some(Json::Null) => {}
            Some(b) => {
                req.bound = Some(b.as_u64().ok_or("'bound' must be a number")? as usize);
            }
        }
        if let Some(j) = v.get("jobs") {
            req.jobs = (j.as_u64().ok_or("'jobs' must be a number")? as usize).max(1);
        }
        if let Some(b) = v.get("backend") {
            req.backend = b.as_str().ok_or("'backend' must be a string")?.parse()?;
        }
        if let Some(w) = v.get("portfolio_workers") {
            req.portfolio_workers =
                (w.as_u64().ok_or("'portfolio_workers' must be a number")? as usize).max(1);
        }
        if let Some(c) = v.get("clause_sharing") {
            req.clause_sharing = c.as_bool().ok_or("'clause_sharing' must be a bool")?;
        }
        match v.get("timeout_secs") {
            None | Some(Json::Null) => {}
            Some(t) => {
                let secs = t.as_f64().ok_or("'timeout_secs' must be a number")?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err("'timeout_secs' must be positive".into());
                }
                req.timeout = Some(Duration::from_secs_f64(secs));
            }
        }
        match v.get("conflict_budget") {
            None | Some(Json::Null) => {}
            Some(c) => {
                req.conflict_budget = Some(c.as_u64().ok_or("'conflict_budget' must be a number")?);
            }
        }
        if let Some(f) = v.get("fail_fast") {
            req.fail_fast = f.as_bool().ok_or("'fail_fast' must be a bool")?;
        }
        if let Some(p) = v.get("preprocess") {
            req.preprocess = p.as_bool().ok_or("'preprocess' must be a bool")?;
        }
        if let Some(c) = v.get("coi") {
            req.coi = c.as_bool().ok_or("'coi' must be a bool")?;
        }
        if let Some(w) = v.get("warm_start") {
            req.warm_start = w.as_bool().ok_or("'warm_start' must be a bool")?;
        }
        Ok(req)
    }
}

/// Why the engine could not run a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The case id is not in the catalog.
    UnknownCase(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownCase(id) => {
                write!(f, "unknown case '{id}'; try `aqed list`")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The result of one engine run: the merged report plus the composed
/// system and pool it was produced against, so frontends can render
/// witnesses (VCD, BTOR2) without rebuilding the design.
#[derive(Debug)]
pub struct VerifyOutcome {
    /// The scheduler's merged report.
    pub report: ParallelVerifyReport,
    /// The composed design+monitor system the run checked.
    pub composed: TransitionSystem,
    /// The expression pool `composed` (and any counterexample trace)
    /// lives in.
    pub pool: ExprPool,
}

impl VerifyOutcome {
    /// The CLI exit taxonomy for this outcome: 0 clean, 1 bug,
    /// 2 inconclusive / errored / degraded.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        self.report.exit_code()
    }
}

/// The verification engine. Stateless per request except for the
/// optional shared [`ArtifactStore`]; an `Engine` is `Send + Sync` and
/// may serve concurrent requests.
#[derive(Debug, Default)]
pub struct Engine {
    artifacts: Option<Arc<ArtifactStore>>,
}

impl Engine {
    /// An engine without a cross-request cache: every run is cold.
    #[must_use]
    pub fn new() -> Self {
        Engine::default()
    }

    /// An engine whose runs share `store` — cones and definitive
    /// verdicts persist across requests on the same design.
    #[must_use]
    pub fn with_artifacts(store: Arc<ArtifactStore>) -> Self {
        Engine {
            artifacts: Some(store),
        }
    }

    /// An engine backed by a durable [`ArtifactStore`] rooted at `dir`:
    /// verdicts and cones recovered from previous processes warm this
    /// one, and each run's new facts are flushed to disk when it ends.
    ///
    /// # Errors
    ///
    /// Propagates real I/O failures from opening the store directory;
    /// on-disk corruption is tolerated (recovery truncates), not an
    /// error.
    pub fn with_persistent_store(dir: impl AsRef<std::path::Path>) -> std::io::Result<Engine> {
        Ok(Engine::with_artifacts(Arc::new(ArtifactStore::open(dir)?)))
    }

    /// The shared artifact store, if this engine carries one.
    #[must_use]
    pub fn artifacts(&self) -> Option<&Arc<ArtifactStore>> {
        self.artifacts.as_ref()
    }

    /// Runs one request to completion.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownCase`] when the case id is not catalogued.
    pub fn verify(&self, req: &VerifyRequest) -> Result<VerifyOutcome, EngineError> {
        self.verify_inner(req, None, None)
    }

    /// [`Engine::verify`] under an external stop handle: tripping
    /// `stop` (Ctrl-C, a client cancel) drains the run through the
    /// normal `Inconclusive {reason: Cancelled}` taxonomy.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownCase`] when the case id is not catalogued.
    pub fn verify_cancellable(
        &self,
        req: &VerifyRequest,
        stop: &StopHandle,
    ) -> Result<VerifyOutcome, EngineError> {
        self.verify_inner(req, Some(stop), None)
    }

    /// [`Engine::verify`] with optional cancellation and a shared
    /// [`JobMeter`](aqed_obs::JobMeter): the scheduler folds each
    /// obligation's terminal stats into the meter as it finishes, so a
    /// concurrent reader (heartbeat thread, `stats` scrape) can
    /// attribute the job's resource use while it runs.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownCase`] when the case id is not catalogued.
    pub fn verify_metered(
        &self,
        req: &VerifyRequest,
        stop: Option<&StopHandle>,
        meter: Option<Arc<aqed_obs::JobMeter>>,
    ) -> Result<VerifyOutcome, EngineError> {
        self.verify_inner(req, stop, meter)
    }

    fn verify_inner(
        &self,
        req: &VerifyRequest,
        stop: Option<&StopHandle>,
        meter: Option<Arc<aqed_obs::JobMeter>>,
    ) -> Result<VerifyOutcome, EngineError> {
        let case = find_case(&req.case)?;
        let mut pool = ExprPool::new();
        let lca = if req.healthy {
            (case.build_healthy)(&mut pool)
        } else {
            (case.build_buggy)(&mut pool)
        };
        let mut harness = AqedHarness::new(&lca);
        if let Some(fc) = &case.fc {
            harness = harness.with_fc(fc.clone());
        }
        if let Some(rb) = &case.rb {
            harness = harness.with_rb(*rb);
        }
        // Build once so the counterexample and any exported model share
        // one variable space, then run the obligation scheduler against
        // the composed system.
        let (composed, _) = harness.build(&mut pool);
        let bound = req.bound.unwrap_or(case.bmc_bound);
        let mut budget = Budget::unlimited();
        if let Some(t) = req.timeout {
            budget = budget.with_timeout(t);
        }
        let mut options = BmcOptions::default()
            .with_max_bound(bound)
            .with_budget(budget)
            .with_preprocess(req.preprocess)
            .with_coi(req.coi);
        options.conflict_budget = req.conflict_budget;
        let sched = ScheduleOptions::default()
            .with_jobs(req.jobs)
            .with_fail_fast(req.fail_fast)
            .with_warm_start(req.warm_start);
        let ctx = RunContext {
            artifacts: self.artifacts.clone(),
            stop: stop.cloned(),
            meter,
        };
        let report = match req.backend {
            BackendKind::Cdcl => {
                verify_obligations_governed::<Solver>(&composed, &pool, &options, &sched, &ctx)
            }
            BackendKind::Dimacs => verify_obligations_governed::<DimacsBackend>(
                &composed, &pool, &options, &sched, &ctx,
            ),
            BackendKind::Portfolio => {
                // The scheduler instantiates backends via `B::default()`,
                // so the width and sharing switch travel through process
                // globals.
                aqed_sat::portfolio::set_default_workers(req.portfolio_workers);
                aqed_sat::portfolio::set_default_sharing(req.clause_sharing);
                verify_obligations_governed::<PortfolioBackend>(
                    &composed, &pool, &options, &sched, &ctx,
                )
            }
        };
        // Make this run's freshly donated facts durable before the
        // verdict is reported: a persistent store then loses at most
        // the window of a run killed mid-flight. Flush failure must not
        // invalidate a computed verdict — it only costs warmth.
        if let Some(store) = &self.artifacts {
            let _ = store.flush();
        }
        Ok(VerifyOutcome {
            report,
            composed,
            pool,
        })
    }
}

/// Looks a case up in the catalog.
///
/// # Errors
///
/// [`EngineError::UnknownCase`] when the id is not catalogued.
pub fn find_case(id: &str) -> Result<BugCase, EngineError> {
    all_cases()
        .into_iter()
        .find(|c| c.id == id)
        .ok_or_else(|| EngineError::UnknownCase(id.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_core::CheckOutcome;

    #[test]
    fn backend_kind_round_trips() {
        for kind in [
            BackendKind::Cdcl,
            BackendKind::Dimacs,
            BackendKind::Portfolio,
        ] {
            assert_eq!(kind.to_string().parse::<BackendKind>(), Ok(kind));
        }
        assert!("z4".parse::<BackendKind>().is_err());
    }

    #[test]
    fn request_json_round_trips() {
        let mut req = VerifyRequest::new("aes_v1");
        req.healthy = true;
        req.bound = Some(12);
        req.jobs = 4;
        req.backend = BackendKind::Portfolio;
        req.portfolio_workers = 2;
        req.clause_sharing = false;
        req.timeout = Some(Duration::from_secs(30));
        req.conflict_budget = Some(5000);
        req.fail_fast = true;
        req.preprocess = false;
        req.coi = false;
        req.warm_start = false;
        let back = VerifyRequest::from_json(&req.to_json()).expect("round trip");
        assert_eq!(back, req);
        // Defaults: a minimal object is a default request.
        let minimal = aqed_obs::json::parse(r#"{"case":"aes_v1"}"#).unwrap();
        assert_eq!(
            VerifyRequest::from_json(&minimal).expect("minimal"),
            VerifyRequest::new("aes_v1")
        );
        // Missing case: rejected.
        let empty = aqed_obs::json::parse("{}").unwrap();
        assert!(VerifyRequest::from_json(&empty).is_err());
        // Ill-typed field: rejected.
        let bad = aqed_obs::json::parse(r#"{"case":"x","jobs":"many"}"#).unwrap();
        assert!(VerifyRequest::from_json(&bad).is_err());
    }

    #[test]
    fn unknown_case_is_a_clean_error() {
        let engine = Engine::new();
        let err = engine.verify(&VerifyRequest::new("nope")).unwrap_err();
        assert_eq!(err, EngineError::UnknownCase("nope".into()));
        assert!(err.to_string().contains("unknown case"));
    }

    #[test]
    fn engine_runs_a_small_case_end_to_end() {
        let engine = Engine::new();
        let mut req = VerifyRequest::new("dataflow_fifo_sizing");
        req.bound = Some(6);
        req.healthy = true;
        let outcome = engine.verify(&req).expect("catalogued case");
        assert!(
            matches!(outcome.report.outcome, CheckOutcome::Clean { bound: 6 }),
            "{}",
            outcome.report
        );
        assert_eq!(outcome.exit_code(), 0);
        assert_eq!(outcome.report.cache_hits, 0);
        // The composed system is returned for witness rendering.
        assert!(!outcome.composed.bads().is_empty());
    }

    #[test]
    fn pre_cancelled_run_exits_through_the_cancelled_taxonomy() {
        let engine = Engine::new();
        let stop = StopHandle::new();
        stop.request_stop();
        let mut req = VerifyRequest::new("dataflow_fifo_sizing");
        req.bound = Some(6);
        let outcome = engine
            .verify_cancellable(&req, &stop)
            .expect("catalogued case");
        assert!(
            matches!(
                outcome.report.outcome,
                CheckOutcome::Inconclusive {
                    reason: aqed_core::StopReason::Cancelled,
                    ..
                }
            ),
            "{}",
            outcome.report
        );
        assert_eq!(outcome.exit_code(), 2);
    }

    #[test]
    fn warm_engine_answers_repeat_requests_without_solving() {
        let engine = Engine::with_artifacts(Arc::new(ArtifactStore::new()));
        let mut req = VerifyRequest::new("dataflow_fifo_sizing");
        req.bound = Some(6);
        let cold = engine.verify(&req).expect("cold run");
        assert_eq!(cold.report.cache_hits, 0);
        let warm = engine.verify(&req).expect("warm run");
        // Every obligation is served from the store: no solver calls,
        // no preprocessing, identical verdict.
        assert_eq!(warm.report.cache_hits, warm.report.obligations.len() as u64);
        assert_eq!(warm.report.aggregate.solver_calls, 0);
        assert_eq!(warm.report.aggregate.solver.preprocess_micros, 0);
        assert_eq!(cold.exit_code(), warm.exit_code());
        assert_eq!(
            format!("{:?}", cold.report.outcome),
            format!("{:?}", warm.report.outcome)
        );
    }
}
