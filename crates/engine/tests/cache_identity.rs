//! Soundness of the cross-request artifact cache: caching must be
//! *invisible*. Across the whole design catalog, verdicts produced by a
//! warm shared [`ArtifactStore`] — including concurrent requests on the
//! same design — must be identical to cache-off runs, per obligation.

use aqed_core::{ArtifactStore, CheckOutcome};
use aqed_designs::all_cases;
use aqed_engine::{Engine, VerifyOutcome, VerifyRequest};
use std::sync::Arc;

/// Everything that must match between runs: verdict kind, violated
/// property or reason, counterexample depth, explored bound.
type VerdictKey = (u8, Option<String>, Option<usize>, Option<usize>);

fn verdict_key(outcome: &CheckOutcome) -> VerdictKey {
    match outcome {
        CheckOutcome::Clean { bound } => (0, None, None, Some(*bound)),
        CheckOutcome::Bug { counterexample, .. } => (
            1,
            Some(counterexample.bad_name.clone()),
            Some(counterexample.depth),
            None,
        ),
        CheckOutcome::Inconclusive { bound, reason } => {
            (2, Some(reason.to_string()), None, Some(*bound))
        }
        CheckOutcome::Errored { message } => (3, Some(message.clone()), None, None),
    }
}

/// Per-obligation verdict keys, in obligation order.
fn obligation_keys(outcome: &VerifyOutcome) -> Vec<(String, VerdictKey)> {
    outcome
        .report
        .obligations
        .iter()
        .map(|r| (r.obligation.bad_name.clone(), verdict_key(&r.outcome)))
        .collect()
}

#[test]
fn catalog_verdicts_identical_with_and_without_the_cache() {
    for case in all_cases() {
        // Cap the bound: identity is about the cache, not depth, and
        // the full catalog runs three times in this test.
        let mut req = VerifyRequest::new(case.id);
        req.bound = Some(case.bmc_bound.min(10));
        req.jobs = 2;
        let baseline = Engine::new().verify(&req).expect("cache-off run");
        let warm_engine = Engine::with_artifacts(Arc::new(ArtifactStore::new()));
        let cold = warm_engine.verify(&req).expect("store-cold run");
        let warm = warm_engine.verify(&req).expect("store-warm run");
        let expected = obligation_keys(&baseline);
        assert_eq!(
            expected,
            obligation_keys(&cold),
            "case {}: cold store run drifted from cache-off",
            case.id
        );
        assert_eq!(
            expected,
            obligation_keys(&warm),
            "case {}: warm store run drifted from cache-off",
            case.id
        );
        // The warm run must actually have been served from the store.
        assert_eq!(
            warm.report.cache_hits,
            warm.report.obligations.len() as u64,
            "case {}: warm run should hit on every obligation",
            case.id
        );
        assert_eq!(
            warm.report.aggregate.solver_calls, 0,
            "case {}: warm run should not touch the solver",
            case.id
        );
        assert_eq!(baseline.exit_code(), warm.exit_code(), "case {}", case.id);
    }
}

#[test]
fn concurrent_requests_on_one_design_match_the_cache_off_verdict() {
    let mut req = VerifyRequest::new("motivating_clock_enable");
    req.bound = Some(8);
    req.jobs = 2;
    let baseline = Engine::new().verify(&req).expect("cache-off run");
    let expected = obligation_keys(&baseline);
    let engine = Engine::with_artifacts(Arc::new(ArtifactStore::new()));
    // Four racing requests share one cold store: whichever interleaving
    // of seeding, absorption and verdict recording happens, nobody may
    // observe a different verdict.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (engine, req) = (&engine, &req);
                s.spawn(move || engine.verify(req).expect("concurrent run"))
            })
            .collect();
        for h in handles {
            let outcome = h.join().expect("worker");
            assert_eq!(expected, obligation_keys(&outcome));
            assert_eq!(baseline.exit_code(), outcome.exit_code());
        }
    });
    // And the store is warm afterwards.
    let warm = engine.verify(&req).expect("warm run");
    assert_eq!(expected, obligation_keys(&warm));
    assert_eq!(warm.report.cache_hits, warm.report.obligations.len() as u64);
}
