//! The paper's motivating example (Fig. 2): four input buffers feed an
//! execution unit round-robin, under a global `clock_enable`.
//!
//! In the buggy variant, `clock_enable` is disconnected from Buffer 4:
//! when the design is paused exactly on Buffer 4's turn to shift out —
//! with Buffer 4 full and the execution unit idle — Buffer 4 marks its
//! entry as consumed while the (frozen) execution unit never captures it.
//! The input is silently swallowed and every later output is misaligned,
//! which A-QED's Functional Consistency check detects with a short trace.
//!
//! The execution unit computes `f(x) = x + 7`, fully pipelined (one
//! operand per cycle).

use aqed_expr::{ExprPool, ExprRef};
use aqed_hls::Lca;
use aqed_tsys::TransitionSystem;

/// Bug variants of the motivating design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotivatingBug {
    /// `clock_enable` is disconnected from Buffer 4's valid flag
    /// (the paper's Fig. 2 defect).
    ClockEnableDisconnected,
}

/// The function the execution unit implements, as plain Rust — the golden
/// model for the conventional flow. Values are 4-bit (the paper's
/// I1..I16 are abstract tokens; a narrow datapath keeps BMC lean while
/// preserving every control path).
#[must_use]
pub fn golden(_action: u64, data: u64) -> u64 {
    (data + 7) & 0xF
}

const NUM_BUFFERS: usize = 4;
const OFIFO_DEPTH: usize = 4;

/// Builds the four-buffer design; `bug` selects the buggy variant.
///
/// Interface: `action` (1 = submit), `data` (4-bit operand), `rdh`,
/// `clock_enable`; output is `f(data)` in submission order.
#[must_use]
pub fn build(pool: &mut ExprPool, bug: Option<MotivatingBug>) -> Lca {
    let name = match bug {
        None => "motivating",
        Some(MotivatingBug::ClockEnableDisconnected) => "motivating_ce_bug",
    };
    let mut ts = TransitionSystem::new(name);
    let action = ts.add_input(pool, "action", 2);
    let data = ts.add_input(pool, "data", 4);
    let rdh = ts.add_input(pool, "rdh", 1);
    let ce = ts.add_input(pool, "clock_enable", 1);

    let action_e = pool.var_expr(action);
    let data_e = pool.var_expr(data);
    let rdh_e = pool.var_expr(rdh);
    let ce_e = pool.var_expr(ce);

    // --- State ---------------------------------------------------------
    let buf_data: Vec<_> = (0..NUM_BUFFERS)
        .map(|i| ts.add_register(pool, format!("buf_d{i}"), 4, 0))
        .collect();
    let buf_valid: Vec<_> = (0..NUM_BUFFERS)
        .map(|i| ts.add_register(pool, format!("buf_v{i}"), 1, 0))
        .collect();
    let wr_turn = ts.add_register(pool, "wr_turn", 2, 0);
    let rd_turn = ts.add_register(pool, "rd_turn", 2, 0);
    let exec_v = ts.add_register(pool, "exec_v", 1, 0);
    let exec_val = ts.add_register(pool, "exec_val", 4, 0);
    let ofifo: Vec<_> = (0..OFIFO_DEPTH)
        .map(|i| ts.add_register(pool, format!("ofifo_d{i}"), 4, 0))
        .collect();
    let ofifo_cnt = ts.add_register(pool, "ofifo_cnt", 4, 0);

    let wr_turn_e = pool.var_expr(wr_turn);
    let rd_turn_e = pool.var_expr(rd_turn);
    let exec_v_e = pool.var_expr(exec_v);
    let exec_val_e = pool.var_expr(exec_val);
    let ofifo_cnt_e = pool.var_expr(ofifo_cnt);
    let buf_valid_e: Vec<ExprRef> = buf_valid.iter().map(|&v| pool.var_expr(v)).collect();
    let buf_data_e: Vec<ExprRef> = buf_data.iter().map(|&v| pool.var_expr(v)).collect();

    // --- Input side ------------------------------------------------------
    // Credit: everything in flight eventually needs an output FIFO slot.
    let cw = 4;
    let mut inflight = ofifo_cnt_e;
    for &v in &buf_valid_e {
        let z = pool.zext(v, cw);
        inflight = pool.add(inflight, z);
    }
    let exec_z = pool.zext(exec_v_e, cw);
    inflight = pool.add(inflight, exec_z);
    let depth_l = pool.lit(cw, OFIFO_DEPTH as u64);
    let credit = pool.ult(inflight, depth_l);

    let wr_slot_free = {
        let cur = pool.select(wr_turn_e, &buf_valid_e, buf_valid_e[0]);
        pool.not(cur)
    };
    let rdin = pool.and(wr_slot_free, credit);
    let zero_a = pool.lit(2, 0);
    let act_valid = pool.ne(action_e, zero_a);
    let cap_raw = pool.and(rdin, act_valid);
    let captured = pool.and(cap_raw, ce_e);

    // --- Shift-out to the (fully pipelined) execution unit ---------------
    let shift_raw = pool.select(rd_turn_e, &buf_valid_e, buf_valid_e[0]);
    let shift = pool.and(shift_raw, ce_e);

    let rd_data = pool.select(rd_turn_e, &buf_data_e, buf_data_e[0]);
    let seven = pool.lit(4, 7);
    let f_result = pool.add(rd_data, seven);

    // --- Buffer next-state -----------------------------------------------
    for i in 0..NUM_BUFFERS {
        let idx = pool.lit(2, i as u64);
        let is_wr = pool.eq(wr_turn_e, idx);
        let is_rd = pool.eq(rd_turn_e, idx);
        let do_cap = pool.and(captured, is_wr);
        // The consume signal for this buffer's valid flag. Buffer 4
        // (index 3) with the bug uses the un-gated shift signal: it
        // "shifts out" even while the rest of the design is frozen.
        let consume_sig =
            if i == NUM_BUFFERS - 1 && bug == Some(MotivatingBug::ClockEnableDisconnected) {
                shift_raw
            } else {
                shift
            };
        let do_consume = pool.and(consume_sig, is_rd);
        let cur_v = buf_valid_e[i];
        let cur_d = buf_data_e[i];
        // valid: set on capture, cleared on consume.
        let not_consume = pool.not(do_consume);
        let kept = pool.and(cur_v, not_consume);
        let next_v = pool.or(kept, do_cap);
        ts.set_next(buf_valid[i], next_v);
        let next_d = pool.ite(do_cap, data_e, cur_d);
        ts.set_next(buf_data[i], next_d);
    }

    // Turn counters advance with their events (2-bit wrap = mod 4).
    let one2 = pool.lit(2, 1);
    let wr_inc = pool.add(wr_turn_e, one2);
    let next_wr = pool.ite(captured, wr_inc, wr_turn_e);
    ts.set_next(wr_turn, next_wr);
    let rd_inc = pool.add(rd_turn_e, one2);
    let next_rd = pool.ite(shift, rd_inc, rd_turn_e);
    ts.set_next(rd_turn, next_rd);

    // --- Execution unit (single pipeline stage) ---------------------------
    let next_exec_v = pool.ite(ce_e, shift, exec_v_e);
    ts.set_next(exec_v, next_exec_v);
    let shifted_val = pool.ite(shift, f_result, exec_val_e);
    let next_val = pool.ite(ce_e, shifted_val, exec_val_e);
    ts.set_next(exec_val, next_val);

    // --- Output FIFO ---------------------------------------------------------
    let push = pool.and(exec_v_e, ce_e);
    let zero4 = pool.lit(cw, 0);
    let out_valid = pool.ne(ofifo_cnt_e, zero4);
    let pop = {
        let t = pool.and(out_valid, rdh_e);
        pool.and(t, ce_e)
    };
    let one4 = pool.lit(cw, 1);
    let cnt_after_pop = {
        let dec = pool.sub(ofifo_cnt_e, one4);
        pool.ite(pop, dec, ofifo_cnt_e)
    };
    let cnt_next = {
        let inc = pool.add(cnt_after_pop, one4);
        pool.ite(push, inc, cnt_after_pop)
    };
    ts.set_next(ofifo_cnt, cnt_next);
    for i in 0..OFIFO_DEPTH {
        let cur = pool.var_expr(ofifo[i]);
        let from_above = if i + 1 < OFIFO_DEPTH {
            pool.var_expr(ofifo[i + 1])
        } else {
            cur
        };
        let shifted = pool.ite(pop, from_above, cur);
        let idx = pool.lit(cw, i as u64);
        let at_tail = pool.eq(cnt_after_pop, idx);
        let wr = pool.and(push, at_tail);
        let written = pool.ite(wr, exec_val_e, shifted);
        ts.set_next(ofifo[i], written);
    }

    let head = pool.var_expr(ofifo[0]);
    let zero4b = pool.lit(4, 0);
    let out = pool.ite(out_valid, head, zero4b);
    let delivered = pop;

    ts.add_output("out", out);
    ts.add_output("out_valid", out_valid);
    ts.add_output("rdin", rdin);
    ts.add_output("captured", captured);
    ts.add_output("delivered", delivered);

    Lca {
        ts,
        action,
        data,
        rdh,
        clock_enable: Some(ce),
        out,
        out_valid,
        rdin,
        captured,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_bitvec::Bv;
    use aqed_core::{AqedHarness, CheckOutcome, FcConfig, PropertyKind};
    use aqed_tsys::Simulator;

    fn step(
        lca: &Lca,
        pool: &ExprPool,
        sim: &mut Simulator,
        action: u64,
        data: u64,
        rdh: bool,
        ce: bool,
    ) -> Option<u64> {
        let inputs = vec![
            (lca.action, Bv::new(2, action)),
            (lca.data, Bv::new(4, data)),
            (lca.rdh, Bv::from_bool(rdh)),
            (lca.clock_enable.expect("has ce"), Bv::from_bool(ce)),
        ];
        let rec = sim.step_with(&lca.ts, pool, &inputs);
        let delivered = rec.output("out_valid").expect("ov").is_true() && rdh && ce;
        delivered.then(|| rec.output("out").expect("out").to_u64())
    }

    #[test]
    fn healthy_design_streams_in_order() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        lca.ts.validate(&p).expect("valid");
        let mut sim = Simulator::new(&lca.ts, &p);
        let mut outs = Vec::new();
        let inputs = [3u64, 11, 12, 4, 9, 7];
        let mut sent = 0;
        for cycle in 0..60 {
            let send = sent < inputs.len();
            let d = if send { inputs[sent] } else { 0 };
            // Peek rdin to know whether this submit lands.
            let iv = vec![
                (lca.action, Bv::new(2, u64::from(send))),
                (lca.data, Bv::new(4, d)),
                (lca.rdh, Bv::from_bool(true)),
                (lca.clock_enable.unwrap(), Bv::from_bool(true)),
            ];
            let accepted = send && sim.peek(&p, lca.rdin, &iv).is_true();
            if let Some(o) = step(&lca, &p, &mut sim, u64::from(send), d, true, true) {
                outs.push(o);
            }
            if accepted {
                sent += 1;
            }
            let _ = cycle;
        }
        let expect: Vec<u64> = inputs.iter().map(|&d| golden(1, d)).collect();
        assert_eq!(outs, expect);
    }

    #[test]
    fn healthy_design_survives_clock_gating() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        let mut sim = Simulator::new(&lca.ts, &p);
        let mut outs = Vec::new();
        // Submit 5 inputs while randomly toggling ce (deterministic pattern).
        let inputs = [1u64, 2, 3, 4, 5];
        let mut sent = 0;
        for cycle in 0..120 {
            let ce = cycle % 3 != 1; // gate every third cycle
            let send = sent < inputs.len();
            let d = if send { inputs[sent] } else { 0 };
            let iv = vec![
                (lca.action, Bv::new(2, u64::from(send))),
                (lca.data, Bv::new(4, d)),
                (lca.rdh, Bv::from_bool(true)),
                (lca.clock_enable.unwrap(), Bv::from_bool(ce)),
            ];
            let accepted = send && ce && sim.peek(&p, lca.captured, &iv).is_true();
            if let Some(o) = step(&lca, &p, &mut sim, u64::from(send), d, true, ce) {
                outs.push(o);
            }
            if accepted {
                sent += 1;
            }
        }
        let expect: Vec<u64> = inputs.iter().map(|&d| golden(1, d)).collect();
        assert_eq!(outs, expect, "clock gating must not change behaviour");
    }

    #[test]
    fn buggy_design_swallows_input_on_frozen_turn() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(MotivatingBug::ClockEnableDisconnected));
        let mut sim = Simulator::new(&lca.ts, &p);
        // Fill all four buffers back-to-back with the exec unit busy, then
        // freeze exactly when buffer 3's turn comes up.
        let mut outs = Vec::new();
        let mut sent = 0u64;
        // Phase 1: submit 8 inputs, ce high, host stalled so the pipeline
        // backs up and buffer 3 stays full.
        for d in 1..=4u64 {
            step(&lca, &p, &mut sim, 1, d, false, true);
            sent += 1;
        }
        // Phase 2: alternate frozen cycles while buffer 3 waits its turn
        // (freeze first, so some freeze lands exactly on buffer 3's turn).
        for k in 0..16 {
            let ce = k % 2 == 1;
            if let Some(o) = step(&lca, &p, &mut sim, 0, 0, true, ce) {
                outs.push(o);
            }
        }
        for _ in 0..40 {
            if let Some(o) = step(&lca, &p, &mut sim, 0, 0, true, true) {
                outs.push(o);
            }
        }
        let expect: Vec<u64> = (1..=sent).map(|d| golden(1, d)).collect();
        assert_ne!(outs, expect, "bug must perturb the output stream");
    }

    #[test]
    fn aqed_fc_catches_clock_enable_bug() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(MotivatingBug::ClockEnableDisconnected));
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify(&mut p, 14);
        match &report.outcome {
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                assert_eq!(*property, PropertyKind::Fc);
                assert!(
                    counterexample.cycles() <= 14,
                    "short counterexample expected, got {}",
                    counterexample.cycles()
                );
            }
            other => panic!("expected FC bug, got {other:?}"),
        }
    }

    #[test]
    fn aqed_passes_healthy_design() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify(&mut p, 8);
        assert!(
            !report.found_bug(),
            "healthy design must be clean: {report}"
        );
    }
}
