//! The optical-flow case study (paper Table 2, "Rosetta / Optical Flow",
//! caught by RB).
//!
//! An abstracted window pipeline from the Rosetta optical-flow kernel: a
//! 3-pixel sliding window computes the x-gradient `p[i] − p[i−2]` for
//! every incoming pixel once the window is warm. Results go through a
//! 2-deep output FIFO with credit-based flow control.
//!
//! Because each result depends on *neighbouring* pixels, the per-pixel
//! operation is **interfering** — Functional Consistency does not apply
//! to it (the paper's model, Sec. II). A-QED therefore checks the
//! Response Bound only, which is exactly how the paper classifies this
//! design's bug (RB). The bug variant drops a result when a window
//! output is produced in the same cycle as a delivery — a push/pop
//! collision in the output FIFO's occupancy counter.

use aqed_core::RbConfig;
use aqed_expr::{ExprPool, ExprRef};
use aqed_hls::Lca;
use aqed_tsys::TransitionSystem;

/// Bug variants of the optical-flow pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptflowBug {
    /// The output FIFO's occupancy counter mishandles a simultaneous
    /// push and pop: the push is forgotten and the produced gradient
    /// vanishes (RB).
    PushPopCollision,
}

/// Window length (warm-up).
pub const WINDOW: usize = 3;

/// Output FIFO depth.
pub const OFIFO_DEPTH: usize = 2;

/// The gradient the pipeline computes once warm, as plain Rust over the
/// last three pixels (newest first: `p0` this cycle, `p2` two ago).
#[must_use]
pub fn gradient(p0: u64, p2: u64) -> u64 {
    p0.wrapping_sub(p2) & 0xFF
}

/// Recommended RB parameters: the window needs [`WINDOW`] pixels before
/// the first gradient (`in_min`).
#[must_use]
pub fn recommended_rb() -> RbConfig {
    RbConfig {
        tau: 6,
        in_min: WINDOW as u64,
        rdin_bound: 12,
        counter_width: 8,
    }
}

/// Builds the window-gradient pipeline, optionally with the push/pop
/// collision bug.
#[must_use]
pub fn build(pool: &mut ExprPool, bug: Option<OptflowBug>) -> Lca {
    let name = match bug {
        None => "optflow",
        Some(OptflowBug::PushPopCollision) => "optflow_pushpop",
    };
    let mut ts = TransitionSystem::new(name);
    let action = ts.add_input(pool, "action", 2);
    let data = ts.add_input(pool, "data", 8);
    let rdh = ts.add_input(pool, "rdh", 1);
    let action_e = pool.var_expr(action);
    let data_e = pool.var_expr(data);
    let rdh_e = pool.var_expr(rdh);

    // Window shift registers (w0 = newest).
    let win: Vec<_> = (0..WINDOW)
        .map(|i| ts.add_register(pool, format!("of_win{i}"), 8, 0))
        .collect();
    let fill = ts.add_register(pool, "of_fill", 2, 0);
    let ofifo: Vec<_> = (0..OFIFO_DEPTH)
        .map(|i| ts.add_register(pool, format!("of_ofifo{i}"), 8, 0))
        .collect();
    let ocnt = ts.add_register(pool, "of_ocnt", 2, 0);

    let win_e: Vec<ExprRef> = win.iter().map(|&w| pool.var_expr(w)).collect();
    let fill_e = pool.var_expr(fill);
    let ofifo_e: Vec<ExprRef> = ofifo.iter().map(|&f| pool.var_expr(f)).collect();
    let ocnt_e = pool.var_expr(ocnt);

    // Credit-based rdin: produced-but-undelivered results must fit.
    let cw = 2;
    let depth_l = pool.lit(cw, OFIFO_DEPTH as u64);
    let has_credit = pool.ult(ocnt_e, depth_l);
    let rdin = has_credit;
    let zero_a = pool.lit(2, 0);
    let act_valid = pool.ne(action_e, zero_a);
    let captured = pool.and(rdin, act_valid);

    // Warm when the window has seen WINDOW-1 pixels (this capture is the
    // WINDOW-th): gradient = data − win[1] (pixel from two cycles ago).
    let warm_l = pool.lit(2, (WINDOW - 1) as u64);
    let warm = pool.uge(fill_e, warm_l);
    let produce = pool.and(captured, warm);
    let grad = pool.sub(data_e, win_e[1]);

    // Window shift on capture.
    for i in 0..WINDOW {
        let incoming = if i == 0 { data_e } else { win_e[i - 1] };
        let next = pool.ite(captured, incoming, win_e[i]);
        ts.set_next(win[i], next);
    }
    // Fill counter saturates.
    let one2 = pool.lit(2, 1);
    let at_max = pool.uge(fill_e, warm_l);
    let inc = pool.add(fill_e, one2);
    let bump = pool.ite(at_max, fill_e, inc);
    let next_fill = pool.ite(captured, bump, fill_e);
    ts.set_next(fill, next_fill);

    // Output FIFO.
    let zero2 = pool.lit(cw, 0);
    let out_valid = pool.ne(ocnt_e, zero2);
    let pop = pool.and(out_valid, rdh_e);
    let cnt_after_pop = {
        let dec = pool.sub(ocnt_e, one2);
        pool.ite(pop, dec, ocnt_e)
    };
    let next_cnt = match bug {
        Some(OptflowBug::PushPopCollision) => {
            // The counter's increment term is masked by a same-cycle pop.
            let no_pop = pool.not(pop);
            let push_counted = pool.and(produce, no_pop);
            let inc = pool.add(cnt_after_pop, one2);
            pool.ite(push_counted, inc, cnt_after_pop)
        }
        None => {
            let inc = pool.add(cnt_after_pop, one2);
            pool.ite(produce, inc, cnt_after_pop)
        }
    };
    ts.set_next(ocnt, next_cnt);
    for i in 0..OFIFO_DEPTH {
        let cur = ofifo_e[i];
        let from_above = if i + 1 < OFIFO_DEPTH {
            ofifo_e[i + 1]
        } else {
            cur
        };
        let shifted = pool.ite(pop, from_above, cur);
        let idx = pool.lit(cw, i as u64);
        let at_tail = pool.eq(cnt_after_pop, idx);
        let wr = pool.and(produce, at_tail);
        let written = pool.ite(wr, grad, shifted);
        ts.set_next(ofifo[i], written);
    }

    let zero8 = pool.lit(8, 0);
    let out = pool.ite(out_valid, ofifo_e[0], zero8);
    let delivered = pop;

    ts.add_output("out", out);
    ts.add_output("out_valid", out_valid);
    ts.add_output("rdin", rdin);
    ts.add_output("captured", captured);
    ts.add_output("delivered", delivered);

    Lca {
        ts,
        action,
        data,
        rdh,
        clock_enable: None,
        out,
        out_valid,
        rdin,
        captured,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_bitvec::Bv;
    use aqed_core::{AqedHarness, CheckOutcome, PropertyKind};
    use aqed_tsys::Simulator;

    fn run_stream(
        lca: &Lca,
        p: &ExprPool,
        pixels: &[u64],
        rdh_pattern: impl Fn(usize) -> bool,
    ) -> (usize, Vec<u64>) {
        let mut sim = Simulator::new(&lca.ts, p);
        let mut sent = 0usize;
        let mut outs = Vec::new();
        for cycle in 0..300 {
            let send = sent < pixels.len();
            let d = if send { pixels[sent] } else { 0 };
            let rdh = rdh_pattern(cycle);
            let iv = vec![
                (lca.action, Bv::new(2, u64::from(send))),
                (lca.data, Bv::new(8, d)),
                (lca.rdh, Bv::from_bool(rdh)),
            ];
            let cap = sim.peek(p, lca.captured, &iv).is_true();
            let del = sim.peek(p, lca.delivered, &iv).is_true();
            let out = sim.peek(p, lca.out, &iv).to_u64();
            sim.step_with(&lca.ts, p, &iv);
            if cap {
                sent += 1;
            }
            if del {
                outs.push(out);
            }
        }
        (sent, outs)
    }

    #[test]
    fn healthy_pipeline_emits_all_gradients() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        lca.ts.validate(&p).expect("valid");
        let pixels = [10u64, 20, 35, 15, 90, 7];
        let (sent, outs) = run_stream(&lca, &p, &pixels, |c| c % 2 == 0);
        assert_eq!(sent, pixels.len());
        let expect: Vec<u64> = (2..pixels.len())
            .map(|i| gradient(pixels[i], pixels[i - 2]))
            .collect();
        assert_eq!(outs, expect);
    }

    #[test]
    fn collision_bug_loses_gradients() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(OptflowBug::PushPopCollision));
        let pixels = [10u64, 20, 35, 15, 90, 7, 66, 41];
        // Host always ready: pops coincide with pushes often.
        let (sent, outs) = run_stream(&lca, &p, &pixels, |_| true);
        assert_eq!(sent, pixels.len());
        assert!(
            outs.len() < pixels.len() - 2,
            "collision must lose results: got {} of {}",
            outs.len(),
            pixels.len() - 2
        );
    }

    #[test]
    fn aqed_rb_catches_collision() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(OptflowBug::PushPopCollision));
        let report = AqedHarness::new(&lca)
            .with_rb(recommended_rb())
            .verify(&mut p, 15);
        match report.outcome {
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                assert_eq!(property, PropertyKind::Rb);
                assert!(counterexample.cycles() <= 15);
            }
            other => panic!("expected RB bug, got {other:?}"),
        }
    }

    #[test]
    fn healthy_clean_under_rb() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        let report = AqedHarness::new(&lca)
            .with_rb(recommended_rb())
            .verify(&mut p, 12);
        assert!(
            !report.found_bug(),
            "healthy optflow must be clean: {report}"
        );
    }
}
