//! The memory-controller unit case study (paper Sec. V.A, Table 1,
//! Fig. 5).
//!
//! The paper's proprietary CGRA memory-controller RTL is reconstructed as
//! three data-movement configurations, each a loosely-coupled accelerator
//! moving 16-bit words: every captured word is eventually delivered
//! unchanged and in order, so the *function* is the identity and the
//! interesting behaviour is entirely in the buffering control logic —
//! exactly the accelerator class where A-QED's Functional Consistency
//! shines without any specification.
//!
//! * [`MemctrlConfig::Fifo`] — a depth-4 circular FIFO with read/write
//!   pointers and an occupancy counter.
//! * [`MemctrlConfig::DoubleBuffer`] — two 2-entry banks; one fills while
//!   the other drains, swapping when the fill is complete and the drain
//!   empty.
//! * [`MemctrlConfig::LineBuffer`] — a 4-deep line (shift register);
//!   words emerge after a 4-word warm-up (this is the configuration that
//!   exercises the RB monitor's `in_min` parameter).
//!
//! Configurations with *interfering* operations (e.g. accumulation) are
//! out of scope, mirroring the three configurations the paper excluded.
//!
//! The bug catalogue ([`MemctrlBug`]) contains fifteen named, realistic
//! control-logic defects. Two of them (`FifoRedundantWriteGlitch`,
//! `DbWriteCollision`) only trigger under a data-dependent address-decode
//! aliasing coincidence — the "difficult corner-case scenarios" that the
//! paper reports escaping the conventional flow (its 13% A-QED-only
//! slice in Fig. 5).

use aqed_core::RbConfig;
use aqed_expr::{ExprPool, ExprRef};
use aqed_hls::Lca;
use aqed_tsys::TransitionSystem;

/// Word width moved by every configuration.
pub const DATA_W: u32 = 16;

/// FIFO configuration depth.
pub const FIFO_DEPTH: usize = 4;

/// Double-buffer bank size (tile size).
pub const DB_TILE: usize = 2;

/// Line-buffer length (warm-up length).
pub const LB_LEN: usize = 4;

/// The memory-controller configurations (paper: "double buffer, line
/// buffer, FIFO").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemctrlConfig {
    /// Circular FIFO.
    Fifo,
    /// Ping-pong double buffer.
    DoubleBuffer,
    /// Line buffer (delay line).
    LineBuffer,
}

impl MemctrlConfig {
    /// All configurations.
    pub const ALL: [MemctrlConfig; 3] = [
        MemctrlConfig::Fifo,
        MemctrlConfig::DoubleBuffer,
        MemctrlConfig::LineBuffer,
    ];
}

/// The tracked bug variants of the memory-controller unit.
///
/// Each bug is a *named control-logic defect* of the kind the paper's
/// version-tracked repository recorded: pointer wrap errors, missing
/// full/empty checks, swap glitches, stale-state reuse, deadlocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemctrlBug {
    // ---- FIFO configuration ----
    /// Write pointer wraps one slot early (at `depth-1`): slot 3 is never
    /// written and stale data is eventually delivered. (FC)
    FifoPtrWrapOffByOne,
    /// `rdin` ignores the full flag: an overflow write overwrites the
    /// oldest undelivered word. (FC)
    FifoFullCheckMissing,
    /// A sticky `was_full` flag is never cleared, holding `rdin` low
    /// forever after the first full condition — a deadlock. (RB)
    FifoStuckFullDeadlock,
    /// The occupancy counter decrements on `rdh` even when the FIFO is
    /// empty, underflowing and asserting `out_valid` on garbage. (FC)
    FifoCountUnderflow,
    /// Address-decode aliasing: when the write pointer wraps in the same
    /// cycle as a read and *two* shared tag comparators alias
    /// (`data == head ⊕ 0x8001` and `mem[rd+1] == head ⊕ 0x4002`), the
    /// write is steered onto the read slot, corrupting an undelivered
    /// word. A 32-bit data coincidence — escapes the conventional
    /// testbench, trivial for BMC's symbolic data. (FC, A-QED-only)
    FifoRedundantWriteGlitch,

    // ---- Double-buffer configuration ----
    /// The bank swap fires when the fill side is complete without
    /// checking that the drain side is empty: undelivered words vanish.
    /// (FC)
    DbSwapWithoutDrainCheck,
    /// The drain pointer is not reset on swap: the next tile drains from
    /// the wrong offset. (FC)
    DbDrainPtrNotReset,
    /// `rdin` ignores the fill count: a third write to a 2-entry bank
    /// overwrites the first. (FC)
    DbRdinIgnoresFull,
    /// Popping the last word of a tile advances the drain pointer twice,
    /// skipping a word on the next tile. (FC)
    DbDoubleDrain,
    /// Address-decode aliasing on the swap cycle (reachable through the
    /// look-ahead-ready path): a capture coinciding with a swap when two
    /// shared tag comparators alias (`data == head ⊕ 0x8001` and
    /// `second == head ⊕ 0x4002`) is steered into the drain bank,
    /// corrupting a pending word. A 32-bit data coincidence — escapes
    /// the conventional testbench. (FC, A-QED-only)
    DbWriteCollision,

    // ---- Line-buffer configuration ----
    /// The output tap reads stage 2 instead of stage 3: every word is
    /// delivered one position early. (FC)
    LbTapOffByOne,
    /// Warm-up ends one word early: the first delivered word is the
    /// line's power-on value. (FC)
    LbWarmupOffByOne,
    /// The line shifts on `action` even when `rdin` is low: words that
    /// were never captured enter the line and shift real data out. (FC)
    LbShiftDuringStall,
    /// `out_valid` is not cleared on delivery: the same word is delivered
    /// repeatedly. (FC)
    LbValidStuck,
    /// Stage 2's enable is cross-wired to the warm-up counter's LSB: the
    /// stage only shifts on alternate captures, tearing the line in a
    /// position-dependent way. (FC)
    LbStageEnableCrossWired,
}

impl MemctrlBug {
    /// Every bug, in catalogue order.
    pub const ALL: [MemctrlBug; 15] = [
        MemctrlBug::FifoPtrWrapOffByOne,
        MemctrlBug::FifoFullCheckMissing,
        MemctrlBug::FifoStuckFullDeadlock,
        MemctrlBug::FifoCountUnderflow,
        MemctrlBug::FifoRedundantWriteGlitch,
        MemctrlBug::DbSwapWithoutDrainCheck,
        MemctrlBug::DbDrainPtrNotReset,
        MemctrlBug::DbRdinIgnoresFull,
        MemctrlBug::DbDoubleDrain,
        MemctrlBug::DbWriteCollision,
        MemctrlBug::LbTapOffByOne,
        MemctrlBug::LbWarmupOffByOne,
        MemctrlBug::LbShiftDuringStall,
        MemctrlBug::LbValidStuck,
        MemctrlBug::LbStageEnableCrossWired,
    ];

    /// The configuration this bug lives in.
    #[must_use]
    pub fn config(self) -> MemctrlConfig {
        use MemctrlBug::*;
        match self {
            FifoPtrWrapOffByOne
            | FifoFullCheckMissing
            | FifoStuckFullDeadlock
            | FifoCountUnderflow
            | FifoRedundantWriteGlitch => MemctrlConfig::Fifo,
            DbSwapWithoutDrainCheck
            | DbDrainPtrNotReset
            | DbRdinIgnoresFull
            | DbDoubleDrain
            | DbWriteCollision => MemctrlConfig::DoubleBuffer,
            LbTapOffByOne
            | LbWarmupOffByOne
            | LbShiftDuringStall
            | LbValidStuck
            | LbStageEnableCrossWired => MemctrlConfig::LineBuffer,
        }
    }

    /// Whether this bug deadlocks the design (expected to be caught by
    /// RB) rather than corrupting data (caught by FC).
    #[must_use]
    pub fn is_deadlock(self) -> bool {
        self == MemctrlBug::FifoStuckFullDeadlock
    }

    /// Whether the trigger needs a data-dependent coincidence the
    /// conventional flow's testbench realistically misses.
    #[must_use]
    pub fn is_corner_case(self) -> bool {
        matches!(
            self,
            MemctrlBug::FifoRedundantWriteGlitch | MemctrlBug::DbWriteCollision
        )
    }

    /// Short identifier for reports.
    #[must_use]
    pub fn id(self) -> &'static str {
        use MemctrlBug::*;
        match self {
            FifoPtrWrapOffByOne => "fifo_ptr_wrap_off_by_one",
            FifoFullCheckMissing => "fifo_full_check_missing",
            FifoStuckFullDeadlock => "fifo_stuck_full_deadlock",
            FifoCountUnderflow => "fifo_count_underflow",
            FifoRedundantWriteGlitch => "fifo_redundant_write_glitch",
            DbSwapWithoutDrainCheck => "db_swap_without_drain_check",
            DbDrainPtrNotReset => "db_drain_ptr_not_reset",
            DbRdinIgnoresFull => "db_rdin_ignores_full",
            DbDoubleDrain => "db_double_drain",
            DbWriteCollision => "db_write_collision",
            LbTapOffByOne => "lb_tap_off_by_one",
            LbWarmupOffByOne => "lb_warmup_off_by_one",
            LbShiftDuringStall => "lb_shift_during_stall",
            LbValidStuck => "lb_valid_stuck",
            LbStageEnableCrossWired => "lb_stage_enable_cross_wired",
        }
    }
}

/// The golden function of every configuration: identity data movement.
#[must_use]
pub fn golden(_action: u64, data: u64) -> u64 {
    data & 0xFFFF
}

/// The RB parameters appropriate for each configuration (`in_min` is
/// where the line buffer differs: it legitimately needs a full warm-up
/// before producing anything — the paper's Sec. IV.C customization).
#[must_use]
pub fn recommended_rb(config: MemctrlConfig) -> RbConfig {
    match config {
        MemctrlConfig::Fifo => RbConfig {
            tau: 6,
            in_min: 1,
            rdin_bound: 10,
            counter_width: 8,
        },
        MemctrlConfig::DoubleBuffer => RbConfig {
            tau: 8,
            in_min: DB_TILE as u64,
            rdin_bound: 12,
            counter_width: 8,
        },
        MemctrlConfig::LineBuffer => RbConfig {
            tau: 8,
            in_min: (LB_LEN + 1) as u64,
            rdin_bound: 12,
            counter_width: 8,
        },
    }
}

/// Builds a memory-controller configuration, optionally with one injected
/// bug.
///
/// # Panics
///
/// Panics if `bug` does not belong to `config`.
#[must_use]
pub fn build(pool: &mut ExprPool, config: MemctrlConfig, bug: Option<MemctrlBug>) -> Lca {
    if let Some(b) = bug {
        assert!(
            b.config() == config,
            "bug {b:?} belongs to {:?}, not {config:?}",
            b.config()
        );
    }
    match config {
        MemctrlConfig::Fifo => build_fifo(pool, bug),
        MemctrlConfig::DoubleBuffer => build_double_buffer(pool, bug),
        MemctrlConfig::LineBuffer => build_line_buffer(pool, bug),
    }
}

fn lca_name(base: &str, bug: Option<MemctrlBug>) -> String {
    match bug {
        None => format!("memctrl_{base}"),
        Some(b) => format!("memctrl_{base}_{}", b.id()),
    }
}

// ----------------------------------------------------------------------
// FIFO configuration
// ----------------------------------------------------------------------

fn build_fifo(pool: &mut ExprPool, bug: Option<MemctrlBug>) -> Lca {
    let mut ts = TransitionSystem::new(lca_name("fifo", bug));
    let action = ts.add_input(pool, "action", 2);
    let data = ts.add_input(pool, "data", DATA_W);
    let rdh = ts.add_input(pool, "rdh", 1);
    let action_e = pool.var_expr(action);
    let data_e = pool.var_expr(data);
    let rdh_e = pool.var_expr(rdh);

    let mem: Vec<_> = (0..FIFO_DEPTH)
        .map(|i| ts.add_register(pool, format!("fifo_mem{i}"), DATA_W, 0))
        .collect();
    let rd_ptr = ts.add_register(pool, "fifo_rd_ptr", 2, 0);
    let wr_ptr = ts.add_register(pool, "fifo_wr_ptr", 2, 0);
    let count = ts.add_register(pool, "fifo_count", 3, 0);
    let was_full = ts.add_register(pool, "fifo_was_full", 1, 0);

    let mem_e: Vec<ExprRef> = mem.iter().map(|&m| pool.var_expr(m)).collect();
    let rd_e = pool.var_expr(rd_ptr);
    let wr_e = pool.var_expr(wr_ptr);
    let cnt_e = pool.var_expr(count);
    let was_full_e = pool.var_expr(was_full);

    let depth_l = pool.lit(3, FIFO_DEPTH as u64);
    let full = pool.uge(cnt_e, depth_l);
    let zero3 = pool.lit(3, 0);
    let empty = pool.eq(cnt_e, zero3);

    // rdin.
    let not_full = pool.not(full);
    let rdin = match bug {
        Some(MemctrlBug::FifoFullCheckMissing) => pool.true_(),
        Some(MemctrlBug::FifoStuckFullDeadlock) => {
            // Deadlock: once full has been seen, rdin stays low forever.
            let not_sticky = pool.not(was_full_e);
            pool.and(not_full, not_sticky)
        }
        _ => not_full,
    };
    let sticky_next = pool.or(was_full_e, full);
    ts.set_next(was_full, sticky_next);

    let zero_a = pool.lit(2, 0);
    let act_valid = pool.ne(action_e, zero_a);
    let captured = pool.and(rdin, act_valid);

    // out side.
    let out_valid = pool.not(empty);
    let pop = pool.and(out_valid, rdh_e);

    // Pointer updates.
    let one2 = pool.lit(2, 1);
    let wr_inc = match bug {
        Some(MemctrlBug::FifoPtrWrapOffByOne) => {
            // Wraps at depth-1: 0,1,2,0,…
            let two2 = pool.lit(2, 2);
            let at_wrap = pool.eq(wr_e, two2);
            let zero2 = pool.lit(2, 0);
            let plus = pool.add(wr_e, one2);
            pool.ite(at_wrap, zero2, plus)
        }
        _ => pool.add(wr_e, one2),
    };
    let next_wr = pool.ite(captured, wr_inc, wr_e);
    ts.set_next(wr_ptr, next_wr);
    let rd_inc = pool.add(rd_e, one2);
    let next_rd = pool.ite(pop, rd_inc, rd_e);
    ts.set_next(rd_ptr, next_rd);

    // Count.
    let one3 = pool.lit(3, 1);
    let dec_trigger = match bug {
        // Decrements whenever the host is ready — even on an empty FIFO.
        Some(MemctrlBug::FifoCountUnderflow) => rdh_e,
        _ => pop,
    };
    let after_pop = {
        let dec = pool.sub(cnt_e, one3);
        pool.ite(dec_trigger, dec, cnt_e)
    };
    let next_cnt = {
        let inc = pool.add(after_pop, one3);
        pool.ite(captured, inc, after_pop)
    };
    ts.set_next(count, next_cnt);

    // Memory writes.
    for (i, &m) in mem.iter().enumerate() {
        let idx = pool.lit(2, i as u64);
        let at_wr = pool.eq(wr_e, idx);
        let mut we = pool.and(captured, at_wr);
        if bug == Some(MemctrlBug::FifoRedundantWriteGlitch) {
            // Aliasing corner: write pointer wrapping (== 3) during a
            // same-cycle pop, with the incoming word matching the head
            // word's tag-complement pattern, steers the write onto the
            // read slot.
            let three2 = pool.lit(2, 3);
            let wrapping = pool.eq(wr_e, three2);
            let head = pool.select(rd_e, &mem_e, mem_e[0]);
            let tag = pool.lit(DATA_W, 0x8001);
            let pattern = pool.xor(head, tag);
            let tag2 = pool.lit(DATA_W, 0x4002);
            let one_rd = pool.lit(2, 1);
            let rd_next = pool.add(rd_e, one_rd);
            let second = pool.select(rd_next, &mem_e, mem_e[0]);
            let pattern2 = pool.xor(head, tag2);
            let a1 = pool.eq(data_e, pattern);
            let a2 = pool.eq(second, pattern2);
            let data_alias = pool.and(a1, a2);
            let glitch = pool.and_all([captured, wrapping, pop, data_alias]);
            let at_rd = pool.eq(rd_e, idx);
            let misdirected = pool.and(glitch, at_rd);
            let not_glitch = pool.not(glitch);
            let normal = pool.and(we, not_glitch);
            we = pool.or(normal, misdirected);
        }
        let cur = mem_e[i];
        let next = pool.ite(we, data_e, cur);
        ts.set_next(m, next);
    }

    let head = pool.select(rd_e, &mem_e, mem_e[0]);
    let zero_d = pool.lit(DATA_W, 0);
    let out = pool.ite(out_valid, head, zero_d);
    let delivered = pop;

    finish_lca(
        ts, pool, action, data, rdh, out, out_valid, rdin, captured, delivered,
    )
}

// ----------------------------------------------------------------------
// Double-buffer configuration
// ----------------------------------------------------------------------

fn build_double_buffer(pool: &mut ExprPool, bug: Option<MemctrlBug>) -> Lca {
    let mut ts = TransitionSystem::new(lca_name("double_buffer", bug));
    let action = ts.add_input(pool, "action", 2);
    let data = ts.add_input(pool, "data", DATA_W);
    let rdh = ts.add_input(pool, "rdh", 1);
    let action_e = pool.var_expr(action);
    let data_e = pool.var_expr(data);
    let rdh_e = pool.var_expr(rdh);

    // Two banks of DB_TILE entries.
    let bank: Vec<Vec<_>> = (0..2)
        .map(|b| {
            (0..DB_TILE)
                .map(|i| ts.add_register(pool, format!("db_bank{b}_{i}"), DATA_W, 0))
                .collect()
        })
        .collect();
    let fill_sel = ts.add_register(pool, "db_fill_sel", 1, 0);
    let fill_cnt = ts.add_register(pool, "db_fill_cnt", 2, 0);
    let drain_cnt = ts.add_register(pool, "db_drain_cnt", 2, 0);
    let drain_ptr = ts.add_register(pool, "db_drain_ptr", 2, 0);

    let bank_e: Vec<Vec<ExprRef>> = bank
        .iter()
        .map(|regs| regs.iter().map(|&r| pool.var_expr(r)).collect())
        .collect();
    let fill_sel_e = pool.var_expr(fill_sel);
    let fill_cnt_e = pool.var_expr(fill_cnt);
    let drain_cnt_e = pool.var_expr(drain_cnt);
    let drain_ptr_e = pool.var_expr(drain_ptr);

    let tile_l = pool.lit(2, DB_TILE as u64);
    let fill_full = pool.uge(fill_cnt_e, tile_l);
    let zero2 = pool.lit(2, 0);
    let drain_empty = pool.eq(drain_cnt_e, zero2);

    // Drain side.
    let out_valid = pool.not(drain_empty);
    let pop = pool.and(out_valid, rdh_e);

    // Swap condition.
    let drain_done_after_pop = {
        let one2 = pool.lit(2, 1);
        let last = pool.eq(drain_cnt_e, one2);
        let emptied = pool.and(pop, last);
        pool.or(drain_empty, emptied)
    };
    let swap = match bug {
        Some(MemctrlBug::DbSwapWithoutDrainCheck) => fill_full,
        _ => pool.and(fill_full, drain_done_after_pop),
    };

    // rdin: space in the fill bank. The DbWriteCollision variant adds the
    // "look-ahead ready" optimisation (a capture is also accepted on the
    // swap cycle, since the swap frees the fill bank) — the very path
    // whose address decode aliases.
    let not_fill_full = pool.not(fill_full);
    let rdin = match bug {
        Some(MemctrlBug::DbRdinIgnoresFull) => pool.true_(),
        Some(MemctrlBug::DbWriteCollision) => pool.or(not_fill_full, swap),
        _ => not_fill_full,
    };
    let zero_a = pool.lit(2, 0);
    let act_valid = pool.ne(action_e, zero_a);
    let captured = pool.and(rdin, act_valid);

    // fill_sel flips on swap.
    let nsel = pool.not(fill_sel_e);
    let next_sel = pool.ite(swap, nsel, fill_sel_e);
    ts.set_next(fill_sel, next_sel);

    // fill_cnt: +1 on capture, reset on swap.
    let one2 = pool.lit(2, 1);
    let fc_inc = pool.add(fill_cnt_e, one2);
    let fc_step = pool.ite(captured, fc_inc, fill_cnt_e);
    // A capture on the swap cycle lands in the *new* fill bank: count 1.
    let cap_on_swap = pool.and(captured, swap);
    let next_fc = {
        let reset_val = pool.ite(cap_on_swap, one2, zero2);
        pool.ite(swap, reset_val, fc_step)
    };
    ts.set_next(fill_cnt, next_fc);

    // drain_cnt: reloads to tile size on swap, else decrements on pop.
    let dc_dec = pool.sub(drain_cnt_e, one2);
    let dc_step = pool.ite(pop, dc_dec, drain_cnt_e);
    let next_dc = pool.ite(swap, tile_l, dc_step);
    ts.set_next(drain_cnt, next_dc);

    // drain_ptr: resets on swap (unless buggy), advances on pop.
    let dp_step = match bug {
        Some(MemctrlBug::DbDoubleDrain) => {
            // Advances by 2 on the last pop of a tile.
            let last = pool.eq(drain_cnt_e, one2);
            let two = pool.lit(2, 2);
            let stride = pool.ite(last, two, one2);
            let adv = pool.add(drain_ptr_e, stride);
            pool.ite(pop, adv, drain_ptr_e)
        }
        _ => {
            let adv = pool.add(drain_ptr_e, one2);
            pool.ite(pop, adv, drain_ptr_e)
        }
    };
    let next_dp = match bug {
        Some(MemctrlBug::DbDrainPtrNotReset) | Some(MemctrlBug::DbDoubleDrain) => dp_step,
        _ => pool.ite(swap, zero2, dp_step),
    };
    ts.set_next(drain_ptr, next_dp);

    // Bank writes: capture goes to bank[fill_sel][fill_cnt] (or, on a
    // swap cycle, slot 0 of the new fill bank).
    let wr_slot = pool.ite(swap, zero2, fill_cnt_e);
    for b in 0..2 {
        let b_l = pool.lit(1, b as u64);
        // Normal target bank: the fill side *after* this cycle's swap.
        let eff_sel = pool.ite(swap, nsel, fill_sel_e);
        let bank_hit = pool.eq(eff_sel, b_l);
        for i in 0..DB_TILE {
            let idx = pool.lit(2, i as u64);
            let at = pool.eq(wr_slot, idx);
            let mut we = pool.and_all([captured, bank_hit, at]);
            if bug == Some(MemctrlBug::DbWriteCollision) {
                // Aliasing corner: a capture on the swap cycle whose data
                // equals the head of the bank about to drain is steered
                // into that bank's slot 1, clobbering a pending word.
                let drain_sel = fill_sel_e; // after swap, old fill bank drains
                let head = pool.select(zero2, &bank_e[b], bank_e[b][0]);
                let _ = head;
                let drain_head = {
                    // Head of the bank that will drain = old fill bank
                    // slot 0.
                    let b0 = bank_e[0][0];
                    let b1 = bank_e[1][0];
                    let sel_bit = drain_sel;
                    pool.ite(sel_bit, b1, b0)
                };
                let tag = pool.lit(DATA_W, 0x8001);
                let pattern = pool.xor(drain_head, tag);
                let drain_second = {
                    let b0 = bank_e[0][1];
                    let b1 = bank_e[1][1];
                    pool.ite(drain_sel, b1, b0)
                };
                let tag2 = pool.lit(DATA_W, 0x4002);
                let pattern2 = pool.xor(drain_head, tag2);
                let a1 = pool.eq(data_e, pattern);
                let a2 = pool.eq(drain_second, pattern2);
                let alias = pool.and(a1, a2);
                let glitch = pool.and_all([captured, swap, alias]);
                // Misdirect into the draining bank, slot 1.
                let drain_bank_hit = pool.eq(drain_sel, b_l);
                let one_idx = pool.lit(2, 1);
                let at1 = pool.eq(one_idx, idx);
                let misdirected = pool.and_all([glitch, drain_bank_hit, at1]);
                let not_glitch = pool.not(glitch);
                let normal = pool.and(we, not_glitch);
                we = pool.or(normal, misdirected);
            }
            let cur = bank_e[b][i];
            let next = pool.ite(we, data_e, cur);
            ts.set_next(bank[b][i], next);
        }
    }

    // Output: drain bank at drain_ptr.
    let drain_sel = pool.not(fill_sel_e);
    let zero_d = pool.lit(DATA_W, 0);
    let read_b0 = pool.select(drain_ptr_e, &bank_e[0], zero_d);
    let read_b1 = pool.select(drain_ptr_e, &bank_e[1], zero_d);
    let head = pool.ite(drain_sel, read_b1, read_b0);
    let out = pool.ite(out_valid, head, zero_d);
    let delivered = pop;

    finish_lca(
        ts, pool, action, data, rdh, out, out_valid, rdin, captured, delivered,
    )
}

// ----------------------------------------------------------------------
// Line-buffer configuration
// ----------------------------------------------------------------------

fn build_line_buffer(pool: &mut ExprPool, bug: Option<MemctrlBug>) -> Lca {
    let mut ts = TransitionSystem::new(lca_name("line_buffer", bug));
    let action = ts.add_input(pool, "action", 2);
    let data = ts.add_input(pool, "data", DATA_W);
    let rdh = ts.add_input(pool, "rdh", 1);
    let action_e = pool.var_expr(action);
    let data_e = pool.var_expr(data);
    let rdh_e = pool.var_expr(rdh);

    let sr: Vec<_> = (0..LB_LEN)
        .map(|i| ts.add_register(pool, format!("lb_sr{i}"), DATA_W, 0))
        .collect();
    let fill_cnt = ts.add_register(pool, "lb_fill_cnt", 3, 0);
    let oval = ts.add_register(pool, "lb_oval", DATA_W, 0);
    let ovalid = ts.add_register(pool, "lb_ovalid", 1, 0);

    let sr_e: Vec<ExprRef> = sr.iter().map(|&r| pool.var_expr(r)).collect();
    let fill_e = pool.var_expr(fill_cnt);
    let oval_e = pool.var_expr(oval);
    let ovalid_e = pool.var_expr(ovalid);

    // rdin: stall while an undelivered output is pending.
    let rdin = pool.not(ovalid_e);
    let zero_a = pool.lit(2, 0);
    let act_valid = pool.ne(action_e, zero_a);
    let captured = pool.and(rdin, act_valid);

    let pop = pool.and(ovalid_e, rdh_e);

    // Warm-up threshold.
    let warm_at = match bug {
        Some(MemctrlBug::LbWarmupOffByOne) => LB_LEN as u64 - 1,
        _ => LB_LEN as u64,
    };
    let warm_l = pool.lit(3, warm_at);
    let warm = pool.uge(fill_e, warm_l);

    // Shift enable: captured — or, with the stall bug, raw `action`.
    let shift = match bug {
        Some(MemctrlBug::LbShiftDuringStall) => act_valid,
        _ => captured,
    };

    // Output produced when a capture occurs while warm: the word leaving
    // the line (pre-shift tap).
    let tap = match bug {
        Some(MemctrlBug::LbTapOffByOne) => sr_e[LB_LEN - 2],
        _ => sr_e[LB_LEN - 1],
    };
    let produce = pool.and(captured, warm);

    // Shift register.
    for i in 0..LB_LEN {
        let incoming = if i == 0 { data_e } else { sr_e[i - 1] };
        let en = if i == 2 && bug == Some(MemctrlBug::LbStageEnableCrossWired) {
            // Stage 2's enable is cross-wired to fill_cnt[0]: it shifts
            // only on alternate captures.
            let lsb = pool.bit(fill_e, 0);
            pool.and(shift, lsb)
        } else {
            shift
        };
        let next = pool.ite(en, incoming, sr_e[i]);
        ts.set_next(sr[i], next);
    }

    // Fill counter saturates at LB_LEN.
    let one3 = pool.lit(3, 1);
    let max_l = pool.lit(3, LB_LEN as u64);
    let at_max = pool.uge(fill_e, max_l);
    let inc = pool.add(fill_e, one3);
    let bump = pool.ite(at_max, fill_e, inc);
    let next_fill = pool.ite(captured, bump, fill_e);
    ts.set_next(fill_cnt, next_fill);

    // Output register.
    let next_oval = pool.ite(produce, tap, oval_e);
    ts.set_next(oval, next_oval);
    let next_ovalid = match bug {
        Some(MemctrlBug::LbValidStuck) => pool.or(ovalid_e, produce),
        _ => {
            let not_pop = pool.not(pop);
            let kept = pool.and(ovalid_e, not_pop);
            pool.or(kept, produce)
        }
    };
    ts.set_next(ovalid, next_ovalid);

    let zero_d = pool.lit(DATA_W, 0);
    let out = pool.ite(ovalid_e, oval_e, zero_d);
    let delivered = pop;

    finish_lca(
        ts, pool, action, data, rdh, out, ovalid_e, rdin, captured, delivered,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish_lca(
    mut ts: TransitionSystem,
    _pool: &mut ExprPool,
    action: aqed_expr::VarId,
    data: aqed_expr::VarId,
    rdh: aqed_expr::VarId,
    out: ExprRef,
    out_valid: ExprRef,
    rdin: ExprRef,
    captured: ExprRef,
    delivered: ExprRef,
) -> Lca {
    ts.add_output("out", out);
    ts.add_output("out_valid", out_valid);
    ts.add_output("rdin", rdin);
    ts.add_output("captured", captured);
    ts.add_output("delivered", delivered);
    Lca {
        ts,
        action,
        data,
        rdh,
        clock_enable: None,
        out,
        out_valid,
        rdin,
        captured,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_bitvec::Bv;
    use aqed_core::{AqedHarness, CheckOutcome, FcConfig, PropertyKind};
    use aqed_tsys::Simulator;

    /// Drives a config with in-order traffic and checks identity delivery.
    fn stream_identity(config: MemctrlConfig) {
        let mut p = ExprPool::new();
        let lca = build(&mut p, config, None);
        lca.ts.validate(&p).expect("valid");
        let mut sim = Simulator::new(&lca.ts, &p);
        let inputs: Vec<u64> = (1..=10).map(|k| k * 0x101).collect();
        let mut sent = 0usize;
        let mut outs = Vec::new();
        for cycle in 0..200 {
            let send = sent < inputs.len();
            let d = if send { inputs[sent] } else { 0 };
            let rdh = cycle % 2 == 0; // host ready half the time
            let iv = vec![
                (lca.action, Bv::new(2, u64::from(send))),
                (lca.data, Bv::new(DATA_W, d)),
                (lca.rdh, Bv::from_bool(rdh)),
            ];
            let cap = sim.peek(&p, lca.captured, &iv).is_true();
            let del = sim.peek(&p, lca.delivered, &iv).is_true();
            let out_now = sim.peek(&p, lca.out, &iv).to_u64();
            sim.step_with(&lca.ts, &p, &iv);
            if cap {
                sent += 1;
            }
            if del {
                outs.push(out_now);
            }
            if outs.len() == inputs.len() {
                break;
            }
        }
        // The line buffer retains the last LB_LEN words; other configs
        // deliver everything.
        let expected_delivered = match config {
            MemctrlConfig::LineBuffer => inputs.len() - LB_LEN,
            _ => inputs.len(),
        };
        assert!(
            outs.len() >= expected_delivered,
            "{config:?}: delivered {} < {expected_delivered}",
            outs.len()
        );
        assert_eq!(
            outs[..expected_delivered],
            inputs[..expected_delivered],
            "{config:?} must move data in order"
        );
    }

    #[test]
    fn fifo_streams_identity() {
        stream_identity(MemctrlConfig::Fifo);
    }

    #[test]
    fn double_buffer_streams_identity() {
        stream_identity(MemctrlConfig::DoubleBuffer);
    }

    #[test]
    fn line_buffer_streams_identity() {
        stream_identity(MemctrlConfig::LineBuffer);
    }

    /// Runs A-QED with the universal property relevant to the bug class
    /// (FC for data corruption, RB for deadlocks) — one property per run
    /// keeps the single-core BMC budget in bounds; the monitors are
    /// independent, so this loses no coverage for the targeted class.
    fn aqed_finds(bug: MemctrlBug, bound: usize) -> (PropertyKind, usize) {
        let mut p = ExprPool::new();
        let lca = build(&mut p, bug.config(), Some(bug));
        let mut harness = AqedHarness::new(&lca);
        if bug.is_deadlock() {
            harness = harness.with_rb(recommended_rb(bug.config()));
        } else {
            harness = harness.with_fc(FcConfig::default());
        }
        let report = harness.verify(&mut p, bound);
        match report.outcome {
            CheckOutcome::Bug {
                property,
                counterexample,
            } => (property, counterexample.cycles()),
            other => panic!("{}: expected bug, got {other:?}", bug.id()),
        }
    }

    #[test]
    fn aqed_finds_all_fifo_bugs() {
        for bug in MemctrlBug::ALL
            .iter()
            .filter(|b| b.config() == MemctrlConfig::Fifo)
        {
            let bound = if bug.is_deadlock() { 16 } else { 14 };
            let (prop, cycles) = aqed_finds(*bug, bound);
            if bug.is_deadlock() {
                assert_eq!(prop, PropertyKind::Rb, "{}", bug.id());
            }
            assert!(cycles <= bound, "{}: cex {} cycles", bug.id(), cycles);
        }
    }

    #[test]
    fn aqed_finds_all_double_buffer_bugs() {
        for bug in MemctrlBug::ALL
            .iter()
            .filter(|b| b.config() == MemctrlConfig::DoubleBuffer)
        {
            let (_prop, cycles) = aqed_finds(*bug, 14);
            assert!(cycles <= 14, "{}: cex {} cycles", bug.id(), cycles);
        }
    }

    #[test]
    fn aqed_finds_all_line_buffer_bugs() {
        for bug in MemctrlBug::ALL
            .iter()
            .filter(|b| b.config() == MemctrlConfig::LineBuffer)
        {
            let (_prop, cycles) = aqed_finds(*bug, 16);
            assert!(cycles <= 16, "{}: cex {} cycles", bug.id(), cycles);
        }
    }

    #[test]
    fn healthy_configs_clean_under_aqed() {
        for config in MemctrlConfig::ALL {
            let mut p = ExprPool::new();
            let lca = build(&mut p, config, None);
            let report = AqedHarness::new(&lca)
                .with_fc(FcConfig::default())
                .with_rb(recommended_rb(config))
                .verify(&mut p, 6);
            assert!(
                !report.found_bug(),
                "{config:?} healthy must be clean: {report}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "belongs to")]
    fn bug_config_mismatch_rejected() {
        let mut p = ExprPool::new();
        let _ = build(&mut p, MemctrlConfig::Fifo, Some(MemctrlBug::LbTapOffByOne));
    }

    #[test]
    fn catalogue_metadata_consistent() {
        assert_eq!(MemctrlBug::ALL.len(), 15);
        let corner: Vec<_> = MemctrlBug::ALL
            .iter()
            .filter(|b| b.is_corner_case())
            .collect();
        assert_eq!(corner.len(), 2, "13% of 15 ≈ 2 A-QED-only bugs");
        let deadlock: Vec<_> = MemctrlBug::ALL.iter().filter(|b| b.is_deadlock()).collect();
        assert_eq!(deadlock.len(), 1, "one RB bug, as the paper reports");
        // ids unique
        let mut ids: Vec<_> = MemctrlBug::ALL.iter().map(|b| b.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
    }
}
