//! The custom dataflow design (paper Table 2, "Custom design / Dataflow",
//! caught by RB).
//!
//! Two streaming kernels connected by an intermediate FIFO — the shape of
//! an HLS dataflow region:
//!
//! ```text
//! in ──▶ [stage 1: f1] ──▶ (FIFO, 2 deep) ──▶ [stage 2: f2] ──▶ out
//! ```
//!
//! with `f1(d) = d ⊕ (d << 1)` and `f2(x) = x + 5`.
//!
//! The bug variant reproduces the paper's "incorrect FIFO sizing" class:
//! the producer's flow control assumes a 4-deep FIFO (the HLS pragma)
//! while the instantiated hardware FIFO holds 2 entries — a word pushed
//! into the full FIFO is dropped, so its output never arrives and the
//! Response Bound check fires.

use aqed_core::RbConfig;
use aqed_expr::{ExprPool, ExprRef};
use aqed_hls::Lca;
use aqed_tsys::TransitionSystem;

/// Bug variants of the dataflow design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataflowBug {
    /// Producer flow control sized for a 4-deep FIFO, hardware FIFO is
    /// 2 deep: overflow drops a word (RB).
    FifoSizing,
}

/// Physical intermediate FIFO depth.
pub const FIFO_DEPTH: usize = 2;

/// The composed kernel function — the golden model.
#[must_use]
pub fn golden(_action: u64, data: u64) -> u64 {
    let f1 = (data ^ (data << 1)) & 0xFF;
    (f1 + 5) & 0xFF
}

/// Recommended RB parameters (τ covers both stages plus FIFO residency).
#[must_use]
pub fn recommended_rb() -> RbConfig {
    RbConfig {
        tau: 10,
        in_min: 1,
        rdin_bound: 12,
        counter_width: 8,
    }
}

/// Builds the dataflow accelerator, optionally with the FIFO sizing bug.
#[must_use]
pub fn build(pool: &mut ExprPool, bug: Option<DataflowBug>) -> Lca {
    let name = match bug {
        None => "dataflow",
        Some(DataflowBug::FifoSizing) => "dataflow_fifo_sizing",
    };
    let mut ts = TransitionSystem::new(name);
    let action = ts.add_input(pool, "action", 2);
    let data = ts.add_input(pool, "data", 8);
    let rdh = ts.add_input(pool, "rdh", 1);
    let action_e = pool.var_expr(action);
    let data_e = pool.var_expr(data);
    let rdh_e = pool.var_expr(rdh);

    // Stage-1 holding register.
    let s1_v = ts.add_register(pool, "df_s1_v", 1, 0);
    let s1_d = ts.add_register(pool, "df_s1_d", 8, 0);
    // Intermediate FIFO (2 entries, shift style).
    let fifo: Vec<_> = (0..FIFO_DEPTH)
        .map(|i| ts.add_register(pool, format!("df_fifo{i}"), 8, 0))
        .collect();
    let fifo_cnt = ts.add_register(pool, "df_fifo_cnt", 2, 0);
    // Output slot.
    let oval = ts.add_register(pool, "df_oval", 8, 0);
    let ovalid = ts.add_register(pool, "df_ovalid", 1, 0);

    let s1_v_e = pool.var_expr(s1_v);
    let s1_d_e = pool.var_expr(s1_d);
    let fifo_e: Vec<ExprRef> = fifo.iter().map(|&f| pool.var_expr(f)).collect();
    let cnt_e = pool.var_expr(fifo_cnt);
    let oval_e = pool.var_expr(oval);
    let ovalid_e = pool.var_expr(ovalid);

    // f1 computed at capture, f2 computed at stage-2 transfer.
    let one8 = pool.lit(8, 1);
    let dshift = pool.shl(data_e, one8);
    let f1 = pool.xor(data_e, dshift);
    let five = pool.lit(8, 5);
    let head = fifo_e[0];
    let f2 = pool.add(head, five);

    // Handshake events.
    let pop_out = pool.and(ovalid_e, rdh_e);
    let zero2 = pool.lit(2, 0);
    let fifo_nonempty = pool.ne(cnt_e, zero2);
    // Stage 2 takes the FIFO head when the output slot is (or becomes)
    // free this cycle.
    let slot_free = {
        let nv = pool.not(ovalid_e);
        pool.or(nv, pop_out)
    };
    let s2_take = pool.and(fifo_nonempty, slot_free);

    // Stage-1 push: depends on the *believed* FIFO capacity.
    let believed_depth = match bug {
        Some(DataflowBug::FifoSizing) => 4u64, // pragma says 4…
        None => FIFO_DEPTH as u64,             // …hardware has 2
    };
    let one2 = pool.lit(2, 1);
    let cnt_after_take = {
        let dec = pool.sub(cnt_e, one2);
        pool.ite(s2_take, dec, cnt_e)
    };
    let believed = pool.lit(2, believed_depth.min(3));
    let has_space_believed = pool.ult(cnt_after_take, believed);
    let s1_push = pool.and(s1_v_e, has_space_believed);
    // Physical space: a push beyond the real depth is silently dropped
    // (the overflow the sizing bug creates).
    let real_depth = pool.lit(2, FIFO_DEPTH as u64);
    let has_space_real = pool.ult(cnt_after_take, real_depth);
    let push_effective = pool.and(s1_push, has_space_real);

    // Capture: stage 1 free (after this cycle's push).
    let s1_free = {
        let nv = pool.not(s1_v_e);
        pool.or(nv, s1_push)
    };
    let rdin = s1_free;
    let zero_a = pool.lit(2, 0);
    let act_valid = pool.ne(action_e, zero_a);
    let captured = pool.and(rdin, act_valid);

    // Stage-1 registers.
    let not_push = pool.not(s1_push);
    let s1_kept = pool.and(s1_v_e, not_push);
    let next_s1_v = pool.or(s1_kept, captured);
    ts.set_next(s1_v, next_s1_v);
    let next_s1_d = pool.ite(captured, f1, s1_d_e);
    ts.set_next(s1_d, next_s1_d);

    // FIFO count: +effective push, −take.
    let next_cnt = {
        let inc = pool.add(cnt_after_take, one2);
        pool.ite(push_effective, inc, cnt_after_take)
    };
    ts.set_next(fifo_cnt, next_cnt);
    // FIFO data (shift-down on take, write at tail).
    for i in 0..FIFO_DEPTH {
        let cur = fifo_e[i];
        let from_above = if i + 1 < FIFO_DEPTH {
            fifo_e[i + 1]
        } else {
            cur
        };
        let shifted = pool.ite(s2_take, from_above, cur);
        let idx = pool.lit(2, i as u64);
        let at_tail = pool.eq(cnt_after_take, idx);
        let wr = pool.and(push_effective, at_tail);
        let written = pool.ite(wr, s1_d_e, shifted);
        ts.set_next(fifo[i], written);
    }

    // Output slot.
    let next_oval = pool.ite(s2_take, f2, oval_e);
    ts.set_next(oval, next_oval);
    let not_pop = pool.not(pop_out);
    let o_kept = pool.and(ovalid_e, not_pop);
    let next_ovalid = pool.or(o_kept, s2_take);
    ts.set_next(ovalid, next_ovalid);

    let zero8 = pool.lit(8, 0);
    let out = pool.ite(ovalid_e, oval_e, zero8);
    let delivered = pop_out;

    ts.add_output("out", out);
    ts.add_output("out_valid", ovalid_e);
    ts.add_output("rdin", rdin);
    ts.add_output("captured", captured);
    ts.add_output("delivered", delivered);

    Lca {
        ts,
        action,
        data,
        rdh,
        clock_enable: None,
        out,
        out_valid: ovalid_e,
        rdin,
        captured,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_bitvec::Bv;
    use aqed_core::{AqedHarness, CheckOutcome, FcConfig, PropertyKind};
    use aqed_tsys::Simulator;

    fn run_stream(
        lca: &Lca,
        p: &ExprPool,
        inputs: &[u64],
        rdh_pattern: impl Fn(usize) -> bool,
    ) -> Vec<u64> {
        let mut sim = Simulator::new(&lca.ts, p);
        let mut sent = 0usize;
        let mut outs = Vec::new();
        for cycle in 0..300 {
            let send = sent < inputs.len();
            let d = if send { inputs[sent] } else { 0 };
            let rdh = rdh_pattern(cycle);
            let iv = vec![
                (lca.action, Bv::new(2, u64::from(send))),
                (lca.data, Bv::new(8, d)),
                (lca.rdh, Bv::from_bool(rdh)),
            ];
            let cap = sim.peek(p, lca.captured, &iv).is_true();
            let del = sim.peek(p, lca.delivered, &iv).is_true();
            let out = sim.peek(p, lca.out, &iv).to_u64();
            sim.step_with(&lca.ts, p, &iv);
            if cap {
                sent += 1;
            }
            if del {
                outs.push(out);
            }
        }
        outs
    }

    #[test]
    fn healthy_pipeline_computes_composition() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        lca.ts.validate(&p).expect("valid");
        let inputs = [1u64, 2, 3, 200, 255, 77];
        let outs = run_stream(&lca, &p, &inputs, |_| true);
        let expect: Vec<u64> = inputs.iter().map(|&d| golden(1, d)).collect();
        assert_eq!(outs, expect);
    }

    #[test]
    fn healthy_pipeline_survives_backpressure() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        let inputs = [9u64, 8, 7, 6, 5, 4, 3];
        let outs = run_stream(&lca, &p, &inputs, |c| c % 3 == 0);
        let expect: Vec<u64> = inputs.iter().map(|&d| golden(1, d)).collect();
        assert_eq!(outs, expect, "stalling host must not lose data");
    }

    #[test]
    fn sizing_bug_drops_words_under_backpressure() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(DataflowBug::FifoSizing));
        let inputs = [9u64, 8, 7, 6, 5, 4, 3];
        let outs = run_stream(&lca, &p, &inputs, |c| c > 30);
        let expect: Vec<u64> = inputs.iter().map(|&d| golden(1, d)).collect();
        assert_ne!(outs, expect, "overflow must drop data");
        assert!(outs.len() < inputs.len(), "fewer outputs than inputs");
    }

    #[test]
    fn aqed_rb_catches_sizing_bug() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(DataflowBug::FifoSizing));
        let report = AqedHarness::new(&lca)
            .with_rb(recommended_rb())
            .verify(&mut p, 16);
        match report.outcome {
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                assert_eq!(property, PropertyKind::Rb);
                assert!(counterexample.cycles() <= 16);
            }
            other => panic!("expected RB bug, got {other:?}"),
        }
    }

    #[test]
    fn healthy_clean_under_fc_and_rb() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .with_rb(recommended_rb())
            .verify(&mut p, 10);
        assert!(
            !report.found_bug(),
            "healthy dataflow must be clean: {report}"
        );
    }
}
