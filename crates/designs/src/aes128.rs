//! A complete AES-128 encryption reference implementation (FIPS-197).
//!
//! The paper's AES case study ran BMC on *abstracted* versions of the
//! accelerator for scalability and kept the full design for simulation.
//! This module is our full-scale counterpart: a from-scratch, pure-Rust
//! AES-128 used as the golden model of the conventional simulation flow
//! and to document the abstraction gap against the BMC-friendly
//! small-scale AES in [`crate::aes`].
//!
//! The S-box is derived programmatically from the GF(2⁸) inverse plus the
//! affine map (no hand-typed tables to mistype) and validated against the
//! FIPS-197 known-answer vector.

/// GF(2⁸) multiplication modulo the AES polynomial `x⁸+x⁴+x³+x+1`.
#[must_use]
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    for _ in 0..8 {
        if b & 1 == 1 {
            acc ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    acc
}

/// GF(2⁸) multiplicative inverse (0 maps to 0).
#[must_use]
pub fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 via square-and-multiply (the group has order 255).
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u32;
    while e > 0 {
        if e & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

/// The AES S-box, computed from the field inverse and the affine
/// transformation.
#[must_use]
pub fn sbox() -> [u8; 256] {
    let mut table = [0u8; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let x = gf_inv(i as u8);
        let mut y = x;
        let mut out = 0x63u8; // affine constant
        for r in 0..5u32 {
            let _ = r;
            out ^= y;
            y = y.rotate_left(1);
        }
        *slot = out;
    }
    table
}

/// AES-128 state: 16 bytes in column-major order (as in FIPS-197).
type State = [u8; 16];

fn sub_bytes(state: &mut State, sb: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sb[*b as usize];
    }
}

fn shift_rows(state: &mut State) {
    // state[r + 4c] is row r, column c.
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

fn mix_columns(state: &mut State) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn add_round_key(state: &mut State, rk: &[u8]) {
    for (b, k) in state.iter_mut().zip(rk) {
        *b ^= k;
    }
}

/// Expands a 16-byte key into the 11 round keys (176 bytes).
#[must_use]
pub fn key_expansion(key: &[u8; 16]) -> [u8; 176] {
    let sb = sbox();
    let mut w = [0u8; 176];
    w[..16].copy_from_slice(key);
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut temp = [
            w[4 * (i - 1)],
            w[4 * (i - 1) + 1],
            w[4 * (i - 1) + 2],
            w[4 * (i - 1) + 3],
        ];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for t in temp.iter_mut() {
                *t = sb[*t as usize];
            }
            temp[0] ^= rcon;
            rcon = gf_mul(rcon, 2);
        }
        for j in 0..4 {
            w[4 * i + j] = w[4 * (i - 4) + j] ^ temp[j];
        }
    }
    w
}

/// Encrypts one 16-byte block with AES-128.
///
/// # Examples
///
/// ```
/// use aqed_designs::aes128::encrypt_block;
/// // FIPS-197 Appendix B known-answer test.
/// let key = [
///     0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
/// ];
/// let pt = [
///     0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
///     0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
/// ];
/// let ct = encrypt_block(&key, &pt);
/// assert_eq!(ct[..4], [0x39, 0x25, 0x84, 0x1d]);
/// ```
#[must_use]
pub fn encrypt_block(key: &[u8; 16], plaintext: &[u8; 16]) -> [u8; 16] {
    let sb = sbox();
    let rks = key_expansion(key);
    let mut state: State = *plaintext;
    add_round_key(&mut state, &rks[..16]);
    for round in 1..10 {
        sub_bytes(&mut state, &sb);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, &rks[16 * round..16 * (round + 1)]);
    }
    sub_bytes(&mut state, &sb);
    shift_rows(&mut state);
    add_round_key(&mut state, &rks[160..176]);
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_mul_basics() {
        assert_eq!(gf_mul(0x57, 0x83), 0xC1); // FIPS-197 example
        assert_eq!(gf_mul(0x57, 0x13), 0xFE);
        assert_eq!(gf_mul(1, 0xAB), 0xAB);
        assert_eq!(gf_mul(0, 0xFF), 0);
    }

    #[test]
    fn gf_inv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse of {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn sbox_known_entries() {
        let sb = sbox();
        assert_eq!(sb[0x00], 0x63);
        assert_eq!(sb[0x01], 0x7C);
        assert_eq!(sb[0x53], 0xED);
        assert_eq!(sb[0xFF], 0x16);
        // Bijective.
        let mut seen = [false; 256];
        for &v in sb.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(encrypt_block(&key, &pt), expect);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) << 4 | i as u8);
        let expect = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(encrypt_block(&key, &pt), expect);
    }

    #[test]
    fn key_expansion_first_round_key() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let rks = key_expansion(&key);
        // w[4] from FIPS-197 Appendix A: a0 fa fe 17.
        assert_eq!(&rks[16..20], &[0xa0, 0xfa, 0xfe, 0x17]);
        // w[43] (last word): b6 63 0c a6.
        assert_eq!(&rks[172..176], &[0xb6, 0x63, 0x0c, 0xa6]);
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let pt = [0u8; 16];
        let mut k1 = [0u8; 16];
        let k2 = [0u8; 16];
        k1[0] = 1;
        assert_ne!(encrypt_block(&k1, &pt), encrypt_block(&k2, &pt));
    }
}
