//! The unified bug-case catalogue that the benchmark harness iterates
//! over to regenerate the paper's Table 1, Table 2 and Fig. 5.

use crate::{aes, dataflow, gsm, memctrl, motivating, optflow};
use aqed_core::{FcConfig, RbConfig};
use aqed_expr::ExprPool;
use aqed_hls::Lca;
use std::fmt;

/// Which case study a bug case belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignId {
    /// Fig. 2 motivating example.
    Motivating,
    /// Memory-controller unit (Table 1 / Fig. 5).
    Memctrl,
    /// Small-scale AES (Table 2).
    Aes,
    /// Custom dataflow design (Table 2).
    Dataflow,
    /// Optical flow (Table 2).
    Optflow,
    /// GSM (Table 2).
    Gsm,
}

impl fmt::Display for DesignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DesignId::Motivating => "motivating",
            DesignId::Memctrl => "memctrl",
            DesignId::Aes => "aes",
            DesignId::Dataflow => "dataflow",
            DesignId::Optflow => "optflow",
            DesignId::Gsm => "gsm",
        })
    }
}

/// Which universal property is expected to catch the bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpectedProperty {
    /// Functional Consistency.
    Fc,
    /// Response Bound.
    Rb,
}

impl fmt::Display for ExpectedProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExpectedProperty::Fc => "FC",
            ExpectedProperty::Rb => "RB",
        })
    }
}

type BuildFn = Box<dyn Fn(&mut ExprPool) -> Lca + Send + Sync>;

/// One entry of the evaluation: a design variant with a known bug, the
/// check expected to catch it, and everything the harnesses need to run
/// both flows on it.
pub struct BugCase {
    /// Unique identifier (e.g. `"fifo_ptr_wrap_off_by_one"`, `"aes_v1"`).
    pub id: &'static str,
    /// Case study.
    pub design: DesignId,
    /// Configuration / variant label (e.g. `"fifo"`, `"v1"`).
    pub config: &'static str,
    /// Property expected to catch the bug.
    pub expected: ExpectedProperty,
    /// Whether the conventional flow's testbench is expected to find it
    /// within its budget (the Fig. 5 split).
    pub conventional_detectable: bool,
    /// Recommended BMC bound (covers the trigger with slack).
    pub bmc_bound: usize,
    /// Builds the buggy variant.
    pub build_buggy: BuildFn,
    /// Builds the healthy design (for clean-pass baselines).
    pub build_healthy: BuildFn,
    /// Golden model for the conventional flow; `None` for designs whose
    /// per-operation function is interfering (the conventional flow then
    /// only applies count/watchdog checks).
    pub golden: Option<fn(u64, u64) -> u64>,
    /// FC configuration, if FC applies to this design.
    pub fc: Option<FcConfig>,
    /// RB configuration, if RB is to be checked.
    pub rb: Option<RbConfig>,
}

impl fmt::Debug for BugCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BugCase")
            .field("id", &self.id)
            .field("design", &self.design)
            .field("config", &self.config)
            .field("expected", &self.expected)
            .field("conventional_detectable", &self.conventional_detectable)
            .finish()
    }
}

/// The memory-controller bug suite (Table 1 / Fig. 5): fifteen cases.
#[must_use]
pub fn memctrl_cases() -> Vec<BugCase> {
    memctrl::MemctrlBug::ALL
        .iter()
        .map(|&bug| {
            let config = bug.config();
            let config_name = match config {
                memctrl::MemctrlConfig::Fifo => "fifo",
                memctrl::MemctrlConfig::DoubleBuffer => "double_buffer",
                memctrl::MemctrlConfig::LineBuffer => "line_buffer",
            };
            let deadlock = bug.is_deadlock();
            // One universal property per case — the monitor relevant to
            // the bug class. The monitors are independent; this is a
            // budget decision, not a coverage one (see DESIGN.md).
            BugCase {
                id: bug.id(),
                design: DesignId::Memctrl,
                config: config_name,
                expected: if deadlock {
                    ExpectedProperty::Rb
                } else {
                    ExpectedProperty::Fc
                },
                conventional_detectable: !bug.is_corner_case(),
                bmc_bound: 16,
                build_buggy: Box::new(move |p| memctrl::build(p, config, Some(bug))),
                build_healthy: Box::new(move |p| memctrl::build(p, config, None)),
                golden: Some(memctrl::golden),
                fc: (!deadlock).then(FcConfig::default),
                rb: deadlock.then(|| memctrl::recommended_rb(config)),
            }
        })
        .collect()
}

/// The HLS-design suite (Table 2): AES v1–v4, dataflow, optical flow and
/// GSM.
#[must_use]
pub fn hls_cases() -> Vec<BugCase> {
    let mut cases: Vec<BugCase> = aes::AesBug::ALL
        .iter()
        .map(|&bug| BugCase {
            id: bug.id(),
            design: DesignId::Aes,
            config: match bug {
                aes::AesBug::V1StaleKeyAlternate => "v1",
                aes::AesBug::V2RoundCounterResetRace => "v2",
                aes::AesBug::V3IdlePathCorruption => "v3",
                aes::AesBug::V4RconSkipOnWrap => "v4",
            },
            expected: ExpectedProperty::Fc,
            conventional_detectable: true,
            bmc_bound: match bug {
                aes::AesBug::V2RoundCounterResetRace => 10,
                aes::AesBug::V3IdlePathCorruption => 14,
                _ => 12,
            },
            build_buggy: Box::new(move |p| aes::build(p, Some(bug))),
            build_healthy: Box::new(|p| aes::build(p, None)),
            golden: Some(aes::golden),
            fc: Some(FcConfig {
                common_field: Some((31, 16)), // paper's common-key batch
                ..FcConfig::default()
            }),
            rb: None,
        })
        .collect();
    cases.push(BugCase {
        id: "dataflow_fifo_sizing",
        design: DesignId::Dataflow,
        config: "dataflow",
        expected: ExpectedProperty::Rb,
        conventional_detectable: true,
        bmc_bound: 16,
        build_buggy: Box::new(|p| dataflow::build(p, Some(dataflow::DataflowBug::FifoSizing))),
        build_healthy: Box::new(|p| dataflow::build(p, None)),
        golden: Some(dataflow::golden),
        fc: None,
        rb: Some(dataflow::recommended_rb()),
    });
    cases.push(BugCase {
        id: "optflow_pushpop",
        design: DesignId::Optflow,
        config: "optical_flow",
        expected: ExpectedProperty::Rb,
        conventional_detectable: true,
        bmc_bound: 15,
        build_buggy: Box::new(|p| optflow::build(p, Some(optflow::OptflowBug::PushPopCollision))),
        build_healthy: Box::new(|p| optflow::build(p, None)),
        golden: None, // interfering per-pixel operation: RB only
        fc: None,
        rb: Some(optflow::recommended_rb()),
    });
    cases.push(BugCase {
        id: "gsm_acc_race",
        design: DesignId::Gsm,
        config: "gsm",
        expected: ExpectedProperty::Fc,
        conventional_detectable: true,
        bmc_bound: 18,
        build_buggy: Box::new(|p| gsm::build(p, Some(gsm::GsmBug::AccumulatorResetRace))),
        build_healthy: Box::new(|p| gsm::build(p, None)),
        golden: Some(gsm::golden),
        fc: Some(FcConfig::default()),
        rb: None,
    });
    cases
}

/// The motivating example as a case.
#[must_use]
pub fn motivating_case() -> BugCase {
    BugCase {
        id: "motivating_clock_enable",
        design: DesignId::Motivating,
        config: "four_buffers",
        expected: ExpectedProperty::Fc,
        conventional_detectable: true,
        bmc_bound: 14,
        build_buggy: Box::new(|p| {
            motivating::build(p, Some(motivating::MotivatingBug::ClockEnableDisconnected))
        }),
        build_healthy: Box::new(|p| motivating::build(p, None)),
        golden: Some(motivating::golden),
        fc: Some(FcConfig::default()),
        rb: None,
    }
}

/// Every case: motivating + memory controller + HLS designs.
#[must_use]
pub fn all_cases() -> Vec<BugCase> {
    let mut cases = vec![motivating_case()];
    cases.extend(memctrl_cases());
    cases.extend(hls_cases());
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_shape_matches_paper() {
        let all = all_cases();
        assert_eq!(all.len(), 1 + 15 + 7);
        // Fig. 5: 2 of 15 memctrl bugs are A-QED-only ≈ 13%.
        let mc = memctrl_cases();
        let aqed_only = mc.iter().filter(|c| !c.conventional_detectable).count();
        assert_eq!(aqed_only, 2);
        // Table 1: one RB bug among the memctrl cases.
        let rb = mc
            .iter()
            .filter(|c| c.expected == ExpectedProperty::Rb)
            .count();
        assert_eq!(rb, 1);
        // Table 2 rows: AES v1..v4 FC, dataflow RB, optflow RB, gsm FC.
        let hls = hls_cases();
        assert_eq!(hls.len(), 7);
        assert_eq!(
            hls.iter()
                .filter(|c| c.expected == ExpectedProperty::Rb)
                .count(),
            2
        );
    }

    #[test]
    fn ids_unique() {
        let all = all_cases();
        let mut ids: Vec<_> = all.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn builders_produce_valid_systems() {
        for case in all_cases() {
            let mut p = ExprPool::new();
            let buggy = (case.build_buggy)(&mut p);
            buggy
                .ts
                .validate(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", case.id));
            let mut p2 = ExprPool::new();
            let healthy = (case.build_healthy)(&mut p2);
            healthy
                .ts
                .validate(&p2)
                .unwrap_or_else(|e| panic!("{} healthy: {e}", case.id));
            // Every case enables at least one check.
            assert!(case.fc.is_some() || case.rb.is_some(), "{}", case.id);
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(DesignId::Memctrl.to_string(), "memctrl");
        assert_eq!(ExpectedProperty::Fc.to_string(), "FC");
        assert_eq!(ExpectedProperty::Rb.to_string(), "RB");
        let case = motivating_case();
        assert!(format!("{case:?}").contains("motivating_clock_enable"));
    }
}
