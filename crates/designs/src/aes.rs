//! The AES encryption case study (paper Table 2, designs AES v1–v4).
//!
//! The paper ran A-QED on *abstracted* AES accelerators for BMC
//! scalability ("Abstracted versions in [RESULTS 20]"). This module does
//! the same: a **small-scale AES** — 16-bit block (2×2 state of 4-bit
//! cells), 4-bit S-box, 2 rounds — whose structure mirrors AES-128
//! (SubBytes / ShiftRows / MixColumns over GF(2⁴) / AddRoundKey with an
//! Rcon-based key schedule). The full-scale reference lives in
//! [`crate::aes128`] and is used by the conventional simulation flow.
//!
//! The accelerator is an iterative core: one round per cycle, 2-cycle
//! latency, single operation in flight. Its `data` input packs
//! `key(31:16) ‖ pt(15:0)`; the A-QED run uses the paper's *common key
//! across a batch* customization (`FcConfig::common_field` over the key
//! bits).
//!
//! The four buggy variants v1–v4 are sequential-control defects (stale
//! key reuse, round-counter reset races, idle-path corruption, key
//! schedule wrap) — precisely the kind of bug that is invisible to a
//! purely combinational check but caught by Functional Consistency,
//! because the ciphertext then depends on *when* the operation runs, not
//! only on its inputs.

use aqed_core::RbConfig;
use aqed_expr::{ExprPool, ExprRef};
use aqed_hls::Lca;
use aqed_tsys::TransitionSystem;

/// The 4-bit S-box (bijective).
pub const SBOX4: [u64; 16] = [
    0x6, 0xB, 0x5, 0x4, 0x2, 0xE, 0x7, 0xA, 0x9, 0xD, 0xF, 0xC, 0x3, 0x1, 0x0, 0x8,
];

/// Number of rounds. Two rounds keep the full SubBytes / ShiftRows /
/// MixColumns / AddRoundKey structure while holding the BMC cost of the
/// all-UNSAT functional-consistency proofs (a two-copy cipher
/// equivalence at every depth) within a single-core budget — the same
/// scalability abstraction the paper applied to its AES case study.
pub const ROUNDS: u32 = 2;

/// Buggy variants of the AES accelerator (paper Table 2: AES v1–v4, all
/// caught by FC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AesBug {
    /// v1: a key-bank parity flop makes every second operation reuse the
    /// *expanded* key left over from the previous operation instead of
    /// loading the new one.
    V1StaleKeyAlternate,
    /// v2: the round counter is not reset when a new capture coincides
    /// with the delivery of the previous result — the new operation runs
    /// a single round.
    V2RoundCounterResetRace,
    /// v3: after three or more idle cycles, the capture path muxes a
    /// stuck-at bit into the low state nibble (a latched idle flag leaks
    /// into the datapath).
    V3IdlePathCorruption,
    /// v4: the key schedule's Rcon addition is skipped on every second
    /// operation (the operation counter's LSB shares a comparator with
    /// the round counter's enable term).
    V4RconSkipOnWrap,
}

impl AesBug {
    /// All variants in Table 2 order.
    pub const ALL: [AesBug; 4] = [
        AesBug::V1StaleKeyAlternate,
        AesBug::V2RoundCounterResetRace,
        AesBug::V3IdlePathCorruption,
        AesBug::V4RconSkipOnWrap,
    ];

    /// Short identifier for reports.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            AesBug::V1StaleKeyAlternate => "aes_v1",
            AesBug::V2RoundCounterResetRace => "aes_v2",
            AesBug::V3IdlePathCorruption => "aes_v3",
            AesBug::V4RconSkipOnWrap => "aes_v4",
        }
    }
}

// ----------------------------------------------------------------------
// Pure-Rust small-scale AES (golden model)
// ----------------------------------------------------------------------

/// GF(2⁴) multiply-by-2 modulo `x⁴+x+1`.
#[must_use]
pub fn gf4_mul2(x: u64) -> u64 {
    let shifted = (x << 1) & 0xF;
    if x & 0x8 != 0 {
        shifted ^ 0x3
    } else {
        shifted
    }
}

/// GF(2⁴) multiply-by-3.
#[must_use]
pub fn gf4_mul3(x: u64) -> u64 {
    gf4_mul2(x) ^ x
}

fn nibbles(v: u64) -> [u64; 4] {
    [v & 0xF, (v >> 4) & 0xF, (v >> 8) & 0xF, (v >> 12) & 0xF]
}

fn pack(n: [u64; 4]) -> u64 {
    n[0] | n[1] << 4 | n[2] << 8 | n[3] << 12
}

/// One key-schedule step: `rk_r` from `rk_{r-1}`.
///
/// Rotate the nibbles left by one, S-box the low nibble, and XOR the
/// round constant `r` into the low nibble.
#[must_use]
pub fn key_step(rk: u64, round: u64) -> u64 {
    let n = nibbles(rk);
    let rot = [n[1], n[2], n[3], n[0]];
    let sub0 = SBOX4[rot[0] as usize];
    pack([sub0 ^ (round & 0xF), rot[1], rot[2], rot[3]])
}

/// One encryption round. `last` skips MixColumns (the final round, as in
/// full AES).
#[must_use]
pub fn round(state: u64, rk: u64, last: bool) -> u64 {
    let n = nibbles(state);
    // SubBytes.
    let s = [
        SBOX4[n[0] as usize],
        SBOX4[n[1] as usize],
        SBOX4[n[2] as usize],
        SBOX4[n[3] as usize],
    ];
    // State layout: column 0 = (n0, n1), column 1 = (n2, n3);
    // row 0 = (n0, n2), row 1 = (n1, n3). ShiftRows rotates row 1.
    let sr = [s[0], s[3], s[2], s[1]];
    // MixColumns with the matrix [[2, 3], [3, 2]] over GF(2⁴).
    let mixed = if last {
        sr
    } else {
        [
            gf4_mul2(sr[0]) ^ gf4_mul3(sr[1]),
            gf4_mul3(sr[0]) ^ gf4_mul2(sr[1]),
            gf4_mul2(sr[2]) ^ gf4_mul3(sr[3]),
            gf4_mul3(sr[2]) ^ gf4_mul2(sr[3]),
        ]
    };
    pack(mixed) ^ rk
}

/// Small-scale AES encryption: the golden model of the accelerator.
///
/// # Examples
///
/// ```
/// use aqed_designs::aes::encrypt;
/// let ct = encrypt(0x1A2B, 0xC0DE);
/// assert_ne!(ct, 0xC0DE);
/// assert_eq!(ct, encrypt(0x1A2B, 0xC0DE)); // deterministic
/// ```
#[must_use]
pub fn encrypt(key: u64, pt: u64) -> u64 {
    let mut state = (pt ^ key) & 0xFFFF;
    let mut rk = key & 0xFFFF;
    for r in 1..=u64::from(ROUNDS) {
        rk = key_step(rk, r);
        state = round(state, rk, r == u64::from(ROUNDS));
    }
    state
}

/// Golden function in the accelerator's interface convention:
/// `data = key(31:16) ‖ pt(15:0)`.
#[must_use]
pub fn golden(_action: u64, data: u64) -> u64 {
    encrypt((data >> 16) & 0xFFFF, data & 0xFFFF)
}

// ----------------------------------------------------------------------
// Symbolic small-scale AES (expression builders)
// ----------------------------------------------------------------------

fn sbox4_expr(pool: &mut ExprPool, x: ExprRef) -> ExprRef {
    let options: Vec<ExprRef> = SBOX4.iter().map(|&v| pool.lit(4, v)).collect();
    let default = pool.lit(4, 0);
    pool.select(x, &options, default)
}

fn nibbles_expr(pool: &mut ExprPool, v: ExprRef) -> [ExprRef; 4] {
    [
        pool.extract(v, 3, 0),
        pool.extract(v, 7, 4),
        pool.extract(v, 11, 8),
        pool.extract(v, 15, 12),
    ]
}

fn pack_expr(pool: &mut ExprPool, n: [ExprRef; 4]) -> ExprRef {
    let hi = pool.concat(n[3], n[2]);
    let lo = pool.concat(n[1], n[0]);
    pool.concat(hi, lo)
}

fn gf4_mul2_expr(pool: &mut ExprPool, x: ExprRef) -> ExprRef {
    let one = pool.lit(4, 1);
    let shifted = pool.shl(x, one);
    let msb = pool.bit(x, 3);
    let red = pool.lit(4, 0x3);
    let zero = pool.lit(4, 0);
    let fix = pool.ite(msb, red, zero);
    pool.xor(shifted, fix)
}

fn gf4_mul3_expr(pool: &mut ExprPool, x: ExprRef) -> ExprRef {
    let d = gf4_mul2_expr(pool, x);
    pool.xor(d, x)
}

/// Symbolic key-schedule step (mirrors [`key_step`]). The `round`
/// expression must be 4 bits.
pub fn key_step_expr(pool: &mut ExprPool, rk: ExprRef, round: ExprRef) -> ExprRef {
    let n = nibbles_expr(pool, rk);
    let sub0 = sbox4_expr(pool, n[1]);
    let low = pool.xor(sub0, round);
    pack_expr(pool, [low, n[2], n[3], n[0]])
}

/// Symbolic encryption round (mirrors [`round`]).
pub fn round_expr(pool: &mut ExprPool, state: ExprRef, rk: ExprRef, last: ExprRef) -> ExprRef {
    let n = nibbles_expr(pool, state);
    let s = [
        sbox4_expr(pool, n[0]),
        sbox4_expr(pool, n[1]),
        sbox4_expr(pool, n[2]),
        sbox4_expr(pool, n[3]),
    ];
    let sr = [s[0], s[3], s[2], s[1]];
    let mixed = [
        {
            let a = gf4_mul2_expr(pool, sr[0]);
            let b = gf4_mul3_expr(pool, sr[1]);
            pool.xor(a, b)
        },
        {
            let a = gf4_mul3_expr(pool, sr[0]);
            let b = gf4_mul2_expr(pool, sr[1]);
            pool.xor(a, b)
        },
        {
            let a = gf4_mul2_expr(pool, sr[2]);
            let b = gf4_mul3_expr(pool, sr[3]);
            pool.xor(a, b)
        },
        {
            let a = gf4_mul3_expr(pool, sr[2]);
            let b = gf4_mul2_expr(pool, sr[3]);
            pool.xor(a, b)
        },
    ];
    let with_mix = pack_expr(pool, mixed);
    let without_mix = pack_expr(pool, sr);
    let pre_key = pool.ite(last, without_mix, with_mix);
    pool.xor(pre_key, rk)
}

/// The recommended RB parameters for the AES core (τ covers the 4-round
/// latency plus handshake slack).
#[must_use]
pub fn recommended_rb() -> RbConfig {
    RbConfig {
        tau: 8,
        in_min: 1,
        rdin_bound: 10,
        counter_width: 8,
    }
}

/// Builds the iterative small-scale AES accelerator, optionally with one
/// of the v1–v4 bugs injected.
///
/// Interface: `action` (1 = encrypt), `data` = `key(31:16) ‖ pt(15:0)`,
/// 16-bit ciphertext output; one operation in flight.
#[must_use]
pub fn build(pool: &mut ExprPool, bug: Option<AesBug>) -> Lca {
    let name = match bug {
        None => "aes_small".to_string(),
        Some(b) => format!("aes_small_{}", b.id()),
    };
    let mut ts = TransitionSystem::new(name);
    let action = ts.add_input(pool, "action", 2);
    let data = ts.add_input(pool, "data", 32);
    let rdh = ts.add_input(pool, "rdh", 1);
    let action_e = pool.var_expr(action);
    let data_e = pool.var_expr(data);
    let rdh_e = pool.var_expr(rdh);

    let key_in = pool.extract(data_e, 31, 16);
    let pt_in = pool.extract(data_e, 15, 0);

    let busy = ts.add_register(pool, "aes_busy", 1, 0);
    let round_ctr = ts.add_register(pool, "aes_round", 3, 0);
    let state = ts.add_register(pool, "aes_state", 16, 0);
    let rkey = ts.add_register(pool, "aes_rkey", 16, 0);
    let out_reg = ts.add_register(pool, "aes_out", 16, 0);
    let out_pending = ts.add_register(pool, "aes_out_pending", 1, 0);
    // Auxiliary flops that host the bug triggers.
    let op_parity = ts.add_register(pool, "aes_op_parity", 1, 0);
    let op_count = ts.add_register(pool, "aes_op_count", 2, 0);
    let idle_ctr = ts.add_register(pool, "aes_idle_ctr", 2, 0);

    let busy_e = pool.var_expr(busy);
    let round_e = pool.var_expr(round_ctr);
    let state_e = pool.var_expr(state);
    let rkey_e = pool.var_expr(rkey);
    let out_reg_e = pool.var_expr(out_reg);
    let out_pending_e = pool.var_expr(out_pending);
    let op_parity_e = pool.var_expr(op_parity);
    let op_count_e = pool.var_expr(op_count);
    let idle_ctr_e = pool.var_expr(idle_ctr);

    // Handshake.
    let not_busy = pool.not(busy_e);
    let not_pending = pool.not(out_pending_e);
    let rdin = pool.and(not_busy, not_pending);
    let zero_a = pool.lit(2, 0);
    let act_valid = pool.ne(action_e, zero_a);
    let captured = pool.and(rdin, act_valid);
    let delivered = pool.and(out_pending_e, rdh_e);

    // v2 trigger: capture coinciding with delivery of the previous result.
    // (With the healthy handshake rdin blocks while pending, so the buggy
    // variant widens rdin to accept during the delivery cycle — the
    // "look-ahead ready" optimisation whose reset term was forgotten.)
    let (rdin, captured) = if bug == Some(AesBug::V2RoundCounterResetRace) {
        let accept_on_delivery = pool.and(not_busy, delivered);
        let r = pool.or(rdin, accept_on_delivery);
        let c = pool.and(r, act_valid);
        (r, c)
    } else {
        (rdin, captured)
    };

    // v3 trigger: idle streak of 3+ cycles corrupts the captured state.
    let idle_sat = {
        let three = pool.lit(2, 3);
        pool.uge(idle_ctr_e, three)
    };
    let mut init_state = pool.xor(pt_in, key_in);
    if bug == Some(AesBug::V3IdlePathCorruption) {
        let one16 = pool.lit(16, 1);
        let corrupted = pool.xor(init_state, one16);
        init_state = pool.ite(idle_sat, corrupted, init_state);
    }

    // v1 trigger: every second operation skips the key load.
    let load_key = match bug {
        Some(AesBug::V1StaleKeyAlternate) => pool.not(op_parity_e),
        _ => pool.true_(),
    };
    let loaded_key = pool.ite(load_key, key_in, rkey_e);

    // Round computation (runs while busy).
    let one3 = pool.lit(3, 1);
    let round_now = pool.add(round_e, one3); // round being executed this cycle
    let round4 = pool.zext(round_now, 4);
    let mut rk_next = key_step_expr(pool, rkey_e, round4);
    if bug == Some(AesBug::V4RconSkipOnWrap) {
        // On every second operation the Rcon XOR is dropped.
        let wrap = pool.extract(op_count_e, 0, 0);
        let zero4 = pool.lit(4, 0);
        let rk_norcon = key_step_expr(pool, rkey_e, zero4);
        rk_next = pool.ite(wrap, rk_norcon, rk_next);
    }
    let last_l = pool.lit(3, ROUNDS as u64);
    // `>=` instead of `==`: a stale round counter (the v2 race) makes the
    // new operation finish after a single round instead of looping the
    // counter all the way around.
    let is_last = pool.uge(round_now, last_l);
    let state_next_round = round_expr(pool, state_e, rk_next, is_last);

    // Register updates.
    let finishing = pool.and(busy_e, is_last);
    // busy.
    let not_finishing = pool.not(finishing);
    let busy_kept = pool.and(busy_e, not_finishing);
    let next_busy = pool.or(busy_kept, captured);
    ts.set_next(busy, next_busy);
    // round counter: reset on capture (healthy), advance while busy.
    let zero3 = pool.lit(3, 0);
    let round_adv = pool.ite(busy_e, round_now, round_e);
    let next_round = match bug {
        Some(AesBug::V2RoundCounterResetRace) => {
            // Reset only on captures that do NOT coincide with a delivery.
            let clean_cap = {
                let nd = pool.not(delivered);
                pool.and(captured, nd)
            };
            let r = pool.ite(clean_cap, zero3, round_adv);
            // A racy capture leaves the counter at its stale value — and
            // because the previous op just finished, that value is 4,
            // wrapping the counter mid-operation.
            r
        }
        _ => pool.ite(captured, zero3, round_adv),
    };
    ts.set_next(round_ctr, next_round);
    // state.
    let state_busy = pool.ite(busy_e, state_next_round, state_e);
    let next_state = pool.ite(captured, init_state, state_busy);
    ts.set_next(state, next_state);
    // round key.
    let rkey_busy = pool.ite(busy_e, rk_next, rkey_e);
    let next_rkey = pool.ite(captured, loaded_key, rkey_busy);
    ts.set_next(rkey, next_rkey);
    // output.
    let next_out = pool.ite(finishing, state_next_round, out_reg_e);
    ts.set_next(out_reg, next_out);
    let not_delivered = pool.not(delivered);
    let pend_kept = pool.and(out_pending_e, not_delivered);
    let next_pending = pool.or(pend_kept, finishing);
    ts.set_next(out_pending, next_pending);
    // op parity / count (per capture).
    let flip = pool.not(op_parity_e);
    let next_parity = pool.ite(captured, flip, op_parity_e);
    ts.set_next(op_parity, next_parity);
    let one2 = pool.lit(2, 1);
    let cnt_inc = pool.add(op_count_e, one2);
    let next_count = pool.ite(captured, cnt_inc, op_count_e);
    ts.set_next(op_count, next_count);
    // idle counter: cycles without capture, saturating at 3.
    let three2 = pool.lit(2, 3);
    let at3 = pool.uge(idle_ctr_e, three2);
    let idle_inc = pool.add(idle_ctr_e, one2);
    let idle_bump = pool.ite(at3, idle_ctr_e, idle_inc);
    let zero2 = pool.lit(2, 0);
    let next_idle = pool.ite(captured, zero2, idle_bump);
    ts.set_next(idle_ctr, next_idle);

    let zero16 = pool.lit(16, 0);
    let out = pool.ite(out_pending_e, out_reg_e, zero16);

    ts.add_output("out", out);
    ts.add_output("out_valid", out_pending_e);
    ts.add_output("rdin", rdin);
    ts.add_output("captured", captured);
    ts.add_output("delivered", delivered);

    Lca {
        ts,
        action,
        data,
        rdh,
        clock_enable: None,
        out,
        out_valid: out_pending_e,
        rdin,
        captured,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_bitvec::Bv;
    use aqed_core::{AqedHarness, CheckOutcome, FcConfig, PropertyKind};
    use aqed_tsys::Simulator;

    #[test]
    fn cipher_is_bijective_per_key() {
        for key in [0u64, 0x1234, 0xFFFF, 0xA5A5] {
            let mut seen = vec![false; 1 << 16];
            for pt in 0..(1u64 << 16) {
                let ct = encrypt(key, pt) as usize;
                assert!(!seen[ct], "collision at key {key:#x} pt {pt:#x}");
                seen[ct] = true;
            }
        }
    }

    #[test]
    fn cipher_diffuses() {
        // Flipping one plaintext bit changes more than one output bit on
        // average (weak avalanche sanity check).
        let key = 0xBEEF;
        let mut total_flips = 0u32;
        for pt in 0..256u64 {
            let a = encrypt(key, pt);
            let b = encrypt(key, pt ^ 1);
            total_flips += (a ^ b).count_ones();
        }
        assert!(total_flips > 256 * 3, "diffusion too weak: {total_flips}");
    }

    #[test]
    fn symbolic_matches_concrete() {
        let mut p = ExprPool::new();
        let key = p.var("key", 16, aqed_expr::VarKind::Input);
        let pt = p.var("pt", 16, aqed_expr::VarKind::Input);
        let key_e = p.var_expr(key);
        let pt_e = p.var_expr(pt);
        // Build the full 4-round encryption symbolically.
        let mut state = p.xor(pt_e, key_e);
        let mut rk = key_e;
        for r in 1..=u64::from(ROUNDS) {
            let rc = p.lit(4, r);
            rk = key_step_expr(&mut p, rk, rc);
            let last = if r == u64::from(ROUNDS) {
                p.true_()
            } else {
                p.false_()
            };
            state = round_expr(&mut p, state, rk, last);
        }
        for (k, t) in [
            (0u64, 0u64),
            (0xFFFF, 0xFFFF),
            (0x1A2B, 0xC0DE),
            (0x5555, 0xAAAA),
        ] {
            let got = p.eval(state, &mut |v| {
                if v == key {
                    Bv::new(16, k)
                } else {
                    Bv::new(16, t)
                }
            });
            assert_eq!(got.to_u64(), encrypt(k, t), "key {k:#x} pt {t:#x}");
        }
    }

    fn run_op(lca: &Lca, p: &ExprPool, sim: &mut Simulator, key: u64, pt: u64) -> u64 {
        // Submit and wait for delivery.
        let data = key << 16 | pt;
        let mut submitted = false;
        for _ in 0..20 {
            let a = u64::from(!submitted);
            let iv = vec![
                (lca.action, Bv::new(2, a)),
                (lca.data, Bv::new(32, data)),
                (lca.rdh, Bv::from_bool(true)),
            ];
            let cap = sim.peek(p, lca.captured, &iv).is_true();
            let del = sim.peek(p, lca.delivered, &iv).is_true();
            let out = sim.peek(p, lca.out, &iv).to_u64();
            sim.step_with(&lca.ts, p, &iv);
            if cap {
                submitted = true;
            }
            if del {
                return out;
            }
        }
        panic!("no output within 20 cycles");
    }

    #[test]
    fn accelerator_matches_golden_model() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        lca.ts.validate(&p).expect("valid");
        let mut sim = Simulator::new(&lca.ts, &p);
        for (k, t) in [
            (0x1A2Bu64, 0xC0DEu64),
            (0, 0),
            (0xFFFF, 0x0001),
            (0x4242, 0x4242),
        ] {
            let ct = run_op(&lca, &p, &mut sim, k, t);
            assert_eq!(ct, encrypt(k, t), "key {k:#x} pt {t:#x}");
        }
    }

    #[test]
    fn v1_gives_position_dependent_ciphertexts() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(AesBug::V1StaleKeyAlternate));
        let mut sim = Simulator::new(&lca.ts, &p);
        let (k, t) = (0x1A2B, 0xC0DE);
        let first = run_op(&lca, &p, &mut sim, k, t);
        let second = run_op(&lca, &p, &mut sim, k, t);
        assert_ne!(
            first, second,
            "same input, different position, different output"
        );
    }

    fn aqed_fc_catches(bug: AesBug, bound: usize) -> usize {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(bug));
        let fc = FcConfig {
            common_field: Some((31, 16)), // common key across the batch
            ..FcConfig::default()
        };
        let report = AqedHarness::new(&lca).with_fc(fc).verify(&mut p, bound);
        match report.outcome {
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                assert_eq!(property, PropertyKind::Fc, "{}", bug.id());
                assert_eq!(
                    counterexample.bad_name,
                    "aqed_fc_violation",
                    "{}: must be the genuine output-mismatch property",
                    bug.id()
                );
                counterexample.cycles()
            }
            other => panic!("{}: expected FC bug, got {other:?}", bug.id()),
        }
    }

    #[test]
    fn aqed_catches_v1() {
        let cycles = aqed_fc_catches(AesBug::V1StaleKeyAlternate, 12);
        assert!(cycles <= 12);
    }

    #[test]
    fn aqed_catches_v2() {
        let cycles = aqed_fc_catches(AesBug::V2RoundCounterResetRace, 10);
        assert!(cycles <= 10);
    }

    #[test]
    fn aqed_catches_v3() {
        let cycles = aqed_fc_catches(AesBug::V3IdlePathCorruption, 14);
        assert!(cycles <= 14);
    }

    #[test]
    fn aqed_catches_v4() {
        let cycles = aqed_fc_catches(AesBug::V4RconSkipOnWrap, 12);
        assert!(cycles <= 12);
    }

    #[test]
    fn healthy_aes_clean() {
        // Bound 9: covers a complete operation plus handshake slack.
        // (Beyond ~12 the all-UNSAT FC query becomes a full two-copy
        // cipher-equivalence proof — minutes of CDCL per depth; the
        // bounded clean check here is a smoke test, the bug-finding
        // tests above are the real coverage.)
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        let fc = FcConfig {
            common_field: Some((31, 16)),
            ..FcConfig::default()
        };
        let report = AqedHarness::new(&lca)
            .with_fc(fc)
            .with_rb(recommended_rb())
            .verify(&mut p, 9);
        assert!(!report.found_bug(), "healthy AES must be clean: {report}");
    }
}
