//! Case-study accelerator designs with tracked bug variants — the
//! workloads of the A-QED paper's evaluation (Sec. V).
//!
//! Every design is a loosely-coupled accelerator ([`Lca`](aqed_hls::Lca))
//! built at the register-transfer level, together with a catalogue of
//! *named, realistic* bug variants (no random mutation): clock-enable
//! disconnects, pointer wrap errors, missing full/empty checks, swap
//! glitches, stale-state reuse, FIFO sizing errors, deadlocks. Each bug is
//! annotated with the universal property expected to catch it (FC or RB)
//! and whether the conventional simulation flow's testbench is expected to
//! find it within its cycle budget — reproducing the structure of the
//! paper's Table 1, Table 2 and Fig. 5.
//!
//! Designs:
//!
//! * [`motivating`] — the paper's Fig. 2 four-buffer round-robin design
//!   with the disconnected `clock_enable` bug,
//! * [`memctrl`] — a CGRA memory-controller unit with FIFO, double-buffer
//!   and line-buffer configurations (Table 1 / Fig. 5 case study),
//! * [`aes`] — an iterative small-scale AES core (abstracted for BMC, as
//!   the paper did) with buggy variants v1–v4, plus a full AES-128
//!   reference implementation used as a simulation golden model,
//! * [`dataflow`] — a two-stage kernel pipeline with an internal FIFO
//!   sizing bug (RB),
//! * [`optflow`] — an optical-flow-style window gradient pipeline (RB),
//! * [`gsm`] — a GSM LPC-style weighted-sum stage (FC).
//!
//! The [`catalog`] module ties everything into one [`BugCase`] table the
//! benchmark harness iterates over.

pub mod aes;
pub mod aes128;
pub mod catalog;
pub mod dataflow;
pub mod gsm;
pub mod memctrl;
pub mod motivating;
pub mod optflow;

pub use catalog::{
    all_cases, hls_cases, memctrl_cases, motivating_case, BugCase, DesignId, ExpectedProperty,
};
