//! The GSM case study (paper Table 2, "CHStone / GSM", caught by FC).
//!
//! An abstracted stage of the CHStone GSM LPC kernel: a weighted frame
//! sum. One operation processes a frame of four 8-bit samples packed into
//! the 32-bit `data` input and produces the 16-bit value
//! `Σ wᵢ · sᵢ` with weights `w = [1, 2, 3, 4]`, computed iteratively —
//! one multiply-accumulate per cycle, as HLS schedules it.
//!
//! The bug variant is an accumulator-reset race: a "look-ahead ready"
//! optimisation lets a new frame start in the same cycle the previous
//! result is delivered, but the accumulator-clear term was forgotten on
//! that path, so the new frame's sum starts from the previous result —
//! the value then depends on *when* the frame was submitted, which is
//! precisely a Functional Consistency violation.

use aqed_core::RbConfig;
use aqed_expr::{ExprPool, ExprRef};
use aqed_hls::Lca;
use aqed_tsys::TransitionSystem;

/// Bug variants of the GSM stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GsmBug {
    /// The accumulator is not cleared when a capture coincides with the
    /// delivery of the previous result (FC).
    AccumulatorResetRace,
}

/// Samples per frame.
pub const FRAME: usize = 4;

/// Per-sample weights.
pub const WEIGHTS: [u64; FRAME] = [1, 2, 3, 4];

/// The frame function — golden model. `data` packs samples little-endian
/// (`s0` in bits 7:0).
#[must_use]
pub fn golden(_action: u64, data: u64) -> u64 {
    let mut acc = 0u64;
    for (i, w) in WEIGHTS.iter().enumerate() {
        let s = (data >> (8 * i)) & 0xFF;
        acc = acc.wrapping_add(w * s);
    }
    acc & 0xFFFF
}

/// Recommended RB parameters (τ covers the 4-cycle MAC loop).
#[must_use]
pub fn recommended_rb() -> RbConfig {
    RbConfig {
        tau: 8,
        in_min: 1,
        rdin_bound: 10,
        counter_width: 8,
    }
}

/// Builds the GSM weighted-sum accelerator, optionally with the
/// accumulator-reset race.
#[must_use]
pub fn build(pool: &mut ExprPool, bug: Option<GsmBug>) -> Lca {
    let name = match bug {
        None => "gsm_lpc",
        Some(GsmBug::AccumulatorResetRace) => "gsm_lpc_acc_race",
    };
    let mut ts = TransitionSystem::new(name);
    let action = ts.add_input(pool, "action", 2);
    let data = ts.add_input(pool, "data", 32);
    let rdh = ts.add_input(pool, "rdh", 1);
    let action_e = pool.var_expr(action);
    let data_e = pool.var_expr(data);
    let rdh_e = pool.var_expr(rdh);

    let busy = ts.add_register(pool, "gsm_busy", 1, 0);
    let step = ts.add_register(pool, "gsm_step", 3, 0);
    let frame = ts.add_register(pool, "gsm_frame", 32, 0);
    let acc = ts.add_register(pool, "gsm_acc", 16, 0);
    let out_reg = ts.add_register(pool, "gsm_out", 16, 0);
    let out_pending = ts.add_register(pool, "gsm_out_pending", 1, 0);

    let busy_e = pool.var_expr(busy);
    let step_e = pool.var_expr(step);
    let frame_e = pool.var_expr(frame);
    let acc_e = pool.var_expr(acc);
    let out_reg_e = pool.var_expr(out_reg);
    let out_pending_e = pool.var_expr(out_pending);

    // Handshake.
    let not_busy = pool.not(busy_e);
    let not_pending = pool.not(out_pending_e);
    let rdin_base = pool.and(not_busy, not_pending);
    let delivered = pool.and(out_pending_e, rdh_e);
    // The (buggy) look-ahead: also ready when the pending result leaves
    // this very cycle.
    let rdin = match bug {
        Some(GsmBug::AccumulatorResetRace) => {
            let look_ahead = pool.and(not_busy, delivered);
            pool.or(rdin_base, look_ahead)
        }
        None => rdin_base,
    };
    let zero_a = pool.lit(2, 0);
    let act_valid = pool.ne(action_e, zero_a);
    let captured = pool.and(rdin, act_valid);

    // MAC datapath: sample `step` of the latched frame.
    let samples: Vec<ExprRef> = (0..FRAME)
        .map(|i| {
            let lo = 8 * i as u32;
            pool.extract(frame_e, lo + 7, lo)
        })
        .collect();
    let sample = {
        let opts = samples.clone();
        let z = pool.lit(8, 0);
        let idx = pool.extract(step_e, 1, 0);
        pool.select(idx, &opts, z)
    };
    let weight = {
        let opts: Vec<ExprRef> = WEIGHTS.iter().map(|&w| pool.lit(16, w)).collect();
        let z = pool.lit(16, 0);
        let idx = pool.extract(step_e, 1, 0);
        pool.select(idx, &opts, z)
    };
    let sample16 = pool.zext(sample, 16);
    let term = pool.mul(weight, sample16);
    let acc_next_val = pool.add(acc_e, term);

    let last_l = pool.lit(3, (FRAME - 1) as u64);
    let at_last = pool.eq(step_e, last_l);
    let finishing = pool.and(busy_e, at_last);

    // busy.
    let not_finishing = pool.not(finishing);
    let busy_kept = pool.and(busy_e, not_finishing);
    let next_busy = pool.or(busy_kept, captured);
    ts.set_next(busy, next_busy);
    // step.
    let zero3 = pool.lit(3, 0);
    let one3 = pool.lit(3, 1);
    let step_inc = pool.add(step_e, one3);
    let step_adv = pool.ite(busy_e, step_inc, step_e);
    let next_step = pool.ite(captured, zero3, step_adv);
    ts.set_next(step, next_step);
    // frame latch.
    let next_frame = pool.ite(captured, data_e, frame_e);
    ts.set_next(frame, next_frame);
    // accumulator: cleared at capture (except on the buggy race path),
    // accumulates while busy.
    let acc_busy = pool.ite(busy_e, acc_next_val, acc_e);
    let clear_on_cap = match bug {
        Some(GsmBug::AccumulatorResetRace) => {
            let nd = pool.not(delivered);
            pool.and(captured, nd)
        }
        None => captured,
    };
    let zero16 = pool.lit(16, 0);
    let next_acc = pool.ite(clear_on_cap, zero16, acc_busy);
    ts.set_next(acc, next_acc);
    // output.
    let next_out = pool.ite(finishing, acc_next_val, out_reg_e);
    ts.set_next(out_reg, next_out);
    let not_delivered = pool.not(delivered);
    let pend_kept = pool.and(out_pending_e, not_delivered);
    let next_pending = pool.or(pend_kept, finishing);
    ts.set_next(out_pending, next_pending);

    let out = pool.ite(out_pending_e, out_reg_e, zero16);

    ts.add_output("out", out);
    ts.add_output("out_valid", out_pending_e);
    ts.add_output("rdin", rdin);
    ts.add_output("captured", captured);
    ts.add_output("delivered", delivered);

    Lca {
        ts,
        action,
        data,
        rdh,
        clock_enable: None,
        out,
        out_valid: out_pending_e,
        rdin,
        captured,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_bitvec::Bv;
    use aqed_core::{AqedHarness, CheckOutcome, FcConfig, PropertyKind};
    use aqed_tsys::Simulator;

    fn run_op(lca: &Lca, p: &ExprPool, sim: &mut Simulator, frame: u64) -> u64 {
        let mut submitted = false;
        for _ in 0..20 {
            let a = u64::from(!submitted);
            let iv = vec![
                (lca.action, Bv::new(2, a)),
                (lca.data, Bv::new(32, frame)),
                (lca.rdh, Bv::from_bool(true)),
            ];
            let cap = sim.peek(p, lca.captured, &iv).is_true();
            let del = sim.peek(p, lca.delivered, &iv).is_true();
            let out = sim.peek(p, lca.out, &iv).to_u64();
            sim.step_with(&lca.ts, p, &iv);
            if cap {
                submitted = true;
            }
            if del {
                return out;
            }
        }
        panic!("no output within 20 cycles");
    }

    #[test]
    fn golden_model_weighted_sum() {
        // s = [1, 2, 3, 4] → 1·1 + 2·2 + 3·3 + 4·4 = 30.
        assert_eq!(golden(1, 0x04_03_02_01), 30);
        assert_eq!(golden(1, 0), 0);
        assert_eq!(golden(1, 0xFF), 255);
        assert_eq!(golden(1, 0xFF << 24), 4 * 255);
    }

    #[test]
    fn accelerator_matches_golden() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        lca.ts.validate(&p).expect("valid");
        let mut sim = Simulator::new(&lca.ts, &p);
        for frame in [
            0x04_03_02_01u64,
            0,
            0xFFFF_FFFF,
            0x80_40_20_10,
            0x01_00_00_FF,
        ] {
            assert_eq!(
                run_op(&lca, &p, &mut sim, frame),
                golden(1, frame),
                "{frame:#x}"
            );
        }
    }

    #[test]
    fn race_bug_corrupts_back_to_back_frames() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(GsmBug::AccumulatorResetRace));
        let mut sim = Simulator::new(&lca.ts, &p);
        // Submit a frame, then hold the next submission asserted so it is
        // captured exactly on the delivery cycle.
        let f1 = 0x04_03_02_01u64;
        let f2 = 0x01_01_01_01u64;
        // Submit f1 with the host stalled so its result stays pending,
        // then offer f2 with the host ready: the look-ahead rdin captures
        // f2 exactly on f1's delivery cycle, skipping the accumulator
        // clear.
        let mut outs = Vec::new();
        let mut phase2 = false;
        for cycle in 0..24 {
            let (a, data, rdh) = if !phase2 {
                (u64::from(cycle == 0), f1, false)
            } else {
                (1u64, f2, true)
            };
            let iv = vec![
                (lca.action, Bv::new(2, a)),
                (lca.data, Bv::new(32, data)),
                (lca.rdh, Bv::from_bool(rdh)),
            ];
            let pending = sim.peek(&p, lca.out_valid, &iv).is_true();
            let cap = sim.peek(&p, lca.captured, &iv).is_true();
            let del = sim.peek(&p, lca.delivered, &iv).is_true();
            let out = sim.peek(&p, lca.out, &iv).to_u64();
            sim.step_with(&lca.ts, &p, &iv);
            if !phase2 && pending {
                // f1's result is pending: from next cycle offer f2 with
                // the host ready → racy capture on the delivery cycle.
                phase2 = true;
            }
            let _ = cap;
            if del {
                outs.push(out);
            }
        }
        // f2's result should be 10; with the race it is 30 + 10 = 40 —
        // but only when captured on the delivery cycle. Either way, the
        // healthy value must not appear for a racy capture.
        assert!(
            outs.contains(&((golden(1, f1) + golden(1, f2)) & 0xFFFF)),
            "race must leak the previous sum: {outs:?}"
        );
    }

    #[test]
    fn aqed_fc_catches_race() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, Some(GsmBug::AccumulatorResetRace));
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .verify(&mut p, 18);
        match report.outcome {
            CheckOutcome::Bug {
                property,
                counterexample,
            } => {
                assert_eq!(property, PropertyKind::Fc);
                assert!(counterexample.cycles() <= 18);
            }
            other => panic!("expected FC bug, got {other:?}"),
        }
    }

    #[test]
    fn healthy_clean_under_fc_and_rb() {
        let mut p = ExprPool::new();
        let lca = build(&mut p, None);
        let report = AqedHarness::new(&lca)
            .with_fc(FcConfig::default())
            .with_rb(recommended_rb())
            .verify(&mut p, 9);
        assert!(!report.found_bug(), "healthy GSM must be clean: {report}");
    }
}
