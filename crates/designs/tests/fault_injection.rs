//! Fault-injection smoke suite: the paper's evaluation seeds accelerator
//! RTL with realistic logic bugs and shows the specification-free A-QED
//! properties catch them. This test reproduces the experiment with the
//! systematic mutators from `aqed_tsys::mutate`: for each bug class
//! (operand swap, off-by-one constant, dropped latch update) we inject a
//! sample of mutants into healthy catalog designs and require that
//!
//! * every mutator class produces at least one mutant that FC/RB catches
//!   with a counterexample, and
//! * every reported counterexample survives simulator replay — the
//!   harness validates each witness and degrades to `Errored
//!   {UnsoundWitness}` on mismatch, so a bug verdict here *is* a
//!   replay-validated bug.

use aqed_core::{AqedHarness, CheckOutcome};
use aqed_designs::all_cases;
use aqed_expr::ExprPool;
use aqed_tsys::{enumerate_mutants, Mutant, Mutator};

/// Deterministic spread-sample of at most `k` mutants: first, last, and
/// evenly spaced in between, so we exercise different registers instead
/// of only the first one declared.
fn sample(mutants: Vec<Mutant>, k: usize) -> Vec<Mutant> {
    let n = mutants.len();
    if n <= k {
        return mutants;
    }
    let mut picked = Vec::with_capacity(k);
    for (i, m) in mutants.into_iter().enumerate() {
        // index i is selected iff it is the rounded position of some
        // j in 0..k spread across 0..n
        if (0..k).any(|j| i == j * (n - 1) / (k - 1).max(1)) {
            picked.push(m);
        }
    }
    picked
}

#[test]
fn mutated_catalog_designs_are_caught_with_valid_witnesses() {
    let mutators = [
        Mutator::OperandSwap,
        Mutator::OffByOneConstant,
        Mutator::DroppedLatchUpdate,
    ];
    // Two healthy baselines with complementary property coverage: the
    // FIFO memory controller checks FC, the dataflow design checks RB.
    let cases: Vec<_> = all_cases()
        .into_iter()
        .filter(|c| c.id == "fifo_ptr_wrap_off_by_one" || c.id == "dataflow_fifo_sizing")
        .collect();
    assert_eq!(cases.len(), 2, "expected both baseline cases in catalog");
    for mutator in mutators {
        let mut caught = 0usize;
        let mut tried = 0usize;
        for case in &cases {
            let mut pool = ExprPool::new();
            let healthy = (case.build_healthy)(&mut pool);
            let mutants = sample(enumerate_mutants(&healthy.ts, &mut pool, mutator), 3);
            assert!(
                !mutants.is_empty(),
                "{mutator}: no injection sites in {}",
                case.id
            );
            for mutant in mutants {
                mutant
                    .ts
                    .validate(&pool)
                    .expect("mutant must stay a valid system");
                let mut lca = healthy.clone();
                lca.ts = mutant.ts;
                let mut harness = AqedHarness::new(&lca);
                if let Some(fc) = &case.fc {
                    harness = harness.with_fc(fc.clone());
                }
                if let Some(rb) = &case.rb {
                    harness = harness.with_rb(*rb);
                }
                let bound = case.bmc_bound.min(8);
                let report = harness.verify(&mut pool, bound);
                tried += 1;
                match &report.outcome {
                    CheckOutcome::Bug { .. } => caught += 1,
                    // A mutant can be benign at this bound (e.g. it only
                    // perturbs unreachable logic); clean or inconclusive
                    // is acceptable for individual mutants.
                    CheckOutcome::Clean { .. } | CheckOutcome::Inconclusive { .. } => {}
                    // Errored would mean a worker died or — worse — a
                    // counterexample failed simulator replay.
                    CheckOutcome::Errored { message } => {
                        panic!(
                            "{mutator} on {} ({}): {message}",
                            case.id, mutant.description
                        )
                    }
                }
            }
        }
        assert!(
            caught >= 1,
            "{mutator}: none of {tried} sampled mutants was caught by FC/RB"
        );
    }
}
