//! Randomized cross-validation of the CDCL solver against brute force on
//! small formulas, plus model checking on satisfiable instances.

use aqed_sat::{
    ArmedBudget, Budget, DimacsBackend, PhaseMode, PortfolioBackend, RestartStrategy, SatBackend,
    SolveResult, Solver, SolverConfig, StopReason, Var,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Brute-force satisfiability over `n <= 16` variables.
fn brute_force_sat(n: usize, clauses: &[Vec<i32>]) -> bool {
    'outer: for m in 0u32..(1 << n) {
        for c in clauses {
            let sat = c.iter().any(|&l| {
                let v = (l.unsigned_abs() - 1) as usize;
                let val = (m >> v) & 1 == 1;
                if l > 0 {
                    val
                } else {
                    !val
                }
            });
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn run_solver(n: usize, clauses: &[Vec<i32>]) -> (SolveResult, Vec<bool>, Vec<Var>) {
    let mut s = Solver::new();
    let vars = s.new_vars(n);
    for c in clauses {
        s.add_clause(
            c.iter()
                .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0)),
        );
    }
    let r = s.solve();
    let model = vars
        .iter()
        .map(|&v| s.model_value(v).unwrap_or(false))
        .collect();
    (r, model, vars)
}

fn model_satisfies(clauses: &[Vec<i32>], model: &[bool]) -> bool {
    clauses.iter().all(|c| {
        c.iter().any(|&l| {
            let val = model[(l.unsigned_abs() - 1) as usize];
            if l > 0 {
                val
            } else {
                !val
            }
        })
    })
}

fn clause_strategy(n: usize) -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec((1..=n as i32, any::<bool>()), 1..=4).prop_map(|lits| {
        lits.into_iter()
            .map(|(v, s)| if s { v } else { -v })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn agrees_with_brute_force(
        n in 2usize..10,
        clauses in prop::collection::vec(clause_strategy(9), 1..30),
    ) {
        let clauses: Vec<Vec<i32>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| l.unsigned_abs() as usize <= n).collect::<Vec<_>>())
            .filter(|c: &Vec<i32>| !c.is_empty())
            .collect();
        let expect = brute_force_sat(n, &clauses);
        let (got, model, _) = run_solver(n, &clauses);
        prop_assert_eq!(got, if expect { SolveResult::Sat } else { SolveResult::Unsat });
        if got == SolveResult::Sat {
            prop_assert!(model_satisfies(&clauses, &model), "model must satisfy all clauses");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Incremental solving across clause-arena compactions: clauses are
    /// added in batches, each batch is solved under random assumptions,
    /// and a forced garbage collection runs between batches so every
    /// later solve works on relocated clause references. Each answer is
    /// cross-checked against brute force on the clauses added so far
    /// plus the assumptions as units.
    #[test]
    fn incremental_sequence_with_gc_agrees_with_brute_force(
        n in 4usize..10,
        batches in prop::collection::vec(
            prop::collection::vec(clause_strategy(9), 1..8),
            2..5,
        ),
        assumption_seed in any::<u64>(),
    ) {
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        let mut rng = StdRng::seed_from_u64(assumption_seed);
        let mut so_far: Vec<Vec<i32>> = Vec::new();
        for batch in batches {
            for c in batch {
                let c: Vec<i32> = c
                    .into_iter()
                    .filter(|l| l.unsigned_abs() as usize <= n)
                    .collect();
                if c.is_empty() {
                    continue;
                }
                s.add_clause(
                    c.iter().map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0)),
                );
                so_far.push(c);
            }
            let assumed: Vec<i32> = (0..rng.gen_range(0..3usize))
                .map(|_| {
                    let v = rng.gen_range(1..=n as i32);
                    if rng.gen() { v } else { -v }
                })
                .collect();
            let lits: Vec<_> = assumed
                .iter()
                .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
                .collect();
            let got = s.solve_with(&lits);
            let mut check = so_far.clone();
            check.extend(assumed.iter().map(|&l| vec![l]));
            let expect = brute_force_sat(n, &check);
            prop_assert_eq!(
                got,
                if expect { SolveResult::Sat } else { SolveResult::Unsat }
            );
            // Compact the arena so the next batch's solves run on
            // relocated clause references.
            s.reclaim_memory();
        }
        prop_assert!(s.stats().gc_runs >= 2, "sequence must exercise GC");
    }
}

/// Feeds `clauses` through the [`SatBackend`] trait — the same path the
/// bit-blaster and model checkers use — and solves under `assumptions`.
/// Returns the verdict and the model restricted to the problem variables.
fn run_backend<B: SatBackend + Default>(
    n: usize,
    clauses: &[Vec<i32>],
    assumptions: &[i32],
) -> (SolveResult, Vec<bool>) {
    let mut backend = B::default();
    let vars: Vec<Var> = (0..n).map(|_| backend.new_var()).collect();
    for c in clauses {
        let lits: Vec<_> = c
            .iter()
            .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
            .collect();
        backend.add_clause(&lits);
    }
    let assumed: Vec<_> = assumptions
        .iter()
        .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
        .collect();
    let r = backend.solve_under(&assumed);
    let model = vars
        .iter()
        .map(|&v| backend.value(v.pos()).unwrap_or(false))
        .collect();
    (r, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Every [`SatBackend`] implementation must produce the same verdict
    /// on the same formula and assumptions, with a model that satisfies
    /// the clauses when SAT, and both must agree with brute force.
    #[test]
    fn all_backends_agree_on_verdicts(
        n in 2usize..10,
        clauses in prop::collection::vec(clause_strategy(9), 1..30),
        raw_assumptions in prop::collection::vec((1..=9i32, any::<bool>()), 0..3),
    ) {
        let clauses: Vec<Vec<i32>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| l.unsigned_abs() as usize <= n).collect::<Vec<_>>())
            .filter(|c: &Vec<i32>| !c.is_empty())
            .collect();
        let assumptions: Vec<i32> = raw_assumptions
            .into_iter()
            .filter(|&(v, _)| v as usize <= n)
            .map(|(v, s)| if s { v } else { -v })
            .collect();

        let (cdcl, cdcl_model) = run_backend::<Solver>(n, &clauses, &assumptions);
        let (logged, logged_model) = run_backend::<DimacsBackend>(n, &clauses, &assumptions);
        prop_assert_eq!(cdcl, logged, "cdcl and dimacs backends disagree");

        let mut check = clauses.clone();
        check.extend(assumptions.iter().map(|&l| vec![l]));
        let expect = brute_force_sat(n, &check);
        prop_assert_eq!(cdcl, if expect { SolveResult::Sat } else { SolveResult::Unsat });
        if cdcl == SolveResult::Sat {
            prop_assert!(model_satisfies(&check, &cdcl_model), "cdcl model must satisfy");
            prop_assert!(model_satisfies(&check, &logged_model), "dimacs model must satisfy");
        }
    }
}

/// Builds a solver holding `clauses`, optionally governed by `armed`.
fn budgeted_solver(
    n: usize,
    clauses: &[Vec<i32>],
    armed: Option<ArmedBudget>,
) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars = s.new_vars(n);
    for c in clauses {
        s.add_clause(
            c.iter()
                .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0)),
        );
    }
    if let Some(a) = armed {
        s.set_budget(a);
    }
    (s, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// A budget generous enough to never trigger must not change any
    /// verdict: governance may only *withhold* an answer (Unknown), never
    /// fabricate or flip one.
    #[test]
    fn generous_budget_never_flips_verdict(
        n in 2usize..10,
        clauses in prop::collection::vec(clause_strategy(9), 1..30),
    ) {
        let clauses: Vec<Vec<i32>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| l.unsigned_abs() as usize <= n).collect::<Vec<_>>())
            .filter(|c: &Vec<i32>| !c.is_empty())
            .collect();
        let unbudgeted = budgeted_solver(n, &clauses, None).0.solve();
        let budget = Budget::unlimited()
            .with_timeout(Duration::from_secs(600))
            .with_max_conflicts(1_000_000)
            .with_max_propagations(1_000_000_000);
        let (mut governed, _) = budgeted_solver(n, &clauses, Some(ArmedBudget::arm(&budget)));
        let got = governed.solve();
        prop_assert_eq!(got, unbudgeted);
        prop_assert_eq!(governed.stop_reason(), None);
    }

    /// A starved budget is *sound*: the solver either still decides the
    /// formula (and must agree with the unbudgeted verdict) or returns
    /// Unknown with the stop reason recorded — it never reports a wrong
    /// Sat/Unsat.
    #[test]
    fn starved_budget_is_sound(
        n in 2usize..10,
        clauses in prop::collection::vec(clause_strategy(9), 1..30),
        cap in 0u64..4,
    ) {
        let clauses: Vec<Vec<i32>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| l.unsigned_abs() as usize <= n).collect::<Vec<_>>())
            .filter(|c: &Vec<i32>| !c.is_empty())
            .collect();
        let unbudgeted = budgeted_solver(n, &clauses, None).0.solve();
        let budget = Budget::unlimited().with_max_conflicts(cap);
        let (mut governed, vars) = budgeted_solver(n, &clauses, Some(ArmedBudget::arm(&budget)));
        match governed.solve() {
            SolveResult::Unknown => {
                prop_assert!(governed.stop_reason().is_some());
            }
            decided => {
                prop_assert_eq!(decided, unbudgeted);
                if decided == SolveResult::Sat {
                    // The model must still be real despite the governor.
                    let model: Vec<bool> = vars
                        .iter()
                        .map(|&v| governed.model_value(v).unwrap_or(false))
                        .collect();
                    prop_assert!(model_satisfies(&clauses, &model));
                }
            }
        }
    }

    /// A budget cancelled before the solve starts always yields Unknown
    /// with the Cancelled reason, regardless of the formula.
    #[test]
    fn pre_cancelled_budget_yields_unknown(
        n in 2usize..8,
        clauses in prop::collection::vec(clause_strategy(7), 1..20),
    ) {
        let clauses: Vec<Vec<i32>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| l.unsigned_abs() as usize <= n).collect::<Vec<_>>())
            .filter(|c: &Vec<i32>| !c.is_empty())
            .collect();
        let armed = ArmedBudget::arm(&Budget::unlimited());
        armed.cancel();
        let (mut governed, _) = budgeted_solver(n, &clauses, Some(armed));
        prop_assert_eq!(governed.solve(), SolveResult::Unknown);
        prop_assert_eq!(governed.stop_reason(), Some(StopReason::Cancelled));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// SatELite-style preprocessing (subsumption + bounded variable
    /// elimination) must preserve satisfiability, and the model handed
    /// back after elimination-record reconstruction must satisfy the
    /// *original* clauses — including ones whose variables were
    /// eliminated and never reached the search.
    #[test]
    fn preprocessing_preserves_satisfiability_and_models(
        n in 2usize..10,
        clauses in prop::collection::vec(clause_strategy(9), 1..30),
    ) {
        let clauses: Vec<Vec<i32>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| l.unsigned_abs() as usize <= n).collect::<Vec<_>>())
            .filter(|c: &Vec<i32>| !c.is_empty())
            .collect();
        let expect = brute_force_sat(n, &clauses);

        let mut s = Solver::new();
        s.set_preprocessing(true);
        let vars = s.new_vars(n);
        for c in &clauses {
            s.add_clause(
                c.iter().map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0)),
            );
        }
        let got = s.solve();
        prop_assert_eq!(got, if expect { SolveResult::Sat } else { SolveResult::Unsat });
        if got == SolveResult::Sat {
            let model: Vec<bool> = vars
                .iter()
                .map(|&v| s.model_value(v).unwrap_or(false))
                .collect();
            prop_assert!(
                model_satisfies(&clauses, &model),
                "reconstructed model must satisfy the original clauses"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Incremental use with preprocessing on: clauses arrive in batches
    /// and each batch is solved under random assumptions. Later batches
    /// may mention variables a previous preprocessing pass eliminated,
    /// forcing the reactivation cascade; every verdict is cross-checked
    /// against brute force and every Sat model against all clauses so far.
    #[test]
    fn preprocessing_incremental_batches_agree_with_brute_force(
        n in 4usize..10,
        batches in prop::collection::vec(
            prop::collection::vec(clause_strategy(9), 1..8),
            2..5,
        ),
        assumption_seed in any::<u64>(),
    ) {
        let mut s = Solver::new();
        s.set_preprocessing(true);
        let vars = s.new_vars(n);
        let mut rng = StdRng::seed_from_u64(assumption_seed);
        let mut so_far: Vec<Vec<i32>> = Vec::new();
        for batch in batches {
            for c in batch {
                let c: Vec<i32> = c
                    .into_iter()
                    .filter(|l| l.unsigned_abs() as usize <= n)
                    .collect();
                if c.is_empty() {
                    continue;
                }
                s.add_clause(
                    c.iter().map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0)),
                );
                so_far.push(c);
            }
            let assumed: Vec<i32> = (0..rng.gen_range(0..3usize))
                .map(|_| {
                    let v = rng.gen_range(1..=n as i32);
                    if rng.gen() { v } else { -v }
                })
                .collect();
            let lits: Vec<_> = assumed
                .iter()
                .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
                .collect();
            let got = s.solve_with(&lits);
            let mut check = so_far.clone();
            check.extend(assumed.iter().map(|&l| vec![l]));
            let expect = brute_force_sat(n, &check);
            prop_assert_eq!(
                got,
                if expect { SolveResult::Sat } else { SolveResult::Unsat }
            );
            if got == SolveResult::Sat {
                let model: Vec<bool> = vars
                    .iter()
                    .map(|&v| s.model_value(v).unwrap_or(false))
                    .collect();
                prop_assert!(
                    model_satisfies(&check, &model),
                    "model must satisfy all clauses and assumptions so far"
                );
            }
        }
    }
}

/// Arbitrary solver configurations, covering the whole diversification
/// space the portfolio draws from (and then some): restart strategy,
/// decay, phase policy, randomization frequencies, RNG seed.
fn config_strategy() -> impl Strategy<Value = SolverConfig> {
    (
        prop_oneof![
            (15u64..40, 1u64..64).prop_map(|(b, u)| RestartStrategy::Luby {
                base: b as f64 / 10.0,
                unit: u * 16,
            }),
            (105u64..150, 1u64..200).prop_map(|(m, c)| RestartStrategy::Glucose {
                margin: m as f64 / 100.0,
                min_conflicts: c,
            }),
            Just(RestartStrategy::Never),
        ],
        500u64..999,
        prop_oneof![
            Just(PhaseMode::Saved),
            Just(PhaseMode::AlwaysFalse),
            Just(PhaseMode::AlwaysTrue),
        ],
        0u64..300,
        0u64..300,
        any::<u64>(),
    )
        .prop_map(
            |(restart, decay, phase, rand_pol, rand_var, seed)| SolverConfig {
                restart,
                var_decay: decay as f64 / 1000.0,
                phase,
                random_polarity_freq: rand_pol as f64 / 1000.0,
                random_var_freq: rand_var as f64 / 1000.0,
                seed,
            },
        )
}

/// Runs `clauses` through a [`PortfolioBackend`] of the given width.
fn run_portfolio(
    workers: usize,
    sharing: bool,
    n: usize,
    clauses: &[Vec<i32>],
    assumptions: &[i32],
) -> (SolveResult, Vec<bool>) {
    let mut backend = PortfolioBackend::new(workers);
    backend.set_sharing_enabled(sharing);
    let vars: Vec<Var> = (0..n).map(|_| backend.new_var()).collect();
    for c in clauses {
        let lits: Vec<_> = c
            .iter()
            .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
            .collect();
        backend.add_clause(&lits);
    }
    let assumed: Vec<_> = assumptions
        .iter()
        .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0))
        .collect();
    let r = backend.solve_under(&assumed);
    let model = vars
        .iter()
        .map(|&v| backend.value(v.pos()).unwrap_or(false))
        .collect();
    (r, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Every point in the configuration space is a *complete* solver:
    /// whatever the restart strategy, phase policy, decay, or
    /// randomization, the verdict must equal brute force and Sat models
    /// must check out. This is what makes portfolio diversification
    /// sound — workers differ only in search order, never in semantics.
    #[test]
    fn any_solver_config_agrees_with_brute_force(
        n in 2usize..9,
        clauses in prop::collection::vec(clause_strategy(8), 1..25),
        config in config_strategy(),
    ) {
        let clauses: Vec<Vec<i32>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| l.unsigned_abs() as usize <= n).collect::<Vec<_>>())
            .filter(|c: &Vec<i32>| !c.is_empty())
            .collect();
        let expect = brute_force_sat(n, &clauses);
        let mut s = Solver::with_config(config);
        let vars = s.new_vars(n);
        for c in &clauses {
            s.add_clause(
                c.iter().map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0)),
            );
        }
        let got = s.solve();
        prop_assert_eq!(got, if expect { SolveResult::Sat } else { SolveResult::Unsat });
        if got == SolveResult::Sat {
            let model: Vec<bool> = vars
                .iter()
                .map(|&v| s.model_value(v).unwrap_or(false))
                .collect();
            prop_assert!(model_satisfies(&clauses, &model));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `portfolio(N) ≡ cdcl` on verdicts, for any width and either
    /// sharing mode; Sat models from the winning worker must satisfy
    /// the formula plus assumptions.
    #[test]
    fn portfolio_any_width_matches_cdcl_verdicts(
        n in 2usize..9,
        clauses in prop::collection::vec(clause_strategy(8), 1..25),
        raw_assumptions in prop::collection::vec((1..=8i32, any::<bool>()), 0..3),
        workers in 1usize..5,
        sharing in any::<bool>(),
    ) {
        let clauses: Vec<Vec<i32>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| l.unsigned_abs() as usize <= n).collect::<Vec<_>>())
            .filter(|c: &Vec<i32>| !c.is_empty())
            .collect();
        let assumptions: Vec<i32> = raw_assumptions
            .into_iter()
            .filter(|&(v, _)| v as usize <= n)
            .map(|(v, s)| if s { v } else { -v })
            .collect();
        let (cdcl, _) = run_backend::<Solver>(n, &clauses, &assumptions);
        let (port, model) = run_portfolio(workers, sharing, n, &clauses, &assumptions);
        prop_assert_eq!(cdcl, port, "workers={} sharing={}", workers, sharing);
        if port == SolveResult::Sat {
            let mut check = clauses.clone();
            check.extend(assumptions.iter().map(|&l| vec![l]));
            prop_assert!(model_satisfies(&check, &model), "portfolio model must satisfy");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Clause sharing is invisible in verdicts: two portfolios driven
    /// through the same incremental session — sharing on vs. off — must
    /// agree with brute force at every step. Imported clauses are
    /// implied by the formula, so they may only steer search, never
    /// change answers (a torn or unsound import would surface here as a
    /// wrong Unsat).
    #[test]
    fn clause_sharing_never_changes_verdicts(
        n in 4usize..9,
        batches in prop::collection::vec(
            prop::collection::vec(clause_strategy(8), 1..6),
            2..4,
        ),
        assumption_seed in any::<u64>(),
    ) {
        let mut with_sharing = PortfolioBackend::new(3);
        with_sharing.set_sharing_enabled(true);
        let mut without_sharing = PortfolioBackend::new(3);
        without_sharing.set_sharing_enabled(false);
        let vars_on: Vec<Var> = (0..n).map(|_| with_sharing.new_var()).collect();
        let vars_off: Vec<Var> = (0..n).map(|_| without_sharing.new_var()).collect();
        let mut rng = StdRng::seed_from_u64(assumption_seed);
        let mut so_far: Vec<Vec<i32>> = Vec::new();
        for batch in batches {
            for c in batch {
                let c: Vec<i32> = c
                    .into_iter()
                    .filter(|l| l.unsigned_abs() as usize <= n)
                    .collect();
                if c.is_empty() {
                    continue;
                }
                let lits_on: Vec<_> = c
                    .iter()
                    .map(|&l| vars_on[(l.unsigned_abs() - 1) as usize].lit(l > 0))
                    .collect();
                let lits_off: Vec<_> = c
                    .iter()
                    .map(|&l| vars_off[(l.unsigned_abs() - 1) as usize].lit(l > 0))
                    .collect();
                with_sharing.add_clause(&lits_on);
                without_sharing.add_clause(&lits_off);
                so_far.push(c);
            }
            let assumed: Vec<i32> = (0..rng.gen_range(0..3usize))
                .map(|_| {
                    let v = rng.gen_range(1..=n as i32);
                    if rng.gen() { v } else { -v }
                })
                .collect();
            let on_lits: Vec<_> = assumed
                .iter()
                .map(|&l| vars_on[(l.unsigned_abs() - 1) as usize].lit(l > 0))
                .collect();
            let off_lits: Vec<_> = assumed
                .iter()
                .map(|&l| vars_off[(l.unsigned_abs() - 1) as usize].lit(l > 0))
                .collect();
            let got_on = with_sharing.solve_under(&on_lits);
            let got_off = without_sharing.solve_under(&off_lits);
            let mut check = so_far.clone();
            check.extend(assumed.iter().map(|&l| vec![l]));
            let expect = if brute_force_sat(n, &check) {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            prop_assert_eq!(got_on, expect, "sharing-on verdict");
            prop_assert_eq!(got_off, expect, "sharing-off verdict");
        }
    }
}

#[test]
fn random_3sat_near_threshold() {
    // 60 variables at clause ratio ~4.2: exercises restarts/learning; the
    // model (when SAT) must check out.
    let mut rng = StdRng::seed_from_u64(0xA9ED);
    for round in 0..20 {
        let n = 60;
        let m = 252;
        let mut clauses = Vec::with_capacity(m);
        for _ in 0..m {
            let mut c = Vec::with_capacity(3);
            while c.len() < 3 {
                let v = rng.gen_range(1..=n as i32);
                if !c.contains(&v) && !c.contains(&-v) {
                    c.push(if rng.gen() { v } else { -v });
                }
            }
            clauses.push(c);
        }
        let (r, model, _) = run_solver(n, &clauses);
        match r {
            SolveResult::Sat => assert!(model_satisfies(&clauses, &model), "round {round}"),
            SolveResult::Unsat => {}
            SolveResult::Unknown => panic!("no budget set"),
        }
    }
}

#[test]
fn incremental_assumption_sweep_matches_oneshot() {
    // Solve the same formula under each single-literal assumption both
    // incrementally (one solver) and from scratch; answers must match.
    let mut rng = StdRng::seed_from_u64(7);
    let n = 12;
    let m = 40;
    let mut clauses = Vec::new();
    for _ in 0..m {
        let mut c = Vec::new();
        while c.len() < 3 {
            let v = rng.gen_range(1..=n as i32);
            if !c.contains(&v) && !c.contains(&-v) {
                c.push(if rng.gen() { v } else { -v });
            }
        }
        clauses.push(c);
    }
    let mut inc = Solver::new();
    let vars = inc.new_vars(n);
    for c in &clauses {
        inc.add_clause(
            c.iter()
                .map(|&l| vars[(l.unsigned_abs() - 1) as usize].lit(l > 0)),
        );
    }
    for (i, v) in vars.iter().enumerate() {
        for polarity in [true, false] {
            let inc_result = inc.solve_with(&[v.lit(polarity)]);
            // From scratch with the assumption as a unit clause.
            let mut fresh_clauses = clauses.clone();
            fresh_clauses.push(vec![if polarity {
                (i + 1) as i32
            } else {
                -((i + 1) as i32)
            }]);
            let (fresh_result, _, _) = run_solver(n, &fresh_clauses);
            assert_eq!(inc_result, fresh_result, "var {i} polarity {polarity}");
        }
    }
}
